//! The estimation service: a thread-safe, shareable front-end over the
//! logical-operator costing models.
//!
//! The paper's Fig. 9 architecture keeps one costing profile per remote
//! system inside the master engine's optimizer; a federated planner costs
//! many `(system, operator)` candidates for every query it plans, and an
//! optimizer with any intra-query parallelism does so from several
//! threads at once. [`EstimatorService`] packages the estimation read
//! path for that workload:
//!
//! * an **epoch-versioned model store** ([`crate::epoch::EpochStore`]):
//!   the read path pins an immutable [`ModelSnapshot`] with a lock-free
//!   atomic load — estimates never take a `RwLock` or `Mutex` on the
//!   model registry, and concurrent retraining can never stall them;
//! * **builder-style mutations**: registration, observations, α
//!   adjustment, and offline tuning are clone-modify-publish
//!   transactions that swap in a new snapshot under the next epoch,
//!   entirely off the hot path;
//! * an **LRU estimate cache** per shard, keyed by quantized feature
//!   vectors (see [`cache`]) and tagged with the *epoch of the snapshot
//!   that computed the value* — the key and the model state come from
//!   the same pinned `Arc`, so a cached estimate can never be served
//!   against a model state it was not computed from (the old
//!   generation-counter scheme allowed exactly that interleaving);
//! * a **batched path** ([`EstimatorService::estimate_batch`]) that runs
//!   all in-range rows through one amortised
//!   [`neuro::Network::predict_batch`] forward pass against a single
//!   pinned snapshot;
//! * cheap **cloneable handles**: the service is an `Arc` internally, so
//!   `service.clone()` hands a planner thread its own handle.
//!
//! Estimates served through the service use the *read-only* flow
//! ([`crate::logical_op::flow::LogicalOpCosting::estimate_readonly`]),
//! which is a pure function of the pinned snapshot — two threads asking
//! the same question against the same epoch always get bit-identical
//! answers, and a concurrent fan-out returns exactly what a serial loop
//! would. Callers that need several estimates to be internally
//! consistent mid-retrain pin one snapshot ([`EstimatorService::snapshot`])
//! and use the `*_pinned` variants.

pub mod cache;

use crate::{
    epoch::{Epoch, EpochStore, ModelSnapshot, PipelineReport, TuningPipeline},
    estimator::{CostEstimate, OperatorKind},
    logical_op::{
        flow::LogicalOpCosting, model::FitConfig, packed::PackedOpScratch, remedy::RemedyScratch,
        tuning::TuneReport,
    },
    observability::{ModelKey, TraceCtx},
};
use cache::{quantize, CacheKey, CacheKeyRef, LruCache};
use catalog::SystemId;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use telemetry::span::{time as stage_time, Stage};
use telemetry::{Counter, DriftMonitor, Event, Histogram, Telemetry};

/// Histogram bounds (seconds) for served estimates: spans the paper's
/// sub-second scans up to the ~10-minute heavy joins.
const ESTIMATE_SECS_BOUNDS: [f64; 7] = [0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0];

/// Service tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Number of cache shards (rounded up to at least 1).
    pub shards: usize,
    /// LRU capacity per shard. `0` disables the estimate cache entirely:
    /// no shard lock is ever taken and every estimate recomputes through
    /// the packed kernels — the right trade for latency-critical
    /// deployments whose feature vectors rarely repeat.
    pub cache_capacity_per_shard: usize,
    /// Significant decimal digits kept when quantizing cache keys.
    pub sig_digits: i32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 8,
            cache_capacity_per_shard: 1024,
            sig_digits: 9,
        }
    }
}

/// Estimation-service failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// No model registered under `(system, op)`.
    UnknownModel {
        /// The requested system.
        system: SystemId,
        /// The requested operator.
        op: OperatorKind,
    },
    /// The feature vector's length does not match the model's arity.
    ArityMismatch {
        /// The model's input dimensionality.
        expected: usize,
        /// The supplied feature count.
        got: usize,
    },
    /// An internal bookkeeping invariant failed (a batch slot that every
    /// code path should have filled came back empty). Surfaced as an
    /// error instead of a panic so one corrupted batch cannot take down
    /// the optimizer's costing path.
    Internal(
        /// Which invariant was violated.
        &'static str,
    ),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownModel { system, op } => {
                write!(f, "no model registered for {op} on system `{system}`")
            }
            ServiceError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "feature arity mismatch: model expects {expected}, got {got}"
                )
            }
            ServiceError::Internal(context) => {
                write!(
                    f,
                    "internal estimation-service invariant violated: {context}"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to run a model.
    pub misses: u64,
}

impl CacheStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

struct Shard {
    cache: Mutex<LruCache>,
}

/// Reusable workspace for the estimate hot path.
///
/// Every buffer the pinned estimate paths need — quantized cache
/// probes, batch result staging, the packed-kernel scratch — lives
/// here, so a warm scratch makes [`EstimatorService::estimate_pinned_scratch`]
/// allocation-free steady-state (cache hits, and cache-disabled
/// in-range computes; the out-of-range remedy runs a per-row
/// regression and is excluded from the zero-alloc claim). The service
/// keeps one per thread for the plain `estimate*` entry points;
/// callers that own their threading (the serving frontend's batch
/// leader) hold their own and pass it to the `*_scratch` variants.
#[derive(Debug, Default)]
pub struct EstimateScratch {
    /// Quantized features for one cache probe.
    qbuf: Vec<u64>,
    /// Per-row results staged during a batch.
    results: Vec<Option<CostEstimate>>,
    /// Indices of rows the cache could not answer.
    miss_idx: Vec<usize>,
    /// Indices of in-range miss rows (order matches `nn_rows`).
    in_range: Vec<usize>,
    /// Flat `(rows × width)` staging for the batched NN forward pass.
    nn_rows: Vec<f64>,
    /// Batched NN outputs.
    nn_out: Vec<f64>,
    /// Fused packed-kernel workspace.
    packed: PackedOpScratch,
    /// Pivot-regression workspace for out-of-range remedy estimates.
    remedy: RemedyScratch,
    /// Flat staging used when flattening a nested `&[Vec<f64>]` batch.
    staging: Vec<f64>,
}

impl EstimateScratch {
    /// An empty scratch; every buffer grows on first use and is
    /// retained (`const` so it can live in a const-initialised
    /// `thread_local`, which never lazily allocates).
    pub const fn new() -> Self {
        EstimateScratch {
            qbuf: Vec::new(),
            results: Vec::new(),
            miss_idx: Vec::new(),
            in_range: Vec::new(),
            nn_rows: Vec::new(),
            nn_out: Vec::new(),
            packed: PackedOpScratch::new(),
            remedy: RemedyScratch::new(),
            staging: Vec::new(),
        }
    }
}

thread_local! {
    /// Per-thread scratch backing the plain (non-`_scratch`) estimate
    /// entry points. Const-initialised: touching it never allocates.
    static TLS_SCRATCH: RefCell<EstimateScratch> = const { RefCell::new(EstimateScratch::new()) };
}

struct Inner {
    /// The epoch-versioned model store; reads are lock-free snapshot
    /// loads, writes are serialised clone-modify-publish transactions.
    store: EpochStore,
    shards: Vec<Shard>,
    telemetry: Telemetry,
    /// Registry-backed cache counters (handles into `telemetry.metrics`).
    hits: Counter,
    misses: Counter,
    /// Distribution of served estimates, seconds.
    estimate_secs: Histogram,
    sig_digits: i32,
    /// False when `cache_capacity_per_shard` was 0: the hot path skips
    /// the shard lock and every probe entirely.
    cache_enabled: bool,
}

/// A thread-safe, cheaply-cloneable handle to the estimation service.
#[derive(Clone)]
pub struct EstimatorService {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for EstimatorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EstimatorService")
            .field("epoch", &self.epoch())
            .field("shards", &self.inner.shards.len())
            .field("models", &self.registered().len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl Default for EstimatorService {
    fn default() -> Self {
        EstimatorService::new(ServiceConfig::default())
    }
}

impl EstimatorService {
    /// Builds an empty service with its own (unsubscribed) telemetry.
    pub fn new(config: ServiceConfig) -> Self {
        EstimatorService::with_telemetry(config, Telemetry::new())
    }

    /// Builds an empty service publishing into the given telemetry
    /// handle: cache counters and the estimate histogram live in its
    /// metrics registry, and decision-trail events go to its tracer.
    pub fn with_telemetry(config: ServiceConfig, telemetry: Telemetry) -> Self {
        let n = config.shards.max(1);
        let shards = (0..n)
            .map(|_| {
                let shard = Shard {
                    cache: Mutex::new(LruCache::new(config.cache_capacity_per_shard)),
                };
                // Rank for `lock-order-check` builds; the model store's
                // commit/retired mutexes rank below the cache, so a
                // transaction may never be started while a cache shard
                // is held.
                shard.cache.set_rank(parking_lot::rank::SERVICE_CACHE);
                shard
            })
            .collect();
        let reg = &telemetry.metrics;
        reg.set_help(
            "estimator_cache_hits_total",
            "Estimates answered from the service's LRU cache.",
        );
        reg.set_help(
            "estimator_cache_misses_total",
            "Estimates that had to run a costing model.",
        );
        reg.set_help(
            "estimator_estimate_secs",
            "Distribution of served cost estimates, in estimated seconds.",
        );
        reg.set_help(
            "execution_log_dropped_entries",
            "Observations evicted oldest-first from a model's bounded execution log.",
        );
        let hits = reg.counter("estimator_cache_hits_total", &[]);
        let misses = reg.counter("estimator_cache_misses_total", &[]);
        let estimate_secs = reg.histogram("estimator_estimate_secs", &[], &ESTIMATE_SECS_BOUNDS);
        EstimatorService {
            inner: Arc::new(Inner {
                store: EpochStore::new(),
                shards,
                telemetry,
                hits,
                misses,
                estimate_secs,
                sig_digits: config.sig_digits,
                cache_enabled: config.cache_capacity_per_shard > 0,
            }),
        }
    }

    /// The service's telemetry handle (registry + tracer).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    fn shard(&self, system: &SystemId, op: OperatorKind) -> &Shard {
        let mut h = DefaultHasher::new();
        system.hash(&mut h);
        op.hash(&mut h);
        let idx = (h.finish() % self.inner.shards.len() as u64) as usize;
        &self.inner.shards[idx]
    }

    /// Pins the current model snapshot (a lock-free atomic load). The
    /// snapshot is immutable: every estimate computed against it — here
    /// or via the `*_pinned` methods — reflects exactly one model
    /// version, regardless of concurrent publications.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.inner.store.load()
    }

    /// The current model-state epoch.
    pub fn epoch(&self) -> Epoch {
        self.inner.store.epoch()
    }

    /// Publishes a content-identical snapshot under a new epoch.
    /// Estimates are bit-identical across a republish; only the cache
    /// tag changes.
    pub fn republish(&self) -> Arc<ModelSnapshot> {
        self.inner.store.republish("republish")
    }

    /// Publishes a new epoch whose model content is `snapshot`'s —
    /// rollback to a previously pinned or reloaded model state.
    pub fn rollback_to(&self, snapshot: &ModelSnapshot) -> Arc<ModelSnapshot> {
        self.inner.store.rollback_to(snapshot)
    }

    /// Runs one offline-tuning pipeline pass: drains every due model's
    /// execution log, retrains, and publishes all results as a single
    /// epoch bump (with one [`Event::TuningPass`] per retrained model).
    pub fn run_tuning(&self, pipeline: &TuningPipeline) -> PipelineReport {
        pipeline.run_once_traced(&self.inner.store, &self.inner.telemetry.tracer)
    }

    /// Registers (or replaces) the costing flow for one operator on one
    /// system; the operator kind comes from the trained model itself.
    pub fn register(&self, system: SystemId, flow: LogicalOpCosting) {
        let op = flow.model.op;
        let _ = self
            .inner
            .store
            .transaction("register", |tx| tx.insert_model(system, op, flow));
    }

    /// Every registered `(system, operator)` pair, sorted.
    pub fn registered(&self) -> Vec<(SystemId, OperatorKind)> {
        self.inner.store.load().keys()
    }

    /// Estimates one operator's cost against the current snapshot,
    /// consulting the cache first. Completely lock-free on the model
    /// store: the only lock touched is the cache shard's mutex.
    pub fn estimate(
        &self,
        system: &SystemId,
        op: OperatorKind,
        features: &[f64],
    ) -> Result<CostEstimate, ServiceError> {
        let snapshot = self.inner.store.load();
        self.estimate_pinned(&snapshot, system, op, features)
    }

    /// [`EstimatorService::estimate`] against a caller-pinned snapshot.
    /// Cached values are tagged with the snapshot's epoch, so replaying
    /// an estimate from an older pinned snapshot can never pollute the
    /// cache for readers of a newer one. Uses the calling thread's
    /// [`EstimateScratch`].
    pub fn estimate_pinned(
        &self,
        snapshot: &ModelSnapshot,
        system: &SystemId,
        op: OperatorKind,
        features: &[f64],
    ) -> Result<CostEstimate, ServiceError> {
        TLS_SCRATCH.with(|s| {
            self.estimate_pinned_scratch(snapshot, system, op, features, &mut s.borrow_mut())
        })
    }

    /// [`EstimatorService::estimate_pinned`] with a caller-owned
    /// workspace: the allocation-free steady-state form of the hot
    /// path. A cache hit probes with a borrowed key (no `SystemId`
    /// clone, no `Vec<u64>` collect) and returns the cached value; an
    /// in-range miss runs the snapshot's fused packed kernel
    /// ([`crate::logical_op::packed::PackedOpModel`]) through the
    /// scratch's warm buffers. Both perform zero heap allocations once
    /// the scratch is warm (tracing disabled; the insert after a
    /// cache-enabled miss and the out-of-range remedy still allocate).
    /// Results are bit-identical to the legacy flow path.
    pub fn estimate_pinned_scratch(
        &self,
        snapshot: &ModelSnapshot,
        system: &SystemId,
        op: OperatorKind,
        features: &[f64],
        scratch: &mut EstimateScratch,
    ) -> Result<CostEstimate, ServiceError> {
        let epoch = snapshot.epoch().get();
        let tracer = &self.inner.telemetry.tracer;
        let shard = self.shard(system, op);
        if self.inner.cache_enabled {
            let _probe = stage_time(Stage::CacheProbe);
            scratch.qbuf.clear();
            scratch
                .qbuf
                .extend(features.iter().map(|&v| quantize(v, self.inner.sig_digits)));
            let probe = CacheKeyRef {
                system,
                op,
                qfeatures: &scratch.qbuf,
            };
            if let Some(hit) = shard.cache.lock().get(&probe, epoch) {
                self.inner.hits.inc();
                tracer.emit(|| Event::EstimateServed {
                    system: system.to_string(),
                    operator: op.to_string(),
                    features: features.to_vec(),
                    secs: hit.secs,
                    source: format!("{:?}", hit.source),
                    cache_hit: true,
                    epoch: Some(epoch),
                });
                return Ok(hit);
            }
        }
        let flow = snapshot
            .model(system, op)
            .ok_or_else(|| ServiceError::UnknownModel {
                system: system.clone(),
                op,
            })?;
        check_arity(flow, features)?;
        // In-range rows take the fused packed kernel (bit-identical to
        // `predict_nn`, allocation-free); out-of-range rows need the
        // per-row remedy regression either way. The traced flow call
        // emits nothing for in-range estimates, so skipping it here
        // preserves the decision trail exactly.
        let est = match snapshot.packed(system, op) {
            Some(packed) if flow.model.meta.all_in_range(features, flow.remedy.beta) => {
                let _kernel = stage_time(Stage::Kernel);
                CostEstimate::new(
                    packed.predict_one(features, &mut scratch.packed),
                    crate::estimator::EstimateSource::NeuralNetwork,
                )
            }
            _ => {
                let _remedy = stage_time(Stage::Remedy);
                flow.estimate_readonly_scratch_traced(
                    features,
                    &TraceCtx::new(tracer, system),
                    &mut scratch.remedy,
                )
            }
        };
        self.inner.misses.inc();
        self.inner.estimate_secs.observe(est.secs);
        tracer.emit(|| Event::EstimateServed {
            system: system.to_string(),
            operator: op.to_string(),
            features: features.to_vec(),
            secs: est.secs,
            source: format!("{:?}", est.source),
            cache_hit: false,
            epoch: Some(epoch),
        });
        if self.inner.cache_enabled {
            let _probe = stage_time(Stage::CacheProbe);
            let key = CacheKey::from_quantized(system, op, &scratch.qbuf);
            shard.cache.lock().insert(key, est.clone(), epoch);
        }
        Ok(est)
    }

    /// Estimates a whole batch of feature vectors for one `(system, op)`
    /// against one pinned snapshot.
    ///
    /// Cached rows are answered from the cache; the remaining in-range
    /// rows share a single batched NN forward pass
    /// ([`crate::logical_op::model::LogicalOpModel::predict_nn_batch`]),
    /// and out-of-range rows go through the remedy individually. Results
    /// are identical, bit for bit, to calling
    /// [`EstimatorService::estimate`] per row at the same epoch, and the
    /// whole batch is internally consistent even mid-retrain.
    pub fn estimate_batch(
        &self,
        system: &SystemId,
        op: OperatorKind,
        rows: &[Vec<f64>],
    ) -> Result<Vec<CostEstimate>, ServiceError> {
        let snapshot = self.inner.store.load();
        self.estimate_batch_pinned(&snapshot, system, op, rows)
    }

    /// [`EstimatorService::estimate_batch`] against a caller-pinned
    /// snapshot (see [`EstimatorService::estimate_pinned`]). Flattens
    /// the nested rows into the calling thread's scratch and delegates
    /// to [`EstimatorService::estimate_batch_flat_pinned_scratch`].
    pub fn estimate_batch_pinned(
        &self,
        snapshot: &ModelSnapshot,
        system: &SystemId,
        op: OperatorKind,
        rows: &[Vec<f64>],
    ) -> Result<Vec<CostEstimate>, ServiceError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let width = rows[0].len();
        if rows.iter().any(|r| r.len() != width) {
            // A mixed-width batch cannot be flattened; surface the
            // per-row arity error the flat path would have raised.
            let flow = snapshot
                .model(system, op)
                .ok_or_else(|| ServiceError::UnknownModel {
                    system: system.clone(),
                    op,
                })?;
            for r in rows {
                check_arity(flow, r)?;
            }
            return Err(ServiceError::Internal("mixed-width batch"));
        }
        TLS_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            // The staging buffer is moved out while the core borrows the
            // rest of the scratch, then put back (no allocation either way).
            let mut staging = std::mem::take(&mut scratch.staging);
            staging.clear();
            for r in rows {
                staging.extend_from_slice(r);
            }
            let mut out = Vec::with_capacity(rows.len());
            let res = self.estimate_batch_flat_pinned_scratch(
                snapshot,
                system,
                op,
                &staging,
                width,
                &mut out,
                &mut scratch,
            );
            scratch.staging = staging;
            res.map(|()| out)
        })
    }

    /// Reuse-aware batch estimation: [`EstimatorService::estimate_batch_pinned`]
    /// with identical feature rows costed once.
    ///
    /// Workload-level planners repeatedly cost the *same* operator shape
    /// — duplicated statements, shared scans, one query matrix-costed on
    /// every engine — so a batch often carries far fewer distinct rows
    /// than rows. This entry deduplicates rows by exact bit pattern
    /// (`f64::to_bits`, so `-0.0` and `0.0` stay distinct and NaNs never
    /// merge), runs one batched pass over the distinct rows, and fans
    /// the results back out. Because the underlying batch path is
    /// bit-identical to the per-row pinned path, so is this one: the
    /// result for every row equals [`EstimatorService::estimate_pinned`]
    /// on that row at the same epoch.
    pub fn estimate_batch_dedup_pinned(
        &self,
        snapshot: &ModelSnapshot,
        system: &SystemId,
        op: OperatorKind,
        rows: &[Vec<f64>],
    ) -> Result<Vec<CostEstimate>, ServiceError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let mut first_of: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
        let mut distinct: Vec<Vec<f64>> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(rows.len());
        for row in rows {
            let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
            let slot = match first_of.get(&key) {
                Some(&slot) => slot,
                None => {
                    let slot = distinct.len();
                    first_of.insert(key, slot);
                    distinct.push(row.clone());
                    slot
                }
            };
            slot_of.push(slot);
        }
        let estimates = self.estimate_batch_pinned(snapshot, system, op, &distinct)?;
        let mut out = Vec::with_capacity(rows.len());
        for slot in slot_of {
            match estimates.get(slot) {
                Some(est) => out.push(est.clone()),
                None => return Err(ServiceError::Internal("dedup batch slot out of range")),
            }
        }
        Ok(out)
    }

    /// The flat, allocation-disciplined core of the batched estimate
    /// path: `rows.len() / width` feature rows in one contiguous
    /// row-major buffer, results written into `out` (cleared first).
    ///
    /// One cache pass under a single shard lock answers what it can
    /// (borrowed probes — no per-row key allocation); remaining
    /// in-range rows are staged into the scratch's flat buffer and
    /// share one fused [`crate::logical_op::packed::PackedOpModel`]
    /// batch kernel; out-of-range rows go through the remedy
    /// individually. Results are identical, bit for bit, to calling
    /// [`EstimatorService::estimate`] per row at the same epoch.
    /// With the cache disabled and tracing off, a warm scratch and warm
    /// `out` make the whole call allocation-free for in-range batches.
    #[allow(clippy::too_many_arguments)] // the hot-path entry point: every input is load-bearing
    pub fn estimate_batch_flat_pinned_scratch(
        &self,
        snapshot: &ModelSnapshot,
        system: &SystemId,
        op: OperatorKind,
        rows: &[f64],
        width: usize,
        out: &mut Vec<CostEstimate>,
        scratch: &mut EstimateScratch,
    ) -> Result<(), ServiceError> {
        out.clear();
        if rows.is_empty() {
            return Ok(());
        }
        if width == 0 || rows.len() % width.max(1) != 0 {
            return Err(ServiceError::Internal(
                "flat batch length is not a multiple of its width",
            ));
        }
        let n = rows.len() / width.max(1);
        let epoch = snapshot.epoch().get();
        let shard = self.shard(system, op);
        let EstimateScratch {
            qbuf,
            results,
            miss_idx,
            in_range,
            nn_rows,
            nn_out,
            packed: packed_scratch,
            remedy,
            ..
        } = scratch;
        results.clear();
        results.resize(n, None);
        miss_idx.clear();

        if self.inner.cache_enabled {
            let _probe = stage_time(Stage::CacheProbe);
            let sig = self.inner.sig_digits;
            let mut cache = shard.cache.lock();
            for (i, row) in rows.chunks_exact(width).enumerate() {
                qbuf.clear();
                qbuf.extend(row.iter().map(|&v| quantize(v, sig)));
                let probe = CacheKeyRef {
                    system,
                    op,
                    qfeatures: qbuf,
                };
                match cache.get(&probe, epoch) {
                    Some(hit) => results[i] = Some(hit),
                    None => miss_idx.push(i),
                }
            }
        } else {
            miss_idx.extend(0..n);
        }
        self.inner.hits.add((n - miss_idx.len()) as u64);

        if !miss_idx.is_empty() {
            let flow = snapshot
                .model(system, op)
                .ok_or_else(|| ServiceError::UnknownModel {
                    system: system.clone(),
                    op,
                })?;
            check_arity_width(flow, width)?;
            // Stage in-range misses for the fused batch kernel;
            // out-of-range misses need per-row pivot regressions anyway.
            in_range.clear();
            nn_rows.clear();
            for (i, row) in rows.chunks_exact(width).enumerate() {
                if results[i].is_some() {
                    continue; // cache hit
                }
                if flow.model.meta.all_in_range(row, flow.remedy.beta) {
                    in_range.push(i);
                    nn_rows.extend_from_slice(row);
                } else {
                    let _remedy = stage_time(Stage::Remedy);
                    results[i] = Some(flow.estimate_readonly_scratch(row, remedy));
                }
            }
            {
                let _kernel = stage_time(Stage::Kernel);
                match snapshot.packed(system, op) {
                    Some(packed) => {
                        packed.predict_batch_into(nn_rows, width, nn_out, packed_scratch);
                    }
                    None => {
                        // Unreachable by construction (a snapshot carries a
                        // packed form for every model), but fall back to the
                        // legacy per-row path rather than fail the batch.
                        nn_out.clear();
                        nn_out.extend(
                            nn_rows
                                .chunks_exact(width)
                                .map(|row| flow.model.predict_nn(row)),
                        );
                    }
                }
            }
            for (&i, &secs) in in_range.iter().zip(nn_out.iter()) {
                results[i] = Some(CostEstimate::new(
                    secs,
                    crate::estimator::EstimateSource::NeuralNetwork,
                ));
            }
            self.inner.misses.add(miss_idx.len() as u64);
            for &i in miss_idx.iter() {
                let est = results[i]
                    .as_ref()
                    .ok_or(ServiceError::Internal("miss slot not computed"))?;
                self.inner.estimate_secs.observe(est.secs);
            }
        }

        if self.inner.telemetry.tracer.is_enabled() {
            self.emit_batch_events_flat(system, op, rows, width, results, miss_idx, epoch);
        }

        if self.inner.cache_enabled && !miss_idx.is_empty() {
            let _probe = stage_time(Stage::CacheProbe);
            let sig = self.inner.sig_digits;
            let mut misses = miss_idx.iter().copied().peekable();
            let mut cache = shard.cache.lock();
            for (i, row) in rows.chunks_exact(width).enumerate() {
                if misses.peek() != Some(&i) {
                    continue;
                }
                misses.next();
                let Some(est) = results[i].as_ref() else {
                    continue;
                };
                qbuf.clear();
                qbuf.extend(row.iter().map(|&v| quantize(v, sig)));
                cache.insert(
                    CacheKey::from_quantized(system, op, qbuf),
                    est.clone(),
                    epoch,
                );
            }
        }

        out.reserve(n);
        for r in results.drain(..) {
            out.push(r.ok_or(ServiceError::Internal("batch slot left unfilled"))?);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_batch_events_flat(
        &self,
        system: &SystemId,
        op: OperatorKind,
        rows: &[f64],
        width: usize,
        results: &[Option<CostEstimate>],
        miss_idx: &[usize],
        epoch: u64,
    ) {
        for ((i, row), r) in rows.chunks_exact(width).enumerate().zip(results.iter()) {
            // Unfilled slots are reported by the caller as
            // `ServiceError::Internal`; skipping them here keeps event
            // emission panic-free.
            let Some(est) = r.as_ref() else { continue };
            let cache_hit = !miss_idx.contains(&i);
            self.inner.telemetry.tracer.emit(|| Event::EstimateServed {
                system: system.to_string(),
                operator: op.to_string(),
                features: row.to_vec(),
                secs: est.secs,
                source: format!("{:?}", est.source),
                cache_hit,
                epoch: Some(epoch),
            });
        }
    }

    /// Feeds an observed actual execution into the owning flow (log + α
    /// tuner) through a clone-modify-publish transaction; the published
    /// epoch implicitly invalidates cached estimates. The flow's
    /// eviction counter is surfaced as the
    /// `execution_log_dropped_entries{system,operator}` gauge.
    pub fn observe_actual(
        &self,
        system: &SystemId,
        op: OperatorKind,
        features: &[f64],
        actual_secs: f64,
    ) -> Result<(), ServiceError> {
        let tracer = &self.inner.telemetry.tracer;
        let (dropped, _) = self.inner.store.try_transaction("observe", |tx| {
            let ctx = TraceCtx::new(tracer, system);
            tx.update_model(system, op, |flow| {
                check_arity(flow, features)?;
                flow.observe_detached_traced(features, actual_secs, &ctx);
                Ok(flow.log.dropped())
            })
            .ok_or_else(|| ServiceError::UnknownModel {
                system: system.clone(),
                op,
            })?
        })?;
        let system_label = system.to_string();
        let op_label = op.to_string();
        self.inner
            .telemetry
            .metrics
            .gauge(
                "execution_log_dropped_entries",
                &[
                    ("system", system_label.as_str()),
                    ("operator", op_label.as_str()),
                ],
            )
            .set(dropped as f64);
        Ok(())
    }

    /// Re-fits the α blend weight from everything observed so far
    /// (clone-modify-publish; readers keep the previous snapshot until
    /// the new epoch lands).
    pub fn adjust_alpha(&self, system: &SystemId, op: OperatorKind) -> Result<f64, ServiceError> {
        let tracer = &self.inner.telemetry.tracer;
        let (alpha, _) = self.inner.store.try_transaction("adjust-alpha", |tx| {
            let ctx = TraceCtx::new(tracer, system);
            tx.update_model(system, op, |flow| flow.adjust_alpha_traced(&ctx))
                .ok_or_else(|| ServiceError::UnknownModel {
                    system: system.clone(),
                    op,
                })
        })?;
        Ok(alpha)
    }

    /// Runs the offline tuning phase over one model's accumulated
    /// execution log. Retraining happens on a private clone inside the
    /// transaction; the estimate path keeps serving the previous
    /// snapshot until the tuned model is published.
    pub fn offline_tune(
        &self,
        system: &SystemId,
        op: OperatorKind,
        config: &FitConfig,
    ) -> Result<TuneReport, ServiceError> {
        let tracer = &self.inner.telemetry.tracer;
        let (report, _) = self.inner.store.try_transaction("offline-tune", |tx| {
            let ctx = TraceCtx::new(tracer, system);
            let report = tx
                .update_model(system, op, |flow| flow.offline_tune_traced(config, &ctx))
                .ok_or_else(|| ServiceError::UnknownModel {
                    system: system.clone(),
                    op,
                })?;
            if report.entries_used > 0 {
                tx.note_training(report.entries_used, report.rmse_pct_after);
            }
            Ok(report)
        })?;
        Ok(report)
    }

    /// Replays every registered flow's pending execution-log entries into
    /// a drift monitor keyed by `(system, operator)`, pairing each logged
    /// actual with what the pinned snapshot's model predicts for its
    /// features. Samples are tagged with the snapshot's epoch, so drift
    /// is attributable to a model version. Returns the number of samples
    /// fed.
    pub fn feed_drift_monitor(&self, monitor: &mut DriftMonitor<ModelKey>) -> usize {
        let snapshot = self.inner.store.load();
        let epoch = snapshot.epoch().get();
        let mut fed = 0;
        for (key, flow) in snapshot.models() {
            for entry in flow.log.entries() {
                let predicted = flow.estimate_readonly(&entry.features).secs;
                monitor.record_versioned(key.clone(), predicted, entry.actual_secs, Some(epoch));
                fed += 1;
            }
        }
        fed
    }

    /// Runs a closure against a registered flow in the current snapshot
    /// — an escape hatch for inspection without exposing the map.
    pub fn with_flow<T>(
        &self,
        system: &SystemId,
        op: OperatorKind,
        f: impl FnOnce(&LogicalOpCosting) -> T,
    ) -> Result<T, ServiceError> {
        let snapshot = self.inner.store.load();
        let flow = snapshot
            .model(system, op)
            .ok_or_else(|| ServiceError::UnknownModel {
                system: system.clone(),
                op,
            })?;
        Ok(f(flow))
    }

    /// Current hit/miss counters (reads the registry-backed handles).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.get(),
            misses: self.inner.misses.get(),
        }
    }

    /// Zeroes the hit/miss counters.
    pub fn reset_stats(&self) {
        self.inner.hits.reset();
        self.inner.misses.reset();
    }

    /// Empties every shard's estimate cache (counters are untouched).
    pub fn clear_cache(&self) {
        for shard in &self.inner.shards {
            shard.cache.lock().clear();
        }
    }
}

fn check_arity(flow: &LogicalOpCosting, features: &[f64]) -> Result<(), ServiceError> {
    check_arity_width(flow, features.len())
}

fn check_arity_width(flow: &LogicalOpCosting, width: usize) -> Result<(), ServiceError> {
    let expected = flow.model.arity();
    if width != expected {
        return Err(ServiceError::ArityMismatch {
            expected,
            got: width,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimateSource;
    use crate::logical_op::model::LogicalOpModel;
    use neuro::Dataset;

    fn trained_flow(slope: f64) -> LogicalOpCosting {
        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=15 {
            for s in 1..=4 {
                let rows = r as f64 * 1e5;
                let size = s as f64 * 100.0;
                inputs.push(vec![rows, size]);
                targets.push(1.0 + slope * rows + 0.01 * size);
            }
        }
        let (model, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["rows", "size"],
            &Dataset::new(inputs, targets),
            &FitConfig::fast(),
        );
        LogicalOpCosting::new(model)
    }

    fn service_with_model() -> (EstimatorService, SystemId) {
        let svc = EstimatorService::default();
        let sys = SystemId::new("hive-a");
        svc.register(sys.clone(), trained_flow(2e-6));
        (svc, sys)
    }

    #[test]
    fn routes_to_registered_model_and_counts_misses_then_hits() {
        let (svc, sys) = service_with_model();
        let x = [5e5, 200.0];
        let first = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(first.source, EstimateSource::NeuralNetwork);
        let second = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(first, second);
        let stats = svc.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.requests(), 2);
    }

    #[test]
    fn unknown_system_or_operator_errors() {
        let (svc, sys) = service_with_model();
        assert!(matches!(
            svc.estimate(
                &SystemId::new("ghost"),
                OperatorKind::Aggregation,
                &[1.0, 2.0]
            ),
            Err(ServiceError::UnknownModel { .. })
        ));
        assert!(matches!(
            svc.estimate(&sys, OperatorKind::Join, &[1.0, 2.0]),
            Err(ServiceError::UnknownModel { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let (svc, sys) = service_with_model();
        let err = svc
            .estimate(&sys, OperatorKind::Aggregation, &[1.0])
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            err.to_string(),
            "feature arity mismatch: model expects 2, got 1"
        );
    }

    #[test]
    fn cached_estimates_match_the_flow_exactly() {
        let (svc, sys) = service_with_model();
        let x = [7e5, 300.0];
        let direct = svc
            .with_flow(&sys, OperatorKind::Aggregation, |f| f.estimate_readonly(&x))
            .unwrap();
        let via_service = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        let via_cache = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(direct, via_service);
        assert_eq!(direct, via_cache);
    }

    #[test]
    fn batch_path_is_bit_identical_to_single_path_and_counts_once() {
        let (svc, sys) = service_with_model();
        // Mix of in-range and far out-of-range rows.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![1e5 + i as f64 * 2.5e6, 100.0 + (i % 4) as f64 * 100.0])
            .collect();
        let batched = svc
            .estimate_batch(&sys, OperatorKind::Aggregation, &rows)
            .unwrap();
        let stats = svc.stats();
        assert_eq!((stats.hits, stats.misses), (0, 20));
        for (row, b) in rows.iter().zip(&batched) {
            let single = svc.estimate(&sys, OperatorKind::Aggregation, row).unwrap();
            assert_eq!(&single, b, "row {row:?}");
        }
        // Those singles were all cache hits.
        let stats = svc.stats();
        assert_eq!((stats.hits, stats.misses), (20, 20));
        // A second batch over the same rows is all hits.
        let again = svc
            .estimate_batch(&sys, OperatorKind::Aggregation, &rows)
            .unwrap();
        assert_eq!(again, batched);
        assert_eq!(
            svc.stats(),
            CacheStats {
                hits: 40,
                misses: 20
            }
        );
    }

    #[test]
    fn disabled_cache_recomputes_and_matches_cached_service_bit_for_bit() {
        let cached = EstimatorService::default();
        let uncached = EstimatorService::new(ServiceConfig {
            cache_capacity_per_shard: 0,
            ..ServiceConfig::default()
        });
        let sys = SystemId::new("hive-a");
        let flow = trained_flow(2e-6);
        cached.register(sys.clone(), flow.clone());
        uncached.register(sys.clone(), flow);
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![1e5 + i as f64 * 2.5e6, 100.0 + (i % 4) as f64 * 100.0])
            .collect();
        for row in &rows {
            let a = cached
                .estimate(&sys, OperatorKind::Aggregation, row)
                .unwrap();
            let b = uncached
                .estimate(&sys, OperatorKind::Aggregation, row)
                .unwrap();
            assert_eq!(a, b, "row {row:?}");
        }
        let batch_a = cached
            .estimate_batch(&sys, OperatorKind::Aggregation, &rows)
            .unwrap();
        let batch_b = uncached
            .estimate_batch(&sys, OperatorKind::Aggregation, &rows)
            .unwrap();
        assert_eq!(batch_a, batch_b);
        // The uncached service never records a hit, even on repeats.
        let _ = uncached
            .estimate(&sys, OperatorKind::Aggregation, &rows[0])
            .unwrap();
        assert_eq!(uncached.stats().hits, 0);
    }

    #[test]
    fn flat_batch_entry_point_matches_nested() {
        let (svc, sys) = service_with_model();
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![1e5 + i as f64 * 2.5e6, 100.0 + (i % 4) as f64 * 100.0])
            .collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let nested = svc
            .estimate_batch(&sys, OperatorKind::Aggregation, &rows)
            .unwrap();
        svc.clear_cache();
        let snapshot = svc.snapshot();
        let mut out = Vec::new();
        let mut scratch = EstimateScratch::new();
        svc.estimate_batch_flat_pinned_scratch(
            &snapshot,
            &sys,
            OperatorKind::Aggregation,
            &flat,
            2,
            &mut out,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(nested, out);
        // Degenerate shapes are errors, not panics.
        assert!(matches!(
            svc.estimate_batch_flat_pinned_scratch(
                &snapshot,
                &sys,
                OperatorKind::Aggregation,
                &flat[..3],
                2,
                &mut out,
                &mut scratch,
            ),
            Err(ServiceError::Internal(_))
        ));
    }

    #[test]
    fn observation_invalidates_cache_and_feeds_the_tuner() {
        let (svc, sys) = service_with_model();
        let oor = [2e7, 200.0];
        let _ = svc.estimate(&sys, OperatorKind::Aggregation, &oor).unwrap();
        svc.observe_actual(&sys, OperatorKind::Aggregation, &oor, 55.0)
            .unwrap();
        // Epoch bump: the cached value no longer counts as a hit.
        let _ = svc.estimate(&sys, OperatorKind::Aggregation, &oor).unwrap();
        assert_eq!(svc.stats(), CacheStats { hits: 0, misses: 2 });
        let (obs, log_len) = svc
            .with_flow(&sys, OperatorKind::Aggregation, |f| {
                (f.tuner.observations(), f.log.len())
            })
            .unwrap();
        assert_eq!((obs, log_len), (1, 1));
        // α re-fit goes through the service too.
        let alpha = svc.adjust_alpha(&sys, OperatorKind::Aggregation).unwrap();
        assert!((0.0..=1.0).contains(&alpha));
    }

    #[test]
    fn models_for_different_systems_are_independent() {
        let svc = EstimatorService::default();
        let a = SystemId::new("hive-a");
        let b = SystemId::new("presto-b");
        svc.register(a.clone(), trained_flow(2e-6));
        svc.register(b.clone(), trained_flow(8e-6));
        let x = [5e5, 200.0];
        let ea = svc.estimate(&a, OperatorKind::Aggregation, &x).unwrap();
        let eb = svc.estimate(&b, OperatorKind::Aggregation, &x).unwrap();
        assert_ne!(ea.secs, eb.secs, "different systems, different models");
        assert_eq!(svc.registered().len(), 2);
    }

    #[test]
    fn clear_cache_forces_recomputation() {
        let (svc, sys) = service_with_model();
        let x = [5e5, 200.0];
        let _ = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        svc.clear_cache();
        let _ = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(svc.stats(), CacheStats { hits: 0, misses: 2 });
        svc.reset_stats();
        assert_eq!(svc.stats().requests(), 0);
    }

    #[test]
    fn cloned_handles_share_state() {
        let (svc, sys) = service_with_model();
        let handle = svc.clone();
        let x = [5e5, 200.0];
        let _ = handle
            .estimate(&sys, OperatorKind::Aggregation, &x)
            .unwrap();
        let _ = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(svc.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn cache_counters_are_registry_backed() {
        let (svc, sys) = service_with_model();
        let x = [5e5, 200.0];
        let _ = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        let _ = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        let snap = svc.telemetry().metrics.snapshot();
        assert_eq!(snap.counter("estimator_cache_hits_total", &[]), Some(1));
        assert_eq!(snap.counter("estimator_cache_misses_total", &[]), Some(1));
        let h = snap.histogram("estimator_estimate_secs", &[]).unwrap();
        assert_eq!(h.count, 1, "only the miss runs a model");
        // The text exposition carries the same numbers.
        let text = svc.telemetry().metrics.render_prometheus();
        assert!(text.contains("estimator_cache_hits_total 1"));
        assert!(text.contains("estimator_cache_misses_total 1"));
    }

    #[test]
    fn subscribed_service_emits_estimate_served_events() {
        use std::sync::Arc;
        use telemetry::{Event, VecSubscriber};

        let sub = Arc::new(VecSubscriber::new());
        let svc = EstimatorService::with_telemetry(
            ServiceConfig::default(),
            Telemetry::with_subscriber(sub.clone()),
        );
        let sys = SystemId::new("hive-a");
        svc.register(sys.clone(), trained_flow(2e-6));
        let x = [5e5, 200.0];
        let est = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        let _ = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        let served: Vec<_> = sub
            .snapshot()
            .into_iter()
            .filter(|e| matches!(e, Event::EstimateServed { .. }))
            .collect();
        assert_eq!(served.len(), 2);
        match &served[0] {
            Event::EstimateServed {
                system,
                operator,
                features,
                secs,
                cache_hit,
                epoch,
                ..
            } => {
                assert_eq!(system, "hive-a");
                assert_eq!(operator, "aggregation");
                assert_eq!(features, &x.to_vec());
                assert_eq!(*secs, est.secs);
                assert!(!cache_hit);
                // register() published epoch 1; the estimate pinned it.
                assert_eq!(*epoch, Some(1));
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(matches!(
            served[1],
            Event::EstimateServed {
                cache_hit: true,
                epoch: Some(1),
                ..
            }
        ));
        // The batch path reports per-row hit/miss too.
        let rows = vec![x.to_vec(), vec![6e5, 300.0]];
        let _ = svc
            .estimate_batch(&sys, OperatorKind::Aggregation, &rows)
            .unwrap();
        let batch_served: Vec<bool> = sub
            .snapshot()
            .into_iter()
            .skip(2)
            .filter_map(|e| match e {
                Event::EstimateServed { cache_hit, .. } => Some(cache_hit),
                _ => None,
            })
            .collect();
        assert_eq!(batch_served, vec![true, false]);
    }

    #[test]
    fn service_drift_feeding_reaches_the_monitor() {
        use telemetry::DriftConfig;

        let (svc, sys) = service_with_model();
        for i in 0..4 {
            svc.observe_actual(
                &sys,
                OperatorKind::Aggregation,
                &[2e7 + i as f64 * 1e5, 200.0],
                55.0,
            )
            .unwrap();
        }
        let mut monitor = DriftMonitor::new(DriftConfig {
            min_samples: 1,
            ..DriftConfig::default()
        });
        let fed = svc.feed_drift_monitor(&mut monitor);
        assert_eq!(fed, 4);
        let health = monitor
            .status(&(sys.clone(), OperatorKind::Aggregation))
            .unwrap();
        assert_eq!(health.samples, 4);
        // Samples carry the snapshot's epoch: register + 4 observations
        // = epoch 5, and all predictions came from that one snapshot.
        assert_eq!(health.epoch_span, Some((5, 5)));
    }

    #[test]
    fn concurrent_estimates_match_serial_smoke() {
        let (svc, sys) = service_with_model();
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![1e5 + i as f64 * 4e5, 100.0 + (i % 4) as f64 * 100.0])
            .collect();
        let serial: Vec<CostEstimate> = rows
            .iter()
            .map(|r| svc.estimate(&sys, OperatorKind::Aggregation, r).unwrap())
            .collect();
        svc.clear_cache();
        let concurrent: Vec<CostEstimate> = std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(16)
                .map(|chunk| {
                    let svc = svc.clone();
                    let sys = sys.clone();
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|r| svc.estimate(&sys, OperatorKind::Aggregation, r).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(serial, concurrent);
    }

    #[test]
    fn stale_pinned_snapshot_cannot_pollute_the_current_epoch_cache() {
        // Regression for the generation-counter staleness window: an
        // estimate computed against pre-publication model state used to
        // be insertable into the cache with a generation value that a
        // later (or weakly-ordered concurrent) reader would still match,
        // serving the old model's output after an update. With
        // epoch-pinned keys the cache tag comes from the same snapshot
        // Arc as the model state, so the two cannot disagree.
        let (svc, sys) = service_with_model();
        let x = [5e5, 200.0];
        // A reader pins the snapshot, then gets descheduled...
        let pinned = svc.snapshot();
        // ...meanwhile the model is replaced and a new epoch publishes.
        svc.register(sys.clone(), trained_flow(8e-6));
        // The descheduled reader wakes up and completes its estimate
        // from the *old* snapshot — computed before the publication,
        // inserted after it (exactly the racy interleaving).
        let stale = svc
            .estimate_pinned(&pinned, &sys, OperatorKind::Aggregation, &x)
            .unwrap();
        // Readers of the current epoch never see the stale insert: the
        // fresh estimate is a miss that recomputes from the new model.
        let fresh = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_ne!(fresh.secs, stale.secs, "stale value must not be served");
        let direct = svc
            .with_flow(&sys, OperatorKind::Aggregation, |f| f.estimate_readonly(&x))
            .unwrap();
        assert_eq!(fresh, direct, "fresh estimate reflects the new model");
        // The cache keeps one entry per key, tagged with the epoch that
        // computed it: replaying under the old epoch and reading under
        // the new one each recompute (mismatched tag = miss) instead of
        // ever serving the other epoch's value.
        svc.reset_stats();
        let replay = svc
            .estimate_pinned(&pinned, &sys, OperatorKind::Aggregation, &x)
            .unwrap();
        let live = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(replay, stale);
        assert_eq!(live, fresh);
        assert_eq!(svc.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn republish_keeps_estimates_bit_identical_and_lineage_links() {
        let (svc, sys) = service_with_model();
        let x = [7.3e5, 250.0];
        let before_epoch = svc.epoch();
        let before = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        let snap = svc.republish();
        assert_eq!(snap.epoch().get(), before_epoch.get() + 1);
        assert_eq!(snap.lineage().parent, Some(before_epoch.get()));
        assert_eq!(snap.lineage().label, "republish");
        let after = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(before, after, "no-op republish must not change estimates");
        // The republish did invalidate the cache tag (second request is
        // a recompute, not a hit).
        assert_eq!(svc.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn rollback_restores_an_earlier_model_state() {
        let (svc, sys) = service_with_model();
        let x = [5e5, 200.0];
        let good = svc.snapshot();
        let good_est = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        svc.register(sys.clone(), trained_flow(9e-6));
        let bad_est = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_ne!(good_est.secs, bad_est.secs);
        let restored = svc.rollback_to(&good);
        assert_eq!(restored.lineage().restores, Some(good.epoch().get()));
        let back = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(back, good_est, "rollback must restore exact estimates");
    }

    #[test]
    fn tuning_pipeline_runs_through_the_service() {
        use std::sync::Arc;
        use telemetry::{Event, VecSubscriber};

        let sub = Arc::new(VecSubscriber::new());
        let svc = EstimatorService::with_telemetry(
            ServiceConfig::default(),
            Telemetry::with_subscriber(sub.clone()),
        );
        let sys = SystemId::new("hive-a");
        svc.register(sys.clone(), trained_flow(2e-6));
        let mut rows = 1.6e6;
        while rows <= 2.6e6 {
            svc.observe_actual(
                &sys,
                OperatorKind::Aggregation,
                &[rows, 200.0],
                1.0 + 2e-6 * rows + 2.0,
            )
            .unwrap();
            rows += 1e5;
        }
        let report = svc.run_tuning(&TuningPipeline::new(FitConfig::fast()));
        assert_eq!(report.reports.len(), 1);
        assert!(report.entries_drained > 0);
        assert_eq!(report.epoch, Some(svc.epoch()));
        assert!(svc
            .with_flow(&sys, OperatorKind::Aggregation, |f| f.log.is_empty())
            .unwrap());
        assert!(
            sub.snapshot()
                .iter()
                .any(|e| matches!(e, Event::TuningPass { .. })),
            "the pipeline pass must leave a tuning_pass trail"
        );
    }

    #[test]
    fn log_evictions_surface_in_the_registry_gauge() {
        let (svc, sys) = service_with_model();
        let mut tight = trained_flow(2e-6);
        tight.log.set_capacity(2);
        svc.register(sys.clone(), tight);
        for i in 0..5 {
            svc.observe_actual(
                &sys,
                OperatorKind::Aggregation,
                &[5e5 + i as f64 * 1e4, 200.0],
                2.0,
            )
            .unwrap();
        }
        assert_eq!(
            svc.with_flow(&sys, OperatorKind::Aggregation, |f| (
                f.log.len(),
                f.log.dropped()
            ))
            .unwrap(),
            (2, 3)
        );
        let snap = svc.telemetry().metrics.snapshot();
        assert_eq!(
            snap.gauge(
                "execution_log_dropped_entries",
                &[("system", "hive-a"), ("operator", "aggregation")]
            ),
            Some(3.0)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // A no-op republish (same training data, new epoch) must
            // yield bit-identical estimates for arbitrary feature
            // vectors — in-range, out-of-range, or degenerate.
            #[test]
            fn republish_is_bit_identical_for_arbitrary_features(
                features in proptest::collection::vec(0.0f64..4e6, 2),
                republishes in 1usize..4,
            ) {
                let (svc, sys) = service_with_model();
                let before = svc
                    .estimate(&sys, OperatorKind::Aggregation, &features)
                    .unwrap();
                for _ in 0..republishes {
                    let _ = svc.republish();
                }
                let after = svc
                    .estimate(&sys, OperatorKind::Aggregation, &features)
                    .unwrap();
                prop_assert_eq!(before, after);
            }
        }
    }
}
