//! Fused packed inference for one logical-operator model.
//!
//! [`crate::logical_op::LogicalOpModel::predict_nn`] walks three heap
//! allocations per call (domain mapping, scaler output, per-layer
//! activations) before a single multiply runs. [`PackedOpModel`] fuses
//! the whole chain — domain map, min–max scale, [`neuro::PackedNetwork`]
//! forward pass, inverse scale, clamp — into one read-only object with
//! contiguous parameter arenas and a caller-owned [`PackedOpScratch`],
//! so a warm estimate performs **zero** heap allocations.
//!
//! # Bit-identity contract
//!
//! Every value produced here is bit-identical to the legacy
//! `predict_nn` / `predict_nn_batch` path: the per-column scaling
//! replays `MinMaxScaler::transform` exactly (`span == 0.0 → 0.0`, else
//! `(d − min) / span`), the domain maps replay `to_domain` /
//! `from_domain_scalar`, and the network kernel carries
//! [`neuro::PackedNetwork`]'s own bit-identity guarantee. The packed
//! form is derived deterministically from the model by
//! [`crate::logical_op::LogicalOpModel::pack`]; differential tests
//! enforce the contract.

use crate::logical_op::model::ScalingMode;
use neuro::{Network, PackedNetwork, PackedScratch};

/// Reusable per-thread scratch for [`PackedOpModel`]: one scaled feature
/// row, a flat scaled-batch staging buffer, and the network's internal
/// buffers. Steady-state inference through a warm scratch performs zero
/// heap allocations.
#[derive(Debug, Default)]
pub struct PackedOpScratch {
    xrow: Vec<f64>,
    scaled: Vec<f64>,
    nn: PackedScratch,
}

impl PackedOpScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    pub const fn new() -> Self {
        PackedOpScratch {
            xrow: Vec::new(),
            scaled: Vec::new(),
            nn: PackedScratch::new(),
        }
    }
}

/// A read-only fused-inference copy of a [`crate::logical_op::LogicalOpModel`]:
/// the scaling parameters flattened next to a [`PackedNetwork`], with the
/// scale → forward → inverse chain fused into allocation-free kernels.
/// Training and mutation stay on the legacy model; pinned reads go
/// through the packed form carried by [`crate::epoch::ModelSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PackedOpModel {
    scaling: ScalingMode,
    /// Per-column fitted minima (input scaler).
    mins: Vec<f64>,
    /// Per-column fitted maxima (input scaler).
    maxs: Vec<f64>,
    /// Target-scaler fitted minimum.
    y_min: f64,
    /// Target-scaler fitted maximum.
    y_max: f64,
    network: PackedNetwork,
}

impl PackedOpModel {
    /// Assembles a packed model from its scaling parameters and a trained
    /// network. Called by [`crate::logical_op::LogicalOpModel::pack`],
    /// which owns the private scaler state.
    pub(crate) fn from_parts(
        scaling: ScalingMode,
        mins: Vec<f64>,
        maxs: Vec<f64>,
        y_min: f64,
        y_max: f64,
        network: &Network,
    ) -> Self {
        PackedOpModel {
            scaling,
            mins,
            maxs,
            y_min,
            y_max,
            network: PackedNetwork::from_network(network),
        }
    }

    /// Number of input dimensions.
    pub fn arity(&self) -> usize {
        self.mins.len()
    }

    /// The packed network kernel (for benches that want the bare NN).
    pub fn network(&self) -> &PackedNetwork {
        &self.network
    }

    /// Fused domain-map + min–max scale of one raw feature row into
    /// `out`. Bit-identical to `transform(&to_domain(scaling, row))`.
    fn scale_into(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            row.iter()
                .zip(self.mins.iter().zip(&self.maxs))
                .map(|(&v, (&min, &max))| {
                    let d = match self.scaling {
                        ScalingMode::Linear => v,
                        ScalingMode::Log => v.max(0.0).ln_1p(),
                    };
                    let span = max - min;
                    if span == 0.0 {
                        0.0
                    } else {
                        (d - min) / span
                    }
                }),
        );
    }

    /// Inverse target scaling + domain unmap + clamp-to-zero — the exact
    /// tail of the legacy `predict_nn`.
    fn unscale(&self, y: f64) -> f64 {
        let y = self.y_min + y * (self.y_max - self.y_min);
        let y = match self.scaling {
            ScalingMode::Linear => y,
            ScalingMode::Log => y.exp_m1(),
        };
        y.max(0.0)
    }

    /// Fused raw-NN prediction (seconds) for one raw feature row.
    /// Bit-identical to [`crate::logical_op::LogicalOpModel::predict_nn`];
    /// allocation-free once `scratch` is warm.
    ///
    /// # Panics
    /// Panics when `x.len()` differs from the model's arity.
    pub fn predict_one(&self, x: &[f64], scratch: &mut PackedOpScratch) -> f64 {
        assert_eq!(
            x.len(),
            self.arity(),
            "PackedOpModel::predict_one: arity mismatch"
        );
        self.scale_into(x, &mut scratch.xrow);
        self.unscale(self.network.predict_one(&scratch.xrow, &mut scratch.nn))
    }

    /// Fused raw-NN predictions for a row-major flat batch
    /// (`rows.len() / width` rows of `width` raw features), written into
    /// `out` (cleared first). Bit-identical, row for row, to
    /// [`crate::logical_op::LogicalOpModel::predict_nn_batch`];
    /// allocation-free once `out` and `scratch` are warm.
    ///
    /// # Panics
    /// Panics when `width` differs from the model's arity or `rows.len()`
    /// is not a multiple of `width`.
    pub fn predict_batch_into(
        &self,
        rows: &[f64],
        width: usize,
        out: &mut Vec<f64>,
        scratch: &mut PackedOpScratch,
    ) {
        assert_eq!(
            width,
            self.arity(),
            "PackedOpModel::predict_batch_into: arity mismatch"
        );
        assert_eq!(
            rows.len() % width.max(1),
            0,
            "PackedOpModel::predict_batch_into: flat batch is not a multiple of width"
        );
        // Stage the whole batch scaled and flat, run the network's
        // blocked lane-parallel kernel over it, then unscale in place.
        // Each element's arithmetic is unchanged from the row-at-a-time
        // form, so bit-identity holds.
        scratch.scaled.clear();
        scratch.scaled.reserve(rows.len());
        for row in rows.chunks_exact(width) {
            self.scale_into(row, &mut scratch.xrow);
            scratch.scaled.extend_from_slice(&scratch.xrow);
        }
        self.network
            .predict_batch_into(&scratch.scaled, width, out, &mut scratch.nn);
        for y in out.iter_mut() {
            *y = self.unscale(*y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OperatorKind;
    use crate::logical_op::model::{FitConfig, LogicalOpModel};
    use neuro::Dataset;

    fn synth_model(scaling: ScalingMode) -> LogicalOpModel {
        let inputs: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let f = i as f64;
                vec![
                    f * 10.0 + 1.0,
                    f * 3.0,
                    50.0 - f * 0.5,
                    f.mul_add(0.25, 2.0),
                ]
            })
            .collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|r| r.iter().sum::<f64>() * 0.01 + 0.5)
            .collect();
        let data = Dataset::new(inputs, targets);
        let mut cfg = FitConfig::fast();
        cfg.scaling = scaling;
        let (model, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["a", "b", "c", "d"],
            &data,
            &cfg,
        );
        model
    }

    #[test]
    fn packed_matches_predict_nn_bit_for_bit() {
        for scaling in [ScalingMode::Linear, ScalingMode::Log] {
            let model = synth_model(scaling);
            let packed = model.pack();
            let mut scratch = PackedOpScratch::new();
            for i in 0..40 {
                let f = i as f64;
                // Mix in-range, out-of-range, and negative probes.
                let x = vec![f * 17.0 - 30.0, f * 5.0, 60.0 - f, f * 0.4];
                assert_eq!(
                    model.predict_nn(&x).to_bits(),
                    packed.predict_one(&x, &mut scratch).to_bits(),
                    "probe {i} under {scaling:?}"
                );
            }
        }
    }

    #[test]
    fn packed_batch_matches_predict_nn_batch_bit_for_bit() {
        let model = synth_model(ScalingMode::Log);
        let packed = model.pack();
        let rows: Vec<Vec<f64>> = (0..25)
            .map(|i| {
                let f = i as f64;
                vec![f * 11.0, f * 2.0 + 1.0, 40.0 - f, f]
            })
            .collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let legacy = model.predict_nn_batch(&rows);
        let mut out = Vec::new();
        let mut scratch = PackedOpScratch::new();
        packed.predict_batch_into(&flat, 4, &mut out, &mut scratch);
        assert_eq!(legacy.len(), out.len());
        for (i, (l, p)) in legacy.iter().zip(&out).enumerate() {
            assert_eq!(l.to_bits(), p.to_bits(), "row {i}: legacy {l} packed {p}");
        }
    }

    #[test]
    fn packing_is_deterministic() {
        let model = synth_model(ScalingMode::Log);
        assert_eq!(model.pack(), model.pack());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_one_checks_arity() {
        let model = synth_model(ScalingMode::Linear);
        model
            .pack()
            .predict_one(&[1.0], &mut PackedOpScratch::new());
    }
}
