//! The neural-network cost model for one logical operator.
//!
//! §3: inputs are min–max normalised, the network has two hidden layers,
//! and the topology is selected by cross validation ("we vary the number
//! of nodes in the 1st layer between the number of inputs and the double
//! of that number, and vary the number of nodes in the 2nd layer between
//! three and half the number of the 1st layer's nodes"), training 70 % /
//! testing 30 %, selecting the least-RMSE topology.

use crate::estimator::OperatorKind;
use crate::logical_op::dims::TrainingMeta;
use crate::logical_op::packed::PackedOpModel;
use mathkit::scale::{MinMaxScaler, ScalarScaler};
use mathkit::{r2_score, rmse, rmse_pct};
use neuro::{search_topology, train, Adam, Dataset, Network, Topology, TrainConfig, TrainTrace};
use serde::{Deserialize, Serialize};

/// How model inputs and targets are normalised before training.
///
/// `Linear` min–max scaling is the paper-faithful default — and it is what
/// gives the NN the extrapolation weakness that motivates the whole online
/// remedy / offline tuning machinery (§3, Fig. 14). `Log` scaling
/// (`ln(1+x)` on features and target before min–max) is the modern
/// engineering choice: it fits heavy-tailed cost surfaces better *and*
/// largely removes the out-of-range failure — quantified in the scaling
/// ablation (`exp_ablations`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScalingMode {
    /// Raw min–max normalisation (the paper's setting).
    #[default]
    Linear,
    /// `ln(1+x)` before min–max, on features and target.
    Log,
}

/// How to pick the network topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyChoice {
    /// Fixed hidden widths.
    Fixed {
        /// First hidden layer width.
        layer1: usize,
        /// Second hidden layer width.
        layer2: usize,
    },
    /// The paper's cross-validation search, stepping the first layer by
    /// the given stride (1 = exhaustive).
    CrossValidated {
        /// Stride through the first-layer candidates.
        step: usize,
        /// Per-candidate training budget (iterations).
        search_iterations: usize,
    },
}

/// Model-fitting configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Topology selection strategy.
    pub topology: TopologyChoice,
    /// Final training iterations (the paper uses 20 000).
    pub iterations: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Trace cadence for the convergence curve (0 disables).
    pub trace_every: usize,
    /// RNG seed (weights, shuffling, splits).
    pub seed: u64,
    /// Input/target normalisation mode.
    #[serde(default)]
    pub scaling: ScalingMode,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            topology: TopologyChoice::CrossValidated {
                step: 2,
                search_iterations: 1_500,
            },
            iterations: 20_000,
            batch_size: 32,
            trace_every: 250,
            seed: 0xC0575,
            scaling: ScalingMode::Linear,
        }
    }
}

impl FitConfig {
    /// A fast configuration for tests and quick experiments.
    pub fn fast() -> Self {
        FitConfig {
            topology: TopologyChoice::Fixed {
                layer1: 10,
                layer2: 5,
            },
            iterations: 2_500,
            batch_size: 32,
            trace_every: 0,
            seed: 0xC0575,
            scaling: ScalingMode::Linear,
        }
    }
}

/// Diagnostics from a fit.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// The convergence trace (RMSE% on the held-out set per iteration
    /// checkpoint) — Figs. 11b/12b.
    pub trace: TrainTrace,
    /// The chosen hidden topology.
    pub topology: Topology,
    /// RMSE on the held-out 30 % in target units (seconds).
    pub test_rmse_secs: f64,
    /// RMSE% on the held-out set.
    pub test_rmse_pct: f64,
    /// R² on the held-out set — the number annotated on Figs. 11c/12c.
    pub test_r2: f64,
    /// (actual, predicted) pairs for the held-out set — the scatter data
    /// of Figs. 11c/12c.
    pub test_scatter: Vec<(f64, f64)>,
}

/// A trained logical-operator model: scalers + network + range metadata +
/// the raw training data (kept because the online remedy regresses over
/// the nearest training points, §3).
///
/// Inputs are normalised in the log domain (`log1p` then min–max): the
/// Fig. 10 training grids are log-spaced over three decades, and raw
/// min–max would crush most of the grid into a corner of the unit cube.
/// The range metadata and the online remedy still operate on raw feature
/// values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogicalOpModel {
    /// The operator this model covers.
    pub op: OperatorKind,
    /// Input scaler (fitted in the configured scaling domain).
    scaler_x: MinMaxScaler,
    /// Target scaler (same domain).
    scaler_y: ScalarScaler,
    /// The normalisation domain used at fit time.
    #[serde(default)]
    scaling: ScalingMode,
    /// The trained network.
    pub network: Network,
    /// Trained-range metadata per dimension.
    pub meta: TrainingMeta,
    /// The raw (unscaled) training data.
    training: Dataset,
}

impl LogicalOpModel {
    /// Fits a model on a raw dataset (features → elapsed seconds).
    pub fn fit(
        op: OperatorKind,
        dim_names: &[&str],
        data: &Dataset,
        config: &FitConfig,
    ) -> (Self, FitReport) {
        assert!(data.len() >= 10, "need at least 10 training examples");
        let meta = TrainingMeta::from_rows(dim_names, &data.inputs);
        let scaling = config.scaling;
        let domain_inputs: Vec<Vec<f64>> =
            data.inputs.iter().map(|r| to_domain(scaling, r)).collect();
        let scaler_x = MinMaxScaler::fit(&domain_inputs);
        let domain_targets: Vec<f64> = data
            .targets
            .iter()
            .map(|&t| to_domain_scalar(scaling, t))
            .collect();
        let scaler_y = ScalarScaler::fit(&domain_targets);
        let scaled = Dataset::new(
            scaler_x.transform_batch(&domain_inputs),
            domain_targets
                .iter()
                .map(|&t| scaler_y.transform(t))
                .collect(),
        );

        let (train_set, test_set) = scaled.split(0.7, config.seed);
        let train_cfg = TrainConfig {
            iterations: config.iterations,
            batch_size: config.batch_size,
            trace_every: config.trace_every,
            seed: config.seed,
            early_stop_patience: 0,
        };

        let (network, topology, trace) = match config.topology {
            TopologyChoice::Fixed { layer1, layer2 } => {
                let mut net = Network::new(scaled.arity(), &[layer1, layer2], config.seed);
                let mut adam = Adam::new(1e-3);
                let trace = train(&mut net, &train_set, &test_set, &mut adam, &train_cfg);
                (net, Topology { layer1, layer2 }, trace)
            }
            TopologyChoice::CrossValidated {
                step,
                search_iterations,
            } => {
                let (net, report) =
                    search_topology(&scaled, step, search_iterations, &train_cfg, config.seed);
                // Re-derive a trace for the winner (search_topology trains
                // with trace disabled internally when trace_every == 0).
                let mut net2 = net.clone();
                let trace = if config.trace_every > 0 {
                    let mut fresh = Network::new(
                        scaled.arity(),
                        &[report.best.layer1, report.best.layer2],
                        config.seed ^ 0xA5A5,
                    );
                    let mut adam = Adam::new(1e-3);
                    let t = train(&mut fresh, &train_set, &test_set, &mut adam, &train_cfg);
                    net2 = fresh;
                    t
                } else {
                    let preds = net2.predict_batch(&test_set.inputs);
                    TrainTrace {
                        points: vec![],
                        final_rmse_pct: rmse_pct(&preds, &test_set.targets),
                        iterations: train_cfg.iterations,
                        early_stopped: false,
                    }
                };
                (net2, report.best, trace)
            }
        };

        // The trainer's trace is RMSE% over the *normalised log-domain*
        // targets — a pure convergence curve (the shape of Figs. 11b/12b).
        // Original-unit accuracy is reported separately in the FitReport.

        let model = LogicalOpModel {
            op,
            scaler_x,
            scaler_y,
            scaling,
            network,
            meta,
            training: data.clone(),
        };

        // Held-out evaluation in original units.
        let mut scatter = Vec::with_capacity(test_set.len());
        for (x, &y) in test_set.inputs.iter().zip(&test_set.targets) {
            let raw_x = from_domain(scaling, &model.scaler_x.inverse(x));
            let actual = from_domain_scalar(scaling, model.scaler_y.inverse(y));
            scatter.push((actual, model.predict_nn(&raw_x)));
        }
        let (actuals, preds): (Vec<f64>, Vec<f64>) = scatter.iter().copied().unzip();
        let report = FitReport {
            trace,
            topology,
            test_rmse_secs: rmse(&preds, &actuals),
            test_rmse_pct: rmse_pct(&preds, &actuals),
            test_r2: r2_score(&preds, &actuals),
            test_scatter: scatter,
        };
        (model, report)
    }

    /// Raw NN prediction (seconds), for inputs inside or outside the
    /// trained range. Negative outputs are clamped to zero.
    pub fn predict_nn(&self, x: &[f64]) -> f64 {
        let scaled = self.scaler_x.transform(&to_domain(self.scaling, x));
        let y = self.network.predict(&scaled);
        from_domain_scalar(self.scaling, self.scaler_y.inverse(y)).max(0.0)
    }

    /// Raw NN predictions for a batch of rows — one scaling pass and one
    /// [`neuro::Network::predict_batch`] call, so per-row allocations are
    /// amortised. Produces exactly the values [`LogicalOpModel::predict_nn`]
    /// would, row by row.
    pub fn predict_nn_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let scaled: Vec<Vec<f64>> = rows
            .iter()
            .map(|x| self.scaler_x.transform(&to_domain(self.scaling, x)))
            .collect();
        self.network
            .predict_batch(&scaled)
            .into_iter()
            .map(|y| from_domain_scalar(self.scaling, self.scaler_y.inverse(y)).max(0.0))
            .collect()
    }

    /// Derives the read-only fused-inference form of this model: the
    /// scaling parameters flattened next to a struct-of-arrays copy of
    /// the network ([`PackedOpModel`]). Derivation is deterministic —
    /// packing the same model twice yields identical arenas — and the
    /// packed form predicts bit-identically to
    /// [`LogicalOpModel::predict_nn`] / [`LogicalOpModel::predict_nn_batch`].
    pub fn pack(&self) -> PackedOpModel {
        PackedOpModel::from_parts(
            self.scaling,
            self.scaler_x.mins.clone(),
            self.scaler_x.maxs.clone(),
            self.scaler_y.min,
            self.scaler_y.max,
            &self.network,
        )
    }

    /// The raw training data (used by the online remedy).
    pub fn training_data(&self) -> &Dataset {
        &self.training
    }

    /// Number of input dimensions.
    pub fn arity(&self) -> usize {
        self.meta.dims.len()
    }

    /// Retrains the network on the union of the original training data
    /// and `extra`, replacing the model in place. The scalers are refit so
    /// extended value ranges normalise properly, and the metadata is
    /// recomputed from the union — callers that enforce the continuity
    /// rule (offline tuning) preserve and restore their own metadata.
    /// Returns the new held-out RMSE%.
    pub fn retrain(&mut self, extra: &Dataset, config: &FitConfig) -> f64 {
        let mut all = self.training.clone();
        all.extend(extra);
        let names: Vec<&str> = self.meta.dims.iter().map(|d| d.name.as_str()).collect();
        let (new_model, report) = LogicalOpModel::fit(self.op, &names, &all, config);
        *self = new_model;
        report.test_rmse_pct
    }
}

/// Maps a feature vector into the scaling domain.
fn to_domain(mode: ScalingMode, x: &[f64]) -> Vec<f64> {
    match mode {
        ScalingMode::Linear => x.to_vec(),
        ScalingMode::Log => x.iter().map(|&v| v.max(0.0).ln_1p()).collect(),
    }
}

/// Inverse of [`to_domain`].
fn from_domain(mode: ScalingMode, x: &[f64]) -> Vec<f64> {
    match mode {
        ScalingMode::Linear => x.to_vec(),
        ScalingMode::Log => x.iter().map(|&v| v.exp_m1().max(0.0)).collect(),
    }
}

/// Scalar versions for the target.
fn to_domain_scalar(mode: ScalingMode, y: f64) -> f64 {
    match mode {
        ScalingMode::Linear => y,
        ScalingMode::Log => y.max(0.0).ln_1p(),
    }
}

/// Inverse of [`to_domain_scalar`].
fn from_domain_scalar(mode: ScalingMode, y: f64) -> f64 {
    match mode {
        ScalingMode::Linear => y,
        ScalingMode::Log => y.exp_m1(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic 4-dim "aggregation-like" dataset with a mildly nonlinear
    /// response.
    fn synth_dataset(n: usize) -> Dataset {
        let mut inputs = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let rows = 1e4 + (i % 20) as f64 * 5e4;
            let size = 40.0 + (i % 6) as f64 * 160.0;
            let groups = rows / [2.0, 5.0, 10.0][i % 3];
            let width = 12.0 + (i % 5) as f64 * 8.0;
            let y = 2.0 + rows * size * 4e-9 + groups * 1e-6 + width * 0.001;
            inputs.push(vec![rows, size, groups, width]);
            targets.push(y);
        }
        Dataset::new(inputs, targets)
    }

    const NAMES: [&str; 4] = ["rows", "size", "groups", "width"];

    #[test]
    fn fixed_topology_fit_learns_the_surface() {
        let data = synth_dataset(300);
        let cfg = FitConfig::fast();
        let (_, report) = LogicalOpModel::fit(OperatorKind::Aggregation, &NAMES, &data, &cfg);
        assert!(report.test_r2 > 0.9, "r2 {}", report.test_r2);
        assert_eq!(
            report.topology,
            Topology {
                layer1: 10,
                layer2: 5
            }
        );
    }

    #[test]
    fn predictions_are_in_original_units() {
        let data = synth_dataset(300);
        let (model, _) =
            LogicalOpModel::fit(OperatorKind::Aggregation, &NAMES, &data, &FitConfig::fast());
        let x = &data.inputs[7];
        let pred = model.predict_nn(x);
        let actual = data.targets[7];
        assert!(
            (pred - actual).abs() / actual < 0.5,
            "pred {pred} vs {actual}"
        );
    }

    #[test]
    fn metadata_covers_training_ranges() {
        let data = synth_dataset(100);
        let (model, _) =
            LogicalOpModel::fit(OperatorKind::Aggregation, &NAMES, &data, &FitConfig::fast());
        assert_eq!(model.arity(), 4);
        assert_eq!(model.meta.dims[1].min, 40.0);
        assert!(model.meta.all_in_range(&data.inputs[0], 2.0));
    }

    #[test]
    fn cross_validated_topology_is_within_paper_bounds() {
        let data = synth_dataset(120);
        let cfg = FitConfig {
            topology: TopologyChoice::CrossValidated {
                step: 4,
                search_iterations: 200,
            },
            iterations: 600,
            batch_size: 16,
            trace_every: 0,
            seed: 5,
            scaling: Default::default(),
        };
        let (_, report) = LogicalOpModel::fit(OperatorKind::Aggregation, &NAMES, &data, &cfg);
        assert!((4..=8).contains(&report.topology.layer1));
        assert!(report.topology.layer2 >= 3);
    }

    #[test]
    fn retrain_improves_out_of_range_predictions() {
        let data = synth_dataset(300);
        let (mut model, _) =
            LogicalOpModel::fit(OperatorKind::Aggregation, &NAMES, &data, &FitConfig::fast());
        // Out-of-range points: much larger row counts.
        let mut extra = Dataset::new(vec![], vec![]);
        for i in 0..60 {
            let rows = 3e6 + (i % 10) as f64 * 1e5;
            let size = 40.0 + (i % 6) as f64 * 160.0;
            let groups = rows / 5.0;
            let width = 20.0;
            let y = 2.0 + rows * size * 4e-9 + groups * 1e-6 + width * 0.001;
            extra.push(vec![rows, size, groups, width], y);
        }
        let probe = vec![3.5e6, 500.0, 7e5, 20.0];
        let truth = 2.0 + 3.5e6 * 500.0 * 4e-9 + 7e5 * 1e-6 + 0.02;
        let before = (model.predict_nn(&probe) - truth).abs();
        model.retrain(&extra, &FitConfig::fast());
        let after = (model.predict_nn(&probe) - truth).abs();
        assert!(after < before, "before err {before}, after err {after}");
    }

    #[test]
    fn batched_predictions_match_single_row_path() {
        let data = synth_dataset(120);
        let (model, _) =
            LogicalOpModel::fit(OperatorKind::Aggregation, &NAMES, &data, &FitConfig::fast());
        let batched = model.predict_nn_batch(&data.inputs);
        for (x, &b) in data.inputs.iter().zip(&batched) {
            assert_eq!(model.predict_nn(x), b);
        }
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let data = synth_dataset(100);
        let (model, _) =
            LogicalOpModel::fit(OperatorKind::Aggregation, &NAMES, &data, &FitConfig::fast());
        let json = serde_json::to_string(&model).unwrap();
        let back: LogicalOpModel = serde_json::from_str(&json).unwrap();
        let x = &data.inputs[3];
        assert_eq!(model.predict_nn(x), back.predict_nn(x));
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn fit_requires_enough_data() {
        let data = synth_dataset(5);
        LogicalOpModel::fit(OperatorKind::Aggregation, &NAMES, &data, &FitConfig::fast());
    }
}
