//! Logical-operator costing (§3): black-box remotes.
//!
//! The pipeline:
//!
//! 1. [`training`] — run a grid of training queries on the remote system
//!    and label each configuration with the observed elapsed time;
//! 2. [`dims`] — record per-dimension metadata (min, max, stepSize) for
//!    the trained ranges;
//! 3. [`model`] — fit a two-hidden-layer neural network (topology via the
//!    paper's cross-validation search);
//! 4. [`flow`] — the Fig. 3 query-time flow: inside the trained range →
//!    use the NN; way off → trigger the online remedy;
//! 5. [`remedy`] — the Fig. 4 online remedy: an on-the-fly regression on
//!    the pivot dimension(s), blended as `α·c_nn + (1−α)·c_reg`, with α
//!    auto-adjusted batch by batch (Table 1);
//! 6. [`tuning`] — the offline tuning phase: log actual executions,
//!    periodically retrain, expand `[min,max]` under the continuity rule.

pub mod dims;
pub mod flow;
pub mod model;
pub mod packed;
pub mod remedy;
pub mod training;
pub mod tuning;

pub use dims::{DimensionMeta, TrainingMeta};
pub use flow::LogicalOpCosting;
pub use model::{FitConfig, FitReport, LogicalOpModel, TopologyChoice};
pub use packed::{PackedOpModel, PackedOpScratch};
pub use remedy::{AlphaTuner, RemedyConfig, RemedyOutcome, RemedyScratch};
pub use training::{run_training, LabeledRun, TrainingOutput};
pub use tuning::{ExecutionLog, LogEntry, TuneReport};
