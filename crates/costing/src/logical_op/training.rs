//! Phase 1 of logical-op costing: executing the training grid on the
//! remote system and labelling each configuration with its observed cost
//! (the Fig. 2 table and the training-cost curves of Figs. 11a/12a).

use crate::{
    estimator::OperatorKind,
    features::{agg_features, join_features},
};
use neuro::Dataset;
use remote_sim::{analyze::analyze, RemoteSystem, SimDuration};
use serde::{Deserialize, Serialize};

/// One executed training query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledRun {
    /// The query that was executed.
    pub sql: String,
    /// The model features of the query.
    pub features: Vec<f64>,
    /// Observed elapsed time, seconds.
    pub elapsed_secs: f64,
}

/// The outcome of a training campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingOutput {
    /// Which operator was trained.
    pub op: OperatorKind,
    /// Every labelled run, in execution order.
    pub runs: Vec<LabeledRun>,
    /// Cumulative remote busy time after each query — the y-axis of
    /// Figs. 11a and 12a against query index.
    pub cumulative: Vec<SimDuration>,
    /// Queries that failed feature extraction or execution (kept for
    /// observability; an occasional failure must not abort a multi-hour
    /// campaign).
    pub failures: Vec<(String, String)>,
}

impl TrainingOutput {
    /// The labelled runs as a [`Dataset`] (features → elapsed seconds).
    pub fn dataset(&self) -> Dataset {
        Dataset::new(
            self.runs.iter().map(|r| r.features.clone()).collect(),
            self.runs.iter().map(|r| r.elapsed_secs).collect(),
        )
    }

    /// Total training time on the remote system.
    pub fn total_time(&self) -> SimDuration {
        self.cumulative.last().copied().unwrap_or(SimDuration::ZERO)
    }
}

/// Executes `queries` against `remote`, extracting the operator features
/// of each and labelling them with observed elapsed times.
///
/// This is deliberately sequential — the paper's training cost figures
/// assume one query at a time on a dedicated cluster ("we assume the
/// remote system is dedicated to the submitted queries").
pub fn run_training<R: RemoteSystem + ?Sized>(
    remote: &mut R,
    op: OperatorKind,
    queries: &[String],
) -> TrainingOutput {
    let mut runs = Vec::with_capacity(queries.len());
    let mut cumulative = Vec::with_capacity(queries.len());
    let mut failures = Vec::new();
    let start = remote.total_busy();

    for sql in queries {
        let features = match extract_features(remote, op, sql) {
            Ok(f) => f,
            Err(msg) => {
                failures.push((sql.clone(), msg));
                continue;
            }
        };
        match remote.submit_sql(sql) {
            Ok(exec) => {
                runs.push(LabeledRun {
                    sql: sql.clone(),
                    features,
                    elapsed_secs: exec.elapsed.as_secs(),
                });
                cumulative.push(remote.total_busy() - start);
            }
            Err(e) => failures.push((sql.clone(), e.to_string())),
        }
    }
    TrainingOutput {
        op,
        runs,
        cumulative,
        failures,
    }
}

fn extract_features<R: RemoteSystem + ?Sized>(
    remote: &R,
    op: OperatorKind,
    sql: &str,
) -> Result<Vec<f64>, String> {
    let plan = sqlkit::sql_to_plan(sql).map_err(|e| e.to_string())?;
    let analysis = analyze(remote.catalog(), &plan).map_err(|e| e.to_string())?;
    match op {
        OperatorKind::Join => join_features(&analysis)
            .map(|f| f.to_vec())
            .ok_or_else(|| "query has no join operator".to_string()),
        OperatorKind::Aggregation => agg_features(&analysis)
            .map(|f| f.to_vec())
            .ok_or_else(|| "query has no aggregation operator".to_string()),
        OperatorKind::Scan | OperatorKind::Sort => {
            Err("only join and aggregation operators are grid-trained".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remote_sim::ClusterEngine;
    use workload::{agg_training_queries, join_training_queries, register_tables, TableSpec};

    fn small_engine() -> ClusterEngine {
        let mut e = ClusterEngine::paper_hive("hive", 11).without_noise();
        let specs = [
            TableSpec::new(10_000, 40),
            TableSpec::new(20_000, 40),
            TableSpec::new(40_000, 40),
        ];
        register_tables(&mut e, &specs).unwrap();
        e
    }

    #[test]
    fn aggregation_training_produces_labeled_dataset() {
        let mut e = small_engine();
        let queries: Vec<String> = agg_training_queries(&[TableSpec::new(10_000, 40)])
            .iter()
            .map(|q| q.sql())
            .collect();
        let out = run_training(&mut e, OperatorKind::Aggregation, &queries);
        assert_eq!(out.runs.len(), queries.len());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        let ds = out.dataset();
        assert_eq!(ds.arity(), crate::features::AGG_DIMS);
        assert!(ds.targets.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn join_training_produces_seven_dim_dataset() {
        let mut e = small_engine();
        let specs = [
            TableSpec::new(10_000, 40),
            TableSpec::new(20_000, 40),
            TableSpec::new(40_000, 40),
        ];
        let queries: Vec<String> = join_training_queries(&specs)
            .iter()
            .map(|q| q.sql())
            .collect();
        let out = run_training(&mut e, OperatorKind::Join, &queries);
        assert_eq!(out.runs.len(), queries.len());
        assert_eq!(out.dataset().arity(), crate::features::JOIN_DIMS);
    }

    #[test]
    fn cumulative_time_is_monotone() {
        let mut e = small_engine();
        let queries: Vec<String> = agg_training_queries(&[TableSpec::new(10_000, 40)])
            .iter()
            .take(10)
            .map(|q| q.sql())
            .collect();
        let out = run_training(&mut e, OperatorKind::Aggregation, &queries);
        for w in out.cumulative.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(out.total_time(), *out.cumulative.last().unwrap());
    }

    #[test]
    fn bad_queries_are_collected_not_fatal() {
        let mut e = small_engine();
        let queries = vec![
            "SELECT a5, SUM(a1) AS s FROM T10000_40 GROUP BY a5".to_string(),
            "SELECT a5, SUM(a1) AS s FROM missing_table GROUP BY a5".to_string(),
            "SELECT a1 FROM T10000_40".to_string(), // no aggregation
        ];
        let out = run_training(&mut e, OperatorKind::Aggregation, &queries);
        assert_eq!(out.runs.len(), 1);
        assert_eq!(out.failures.len(), 2);
    }
}
