//! The offline tuning phase (§3).
//!
//! "Whenever IntelliSphere executes a remote operator on an external
//! system … it captures the actual execution cost and pushes this
//! information to a log. Periodically, this log is fed to the neural
//! network model to tune its structure with the new observed data."
//! Range metadata is expanded only under the continuity rule (see
//! [`crate::logical_op::dims`]).

use crate::logical_op::model::{FitConfig, LogicalOpModel};
use neuro::Dataset;
use serde::{Deserialize, Serialize};

/// One logged remote execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The operator's model features.
    pub features: Vec<f64>,
    /// Observed elapsed time, seconds.
    pub actual_secs: f64,
}

/// Default bound on pending log entries when none is configured.
pub const DEFAULT_LOG_CAPACITY: usize = 8192;

/// The execution log feeding offline tuning.
///
/// The log is bounded: once `capacity()` entries are pending, each new
/// observation evicts the oldest one, so a system that never runs a
/// tuning pass cannot grow memory without limit. Evictions are counted
/// in [`ExecutionLog::dropped`] for telemetry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionLog {
    entries: Vec<LogEntry>,
    /// Configured bound; `None` means [`DEFAULT_LOG_CAPACITY`]. Kept as
    /// an `Option` so profiles persisted before the bound existed load
    /// with the default.
    #[serde(default)]
    capacity: Option<usize>,
    /// Total entries evicted oldest-first since the log was created.
    #[serde(default)]
    dropped: u64,
}

impl ExecutionLog {
    /// An empty log with the default capacity.
    pub fn new() -> Self {
        ExecutionLog::default()
    }

    /// An empty log bounded at `capacity` pending entries (zero is
    /// treated as one).
    pub fn with_capacity(capacity: usize) -> Self {
        ExecutionLog {
            capacity: Some(capacity.max(1)),
            ..ExecutionLog::default()
        }
    }

    /// The bound on pending entries.
    pub fn capacity(&self) -> usize {
        self.capacity.unwrap_or(DEFAULT_LOG_CAPACITY).max(1)
    }

    /// Reconfigures the bound (zero is treated as one), evicting
    /// oldest-first immediately if the log is over the new bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = Some(capacity.max(1));
        let cap = self.capacity();
        if self.entries.len() > cap {
            let excess = self.entries.len() - cap;
            self.entries.drain(..excess);
            self.dropped += excess as u64;
        }
    }

    /// Total observations evicted (oldest-first) because the log was at
    /// capacity when they would have been retained.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends one observation ("Dump a record into the batch", Fig. 3),
    /// evicting the oldest pending entry if the log is at capacity.
    pub fn push(&mut self, features: Vec<f64>, actual_secs: f64) {
        let cap = self.capacity();
        if self.entries.len() >= cap {
            let excess = self.entries.len() + 1 - cap;
            self.entries.drain(..excess);
            self.dropped += excess as u64;
        }
        self.entries.push(LogEntry {
            features,
            actual_secs,
        });
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The pending entries, oldest first (read-only view for drift
    /// monitoring and reports).
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// The entries as a dataset.
    pub fn dataset(&self) -> Dataset {
        Dataset::new(
            self.entries.iter().map(|e| e.features.clone()).collect(),
            self.entries.iter().map(|e| e.actual_secs).collect(),
        )
    }

    /// Drains the log (after a tuning pass consumed it).
    pub fn drain(&mut self) -> Vec<LogEntry> {
        std::mem::take(&mut self.entries)
    }
}

/// What a tuning pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Entries consumed from the log.
    pub entries_used: usize,
    /// Dimensions whose `[min,max]` range was expanded.
    pub dims_expanded: Vec<usize>,
    /// Held-out RMSE% after retraining.
    pub rmse_pct_after: f64,
}

/// Runs one offline tuning pass: absorb logged ranges (continuity rule),
/// retrain the network on training ∪ log, and drain the log.
pub fn offline_tune(
    model: &mut LogicalOpModel,
    log: &mut ExecutionLog,
    beta: f64,
    config: &FitConfig,
) -> TuneReport {
    if log.is_empty() {
        return TuneReport {
            entries_used: 0,
            dims_expanded: vec![],
            rmse_pct_after: f64::NAN,
        };
    }
    let extra = log.dataset();
    // Absorb under the continuity rule FIRST, on the pre-retrain metadata;
    // retraining rebuilds metadata from the raw union (which would wrongly
    // swallow discontiguous points), so the absorbed metadata is restored
    // afterwards.
    let dims_expanded = model.meta.absorb_rows(&extra.inputs, beta);
    let preserved_meta = model.meta.clone();
    // The log is typically a thin slice of newly-observed territory next
    // to a much larger in-range training set, and refitting the scalers
    // to the extended range compresses that territory further. Oversample
    // the log so the new region carries roughly a quarter of the SGD
    // sampling mass; duplicating observations adds no information but
    // makes mini-batch training actually visit the region being learned.
    let n_train = model.training_data().len();
    let reps = (n_train + extra.len())
        .div_ceil(2 * extra.len().max(1))
        .max(1);
    let mut weighted = extra.clone();
    for _ in 1..reps {
        weighted.extend(&extra);
    }
    let rmse_pct_after = model.retrain(&weighted, config);
    model.meta = preserved_meta;
    let entries_used = log.drain().len();
    TuneReport {
        entries_used,
        dims_expanded,
        rmse_pct_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OperatorKind;

    fn base_model() -> LogicalOpModel {
        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=15 {
            for s in 1..=4 {
                let rows = r as f64 * 1e5;
                let size = s as f64 * 100.0;
                inputs.push(vec![rows, size]);
                targets.push(0.5 + 3e-6 * rows + 0.02 * size);
            }
        }
        let data = Dataset::new(inputs, targets);
        LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["rows", "size"],
            &data,
            &FitConfig::fast(),
        )
        .0
    }

    #[test]
    fn log_evicts_oldest_first_at_capacity() {
        let mut log = ExecutionLog::with_capacity(3);
        for i in 0..5 {
            log.push(vec![i as f64], i as f64);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let oldest: Vec<f64> = log.entries().iter().map(|e| e.actual_secs).collect();
        assert_eq!(oldest, vec![2.0, 3.0, 4.0]);
        // Shrinking the bound evicts immediately, still oldest-first.
        log.set_capacity(1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 4);
        assert_eq!(log.entries()[0].actual_secs, 4.0);
    }

    #[test]
    fn unbounded_era_json_loads_with_the_default_capacity() {
        let json = r#"{"entries":[{"features":[1.0,2.0],"actual_secs":3.0}]}"#;
        let log: ExecutionLog = serde_json::from_str(json).expect("legacy log");
        assert_eq!(log.len(), 1);
        assert_eq!(log.capacity(), DEFAULT_LOG_CAPACITY);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn log_accumulates_and_drains() {
        let mut log = ExecutionLog::new();
        assert!(log.is_empty());
        log.push(vec![1.0, 2.0], 3.0);
        log.push(vec![4.0, 5.0], 6.0);
        assert_eq!(log.len(), 2);
        let ds = log.dataset();
        assert_eq!(ds.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn tuning_consumes_log_and_improves_oor_accuracy() {
        let mut model = base_model();
        let mut log = ExecutionLog::new();
        // Log a contiguous ladder of larger row counts (continuity holds:
        // trained max 1.5M with top step 1e5; beta=2 slack 2e5).
        let mut rows = 1.6e6;
        while rows <= 3.0e6 {
            for s in [100.0, 200.0] {
                log.push(vec![rows, s], 0.5 + 3e-6 * rows + 0.02 * s);
            }
            rows += 2e5;
        }
        let probe = vec![2.8e6, 200.0];
        let truth = 0.5 + 3e-6 * 2.8e6 + 0.02 * 200.0;
        let before = (model.predict_nn(&probe) - truth).abs();

        let report = offline_tune(&mut model, &mut log, 2.0, &FitConfig::fast());
        assert!(report.entries_used > 0);
        assert!(report.dims_expanded.contains(&0));
        assert!(log.is_empty());
        // Range expanded to the last contiguous point.
        assert!(model.meta.dims[0].max >= 3.0e6 - 2e5);
        let after = (model.predict_nn(&probe) - truth).abs();
        assert!(after < before, "before {before}, after {after}");
    }

    #[test]
    fn discontiguous_log_entries_do_not_expand_range() {
        let mut model = base_model();
        let trained_max = model.meta.dims[0].max;
        let mut log = ExecutionLog::new();
        // One far-away observation: continuity broken.
        log.push(vec![5e7, 200.0], 150.0);
        // Need ≥... retrain requires data; single point fine.
        let report = offline_tune(&mut model, &mut log, 2.0, &FitConfig::fast());
        assert!(report.dims_expanded.is_empty());
        assert_eq!(model.meta.dims[0].max, trained_max);
        assert!(model.meta.dims[0].detached.contains(&5e7));
    }

    #[test]
    fn empty_log_is_a_noop() {
        let mut model = base_model();
        let before = model.clone();
        let mut log = ExecutionLog::new();
        let report = offline_tune(&mut model, &mut log, 2.0, &FitConfig::fast());
        assert_eq!(report.entries_used, 0);
        assert_eq!(model.network, before.network);
    }
}
