//! The offline tuning phase (§3).
//!
//! "Whenever IntelliSphere executes a remote operator on an external
//! system … it captures the actual execution cost and pushes this
//! information to a log. Periodically, this log is fed to the neural
//! network model to tune its structure with the new observed data."
//! Range metadata is expanded only under the continuity rule (see
//! [`crate::logical_op::dims`]).

use crate::logical_op::model::{FitConfig, LogicalOpModel};
use neuro::Dataset;
use serde::{Deserialize, Serialize};

/// One logged remote execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The operator's model features.
    pub features: Vec<f64>,
    /// Observed elapsed time, seconds.
    pub actual_secs: f64,
}

/// The execution log feeding offline tuning.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionLog {
    entries: Vec<LogEntry>,
}

impl ExecutionLog {
    /// An empty log.
    pub fn new() -> Self {
        ExecutionLog::default()
    }

    /// Appends one observation ("Dump a record into the batch", Fig. 3).
    pub fn push(&mut self, features: Vec<f64>, actual_secs: f64) {
        self.entries.push(LogEntry {
            features,
            actual_secs,
        });
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The pending entries, oldest first (read-only view for drift
    /// monitoring and reports).
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// The entries as a dataset.
    pub fn dataset(&self) -> Dataset {
        Dataset::new(
            self.entries.iter().map(|e| e.features.clone()).collect(),
            self.entries.iter().map(|e| e.actual_secs).collect(),
        )
    }

    /// Drains the log (after a tuning pass consumed it).
    pub fn drain(&mut self) -> Vec<LogEntry> {
        std::mem::take(&mut self.entries)
    }
}

/// What a tuning pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Entries consumed from the log.
    pub entries_used: usize,
    /// Dimensions whose `[min,max]` range was expanded.
    pub dims_expanded: Vec<usize>,
    /// Held-out RMSE% after retraining.
    pub rmse_pct_after: f64,
}

/// Runs one offline tuning pass: absorb logged ranges (continuity rule),
/// retrain the network on training ∪ log, and drain the log.
pub fn offline_tune(
    model: &mut LogicalOpModel,
    log: &mut ExecutionLog,
    beta: f64,
    config: &FitConfig,
) -> TuneReport {
    if log.is_empty() {
        return TuneReport {
            entries_used: 0,
            dims_expanded: vec![],
            rmse_pct_after: f64::NAN,
        };
    }
    let extra = log.dataset();
    // Absorb under the continuity rule FIRST, on the pre-retrain metadata;
    // retraining rebuilds metadata from the raw union (which would wrongly
    // swallow discontiguous points), so the absorbed metadata is restored
    // afterwards.
    let dims_expanded = model.meta.absorb_rows(&extra.inputs, beta);
    let preserved_meta = model.meta.clone();
    // The log is typically a thin slice of newly-observed territory next
    // to a much larger in-range training set, and refitting the scalers
    // to the extended range compresses that territory further. Oversample
    // the log so the new region carries roughly a quarter of the SGD
    // sampling mass; duplicating observations adds no information but
    // makes mini-batch training actually visit the region being learned.
    let n_train = model.training_data().len();
    let reps = (n_train + extra.len())
        .div_ceil(2 * extra.len().max(1))
        .max(1);
    let mut weighted = extra.clone();
    for _ in 1..reps {
        weighted.extend(&extra);
    }
    let rmse_pct_after = model.retrain(&weighted, config);
    model.meta = preserved_meta;
    let entries_used = log.drain().len();
    TuneReport {
        entries_used,
        dims_expanded,
        rmse_pct_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OperatorKind;

    fn base_model() -> LogicalOpModel {
        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=15 {
            for s in 1..=4 {
                let rows = r as f64 * 1e5;
                let size = s as f64 * 100.0;
                inputs.push(vec![rows, size]);
                targets.push(0.5 + 3e-6 * rows + 0.02 * size);
            }
        }
        let data = Dataset::new(inputs, targets);
        LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["rows", "size"],
            &data,
            &FitConfig::fast(),
        )
        .0
    }

    #[test]
    fn log_accumulates_and_drains() {
        let mut log = ExecutionLog::new();
        assert!(log.is_empty());
        log.push(vec![1.0, 2.0], 3.0);
        log.push(vec![4.0, 5.0], 6.0);
        assert_eq!(log.len(), 2);
        let ds = log.dataset();
        assert_eq!(ds.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn tuning_consumes_log_and_improves_oor_accuracy() {
        let mut model = base_model();
        let mut log = ExecutionLog::new();
        // Log a contiguous ladder of larger row counts (continuity holds:
        // trained max 1.5M with top step 1e5; beta=2 slack 2e5).
        let mut rows = 1.6e6;
        while rows <= 3.0e6 {
            for s in [100.0, 200.0] {
                log.push(vec![rows, s], 0.5 + 3e-6 * rows + 0.02 * s);
            }
            rows += 2e5;
        }
        let probe = vec![2.8e6, 200.0];
        let truth = 0.5 + 3e-6 * 2.8e6 + 0.02 * 200.0;
        let before = (model.predict_nn(&probe) - truth).abs();

        let report = offline_tune(&mut model, &mut log, 2.0, &FitConfig::fast());
        assert!(report.entries_used > 0);
        assert!(report.dims_expanded.contains(&0));
        assert!(log.is_empty());
        // Range expanded to the last contiguous point.
        assert!(model.meta.dims[0].max >= 3.0e6 - 2e5);
        let after = (model.predict_nn(&probe) - truth).abs();
        assert!(after < before, "before {before}, after {after}");
    }

    #[test]
    fn discontiguous_log_entries_do_not_expand_range() {
        let mut model = base_model();
        let trained_max = model.meta.dims[0].max;
        let mut log = ExecutionLog::new();
        // One far-away observation: continuity broken.
        log.push(vec![5e7, 200.0], 150.0);
        // Need ≥... retrain requires data; single point fine.
        let report = offline_tune(&mut model, &mut log, 2.0, &FitConfig::fast());
        assert!(report.dims_expanded.is_empty());
        assert_eq!(model.meta.dims[0].max, trained_max);
        assert!(model.meta.dims[0].detached.contains(&5e7));
    }

    #[test]
    fn empty_log_is_a_noop() {
        let mut model = base_model();
        let before = model.clone();
        let mut log = ExecutionLog::new();
        let report = offline_tune(&mut model, &mut log, 2.0, &FitConfig::fast());
        assert_eq!(report.entries_used, 0);
        assert_eq!(model.network, before.network);
    }
}
