//! The online remedy phase (Fig. 4).
//!
//! When a query-time input is *way off* the trained range on one or more
//! pivot dimensions, the NN cannot be trusted alone. The remedy:
//!
//! 1. extract the `k` training records "having the following properties:
//!    (1) their values in the D_inRange dimensions are matching (or very
//!    close) to the corresponding values in Q, and (2) their values in the
//!    Pivot dimension are the immediate successors and/or predecessors of
//!    the corresponding value in Q";
//! 2. fit a regression over the pivot value(s) of those records;
//! 3. combine: `final = α·c_nn + (1−α)·c_reg`;
//! 4. "initially, α is set to 0.5, and as the system executes more
//!    queries, α gets automatically adjusted to narrow the gap between the
//!    estimated and actual execution times" ([`AlphaTuner`], Table 1).

use crate::logical_op::model::LogicalOpModel;
use crate::observability::TraceCtx;
use mathkit::{LinearModel, SimpleLinearModel};
use serde::{Deserialize, Serialize};
use telemetry::Event;

/// Online-remedy configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemedyConfig {
    /// The paper's β (> 1): a value is *way off* when outside the trained
    /// range by more than `β · stepSize`.
    pub beta: f64,
    /// How many nearest training records feed the pivot regression (the
    /// paper's system parameter `k`).
    pub k_neighbors: usize,
}

impl Default for RemedyConfig {
    fn default() -> Self {
        RemedyConfig {
            beta: 2.0,
            k_neighbors: 8,
        }
    }
}

/// Reusable workspace for the pivot regression.
///
/// The pivot regression scores every training record, sorts a candidate
/// pool, and assembles regression inputs — each a heap buffer. Callers
/// on the estimate hot path (the service's [`EstimateScratch`]) hold one
/// `RemedyScratch` so those buffers are allocated once and reused across
/// out-of-range estimates instead of per call. The remedy path is still
/// not strictly allocation-free (the outcome carries an owned pivot
/// list, and the multi-pivot branch builds its regression rows fresh),
/// but the O(n) scoring buffers — the dominant cost — are amortised.
///
/// All buffers start empty, so `new` is `const` and a scratch embedded
/// in a const-initialised thread-local allocates nothing until first
/// use.
///
/// [`EstimateScratch`]: crate::service::EstimateScratch
#[derive(Debug, Default)]
pub struct RemedyScratch {
    /// Per-dimension trained spans (distance normalisers).
    spans: Vec<f64>,
    /// (distance, index) pairs over the whole training set.
    scored: Vec<(f64, usize)>,
    /// Indices of the k nearest candidate records.
    candidates: Vec<usize>,
    /// Single-pivot regression inputs.
    xs: Vec<f64>,
    /// Regression targets.
    ys: Vec<f64>,
    /// Multi-pivot probe point.
    probe: Vec<f64>,
}

impl RemedyScratch {
    /// An empty workspace; buffers grow on first use and are reused
    /// afterwards.
    pub const fn new() -> Self {
        RemedyScratch {
            spans: Vec::new(),
            scored: Vec::new(),
            candidates: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            probe: Vec::new(),
        }
    }
}

/// The outcome of one remedy invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RemedyOutcome {
    /// The blended estimate (seconds).
    pub estimate: f64,
    /// The NN's own (extrapolated) estimate.
    pub nn_estimate: f64,
    /// The pivot regression's estimate.
    pub regression_estimate: f64,
    /// Indices of the pivot dimensions.
    pub pivots: Vec<usize>,
    /// The α used for blending.
    pub alpha: f64,
}

/// Runs the `QueryTime-Remedy()` procedure for input `x` (which must have
/// at least one pivot dimension under `cfg.beta`).
pub fn remedy_estimate(
    model: &LogicalOpModel,
    x: &[f64],
    cfg: &RemedyConfig,
    alpha: f64,
) -> RemedyOutcome {
    remedy_estimate_scratch(model, x, cfg, alpha, &mut RemedyScratch::new())
}

/// [`remedy_estimate`] with a caller-provided workspace: identical
/// result, but the pivot-regression buffers come from (and return to)
/// `scratch` instead of being allocated per call.
pub fn remedy_estimate_scratch(
    model: &LogicalOpModel,
    x: &[f64],
    cfg: &RemedyConfig,
    alpha: f64,
    scratch: &mut RemedyScratch,
) -> RemedyOutcome {
    let pivots = model.meta.pivots(x, cfg.beta);
    assert!(
        !pivots.is_empty(),
        "remedy_estimate called with all dimensions in range"
    );
    let nn_estimate = model.predict_nn(x);
    let regression_estimate = pivot_regression(model, x, &pivots, cfg.k_neighbors, scratch);
    let estimate = (alpha * nn_estimate + (1.0 - alpha) * regression_estimate).max(0.0);
    RemedyOutcome {
        estimate,
        nn_estimate,
        regression_estimate,
        pivots,
        alpha,
    }
}

/// [`remedy_estimate`] plus the decision trail: emits
/// [`Event::PivotsDetected`] and [`Event::RemedyBlend`] describing the
/// pivot set, the α weight, and both blend components. With a disabled
/// tracer this is exactly [`remedy_estimate`] — the event closures never
/// run.
pub fn remedy_estimate_traced(
    model: &LogicalOpModel,
    x: &[f64],
    cfg: &RemedyConfig,
    alpha: f64,
    ctx: &TraceCtx<'_>,
) -> RemedyOutcome {
    let out = remedy_estimate(model, x, cfg, alpha);
    ctx.tracer.emit(|| Event::PivotsDetected {
        system: ctx.system.to_string(),
        operator: model.op.to_string(),
        pivots: out.pivots.clone(),
    });
    ctx.tracer.emit(|| Event::RemedyBlend {
        system: ctx.system.to_string(),
        operator: model.op.to_string(),
        alpha: out.alpha,
        nn_estimate: out.nn_estimate,
        regression_estimate: out.regression_estimate,
        blended: out.estimate,
    });
    out
}

/// [`remedy_estimate_scratch`] plus the decision trail — the workspace
/// counterpart of [`remedy_estimate_traced`], emitting the identical
/// event pair.
pub fn remedy_estimate_scratch_traced(
    model: &LogicalOpModel,
    x: &[f64],
    cfg: &RemedyConfig,
    alpha: f64,
    ctx: &TraceCtx<'_>,
    scratch: &mut RemedyScratch,
) -> RemedyOutcome {
    let out = remedy_estimate_scratch(model, x, cfg, alpha, scratch);
    ctx.tracer.emit(|| Event::PivotsDetected {
        system: ctx.system.to_string(),
        operator: model.op.to_string(),
        pivots: out.pivots.clone(),
    });
    ctx.tracer.emit(|| Event::RemedyBlend {
        system: ctx.system.to_string(),
        operator: model.op.to_string(),
        alpha: out.alpha,
        nn_estimate: out.nn_estimate,
        regression_estimate: out.regression_estimate,
        blended: out.estimate,
    });
    out
}

/// Builds the on-the-fly regression over the pivot dimension(s) from the
/// closest training points and extrapolates to the query's pivot values.
/// All O(n) working buffers live in `scratch` and are reused across
/// calls.
fn pivot_regression(
    model: &LogicalOpModel,
    x: &[f64],
    pivots: &[usize],
    k: usize,
    scratch: &mut RemedyScratch,
) -> f64 {
    let data = model.training_data();
    let n = data.len();
    let k = k.clamp(2, n);
    let RemedyScratch {
        spans,
        scored,
        candidates,
        xs,
        ys,
        probe,
    } = scratch;

    // Distance in the in-range dimensions only, normalised by each
    // dimension's trained span so no dimension dominates.
    spans.clear();
    spans.extend(
        model
            .meta
            .dims
            .iter()
            .map(|d| (d.max - d.min).max(f64::EPSILON)),
    );
    scored.clear();
    scored.extend((0..n).map(|i| {
        let row = &data.inputs[i];
        let mut dist = 0.0;
        for j in 0..row.len() {
            if pivots.contains(&j) {
                continue;
            }
            let d = (row[j] - x[j]) / spans[j];
            dist += d * d;
        }
        (dist, i)
    }));
    scored.sort_by(|a, b| mathkit::total_cmp_f64(&a.0, &b.0));

    // Among the closest matches in the in-range dims, prefer the records
    // whose pivot values are nearest the query's (its "immediate
    // successors and/or predecessors").
    let pool = (k * 4).min(n);
    candidates.clear();
    candidates.extend(scored[..pool].iter().map(|&(_, i)| i));
    candidates.sort_by(|&a, &b| {
        let da = pivot_distance(&data.inputs[a], x, pivots, spans);
        let db = pivot_distance(&data.inputs[b], x, pivots, spans);
        mathkit::total_cmp_f64(&da, &db)
    });
    candidates.truncate(k);

    ys.clear();
    ys.extend(candidates.iter().map(|&i| data.targets[i]));
    if pivots.len() == 1 {
        // One-dimension pivot: simple linear regression (Fig. 4a).
        let p = pivots[0];
        xs.clear();
        xs.extend(candidates.iter().map(|&i| data.inputs[i][p]));
        match SimpleLinearModel::fit(xs, ys) {
            Ok(m) => m.predict(x[p]).max(0.0),
            Err(_) => mean(ys),
        }
    } else {
        // Multi-dimension pivot: multiple regression over the pivot dims
        // (Fig. 4b). The nested rows match `LinearModel::fit`'s input
        // shape; this rare branch still allocates them per call.
        let rows: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&i| pivots.iter().map(|&p| data.inputs[i][p]).collect())
            .collect();
        probe.clear();
        probe.extend(pivots.iter().map(|&p| x[p]));
        match LinearModel::fit(&rows, ys) {
            Ok(m) => m.predict(probe).max(0.0),
            Err(_) => mean(ys),
        }
    }
}

fn pivot_distance(row: &[f64], x: &[f64], pivots: &[usize], spans: &[f64]) -> f64 {
    pivots
        .iter()
        .map(|&p| {
            let d = (row[p] - x[p]) / spans[p];
            d * d
        })
        .sum()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The α auto-adjuster of Table 1: after each batch of observed remedy
/// executions, pick the α minimising RMSE% over everything seen so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlphaTuner {
    alpha: f64,
    /// Observed (nn, regression, actual) triples.
    history: Vec<(f64, f64, f64)>,
}

impl Default for AlphaTuner {
    fn default() -> Self {
        AlphaTuner::new(0.5)
    }
}

impl AlphaTuner {
    /// Starts with the paper's initial α = 0.5.
    pub fn new(initial_alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&initial_alpha));
        AlphaTuner {
            alpha: initial_alpha,
            history: Vec::new(),
        }
    }

    /// The current α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one completed remedy execution.
    pub fn record(&mut self, nn: f64, regression: f64, actual: f64) {
        self.history.push((nn, regression, actual));
    }

    /// Number of recorded executions.
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// Re-fits α over the full history by grid search (step 0.01),
    /// minimising RMSE%. Returns the new α.
    pub fn retune(&mut self) -> f64 {
        if self.history.len() < 2 {
            return self.alpha;
        }
        let mut best = (f64::INFINITY, self.alpha);
        let mut a = 0.0;
        while a <= 1.0 + 1e-9 {
            let preds: Vec<f64> = self
                .history
                .iter()
                .map(|&(nn, reg, _)| a * nn + (1.0 - a) * reg)
                .collect();
            let actuals: Vec<f64> = self.history.iter().map(|&(_, _, y)| y).collect();
            let err = mathkit::rmse_pct(&preds, &actuals);
            if err < best.0 {
                best = (err, a);
            }
            a += 0.01;
        }
        self.alpha = best.1;
        self.alpha
    }

    /// RMSE% that a fixed α would achieve over a slice of the history
    /// (used by the Table 1 experiment to report per-batch error).
    pub fn rmse_pct_for(&self, alpha: f64, from: usize, to: usize) -> f64 {
        let slice = &self.history[from.min(self.history.len())..to.min(self.history.len())];
        let preds: Vec<f64> = slice
            .iter()
            .map(|&(nn, reg, _)| alpha * nn + (1.0 - alpha) * reg)
            .collect();
        let actuals: Vec<f64> = slice.iter().map(|&(_, _, y)| y).collect();
        mathkit::rmse_pct(&preds, &actuals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OperatorKind;
    use crate::logical_op::model::FitConfig;
    use neuro::Dataset;

    /// Linear ground truth so the pivot regression can extrapolate
    /// exactly: y = 1 + 2e-6·rows + 0.01·size.
    fn linear_dataset() -> Dataset {
        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=20 {
            for s in 1..=6 {
                let rows = r as f64 * 1e5;
                let size = s as f64 * 100.0;
                inputs.push(vec![rows, size]);
                targets.push(1.0 + 2e-6 * rows + 0.01 * size);
            }
        }
        Dataset::new(inputs, targets)
    }

    fn fitted_model() -> LogicalOpModel {
        let (m, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["rows", "size"],
            &linear_dataset(),
            &FitConfig::fast(),
        );
        m
    }

    #[test]
    fn remedy_extrapolates_linear_truth_well() {
        let model = fitted_model();
        let cfg = RemedyConfig::default();
        // rows = 10M: trained max is 2M (step 1e5), so way off.
        let x = vec![1e7, 300.0];
        assert!(!model.meta.all_in_range(&x, cfg.beta));
        let out = remedy_estimate(&model, &x, &cfg, 0.0); // pure regression
        let truth = 1.0 + 2e-6 * 1e7 + 0.01 * 300.0;
        let rel = (out.regression_estimate - truth).abs() / truth;
        assert!(
            rel < 0.15,
            "regression {} vs truth {truth}",
            out.regression_estimate
        );
        assert_eq!(out.pivots, vec![0]);
    }

    #[test]
    fn remedy_beats_raw_nn_far_out_of_range() {
        let model = fitted_model();
        let cfg = RemedyConfig::default();
        let x = vec![2e7, 300.0];
        let truth = 1.0 + 2e-6 * 2e7 + 0.01 * 300.0; // 44
        let nn_err = (model.predict_nn(&x) - truth).abs();
        let out = remedy_estimate(&model, &x, &cfg, 0.5);
        let remedy_err = (out.estimate - truth).abs();
        assert!(
            remedy_err < nn_err,
            "remedy err {remedy_err} should beat nn err {nn_err}"
        );
    }

    #[test]
    fn blend_respects_alpha() {
        let model = fitted_model();
        let cfg = RemedyConfig::default();
        let x = vec![1e7, 300.0];
        let o0 = remedy_estimate(&model, &x, &cfg, 0.0);
        let o1 = remedy_estimate(&model, &x, &cfg, 1.0);
        assert!((o0.estimate - o0.regression_estimate).abs() < 1e-9);
        assert!((o1.estimate - o1.nn_estimate).abs() < 1e-9);
        let o_mid = remedy_estimate(&model, &x, &cfg, 0.5);
        let expect = 0.5 * o_mid.nn_estimate + 0.5 * o_mid.regression_estimate;
        assert!((o_mid.estimate - expect).abs() < 1e-9);
    }

    #[test]
    fn two_pivot_dimensions_use_multiple_regression() {
        let model = fitted_model();
        let cfg = RemedyConfig::default();
        // Both rows and size way off.
        let x = vec![1e7, 5_000.0];
        let out = remedy_estimate(&model, &x, &cfg, 0.0);
        assert_eq!(out.pivots, vec![0, 1]);
        let truth = 1.0 + 2e-6 * 1e7 + 0.01 * 5_000.0;
        let rel = (out.regression_estimate - truth).abs() / truth;
        assert!(
            rel < 0.3,
            "estimate {} vs truth {truth}",
            out.regression_estimate
        );
    }

    #[test]
    fn traced_remedy_events_match_the_outcome() {
        use catalog::SystemId;
        use std::sync::Arc;
        use telemetry::{Event, Tracer, VecSubscriber};

        let model = fitted_model();
        let cfg = RemedyConfig::default();
        let x = vec![1e7, 300.0];
        let sub = Arc::new(VecSubscriber::new());
        let tracer = Tracer::new(sub.clone());
        let system = SystemId::new("hive-a");
        let ctx = TraceCtx::new(&tracer, &system);
        let out = remedy_estimate_traced(&model, &x, &cfg, 0.4, &ctx);
        // Exactly equal to the untraced call.
        assert_eq!(out, remedy_estimate(&model, &x, &cfg, 0.4));
        let events = sub.snapshot();
        assert_eq!(events.len(), 2);
        match &events[0] {
            Event::PivotsDetected {
                system,
                operator,
                pivots,
            } => {
                assert_eq!(system, "hive-a");
                assert_eq!(operator, "aggregation");
                assert_eq!(pivots, &out.pivots);
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &events[1] {
            Event::RemedyBlend {
                alpha,
                nn_estimate,
                regression_estimate,
                blended,
                ..
            } => {
                assert_eq!(*alpha, out.alpha);
                assert_eq!(*nn_estimate, out.nn_estimate);
                assert_eq!(*regression_estimate, out.regression_estimate);
                assert_eq!(*blended, out.estimate);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn scratch_variant_is_bit_identical_and_reuses_buffers() {
        let model = fitted_model();
        let cfg = RemedyConfig::default();
        let mut scratch = RemedyScratch::new();
        // Cover both the single-pivot and the multi-pivot branch with one
        // reused workspace, interleaved to prove clearing works.
        let probes = [
            vec![1e7, 300.0],
            vec![1e7, 5_000.0],
            vec![2e7, 250.0],
            vec![1.5e7, 8_000.0],
        ];
        for x in &probes {
            let fresh = remedy_estimate(&model, x, &cfg, 0.3);
            let reused = remedy_estimate_scratch(&model, x, &cfg, 0.3, &mut scratch);
            assert_eq!(fresh, reused);
            assert_eq!(fresh.estimate.to_bits(), reused.estimate.to_bits());
            assert_eq!(
                fresh.regression_estimate.to_bits(),
                reused.regression_estimate.to_bits()
            );
        }
        // The scoring buffer retains its capacity between calls.
        assert!(scratch.scored.capacity() >= model.training_data().len());
    }

    #[test]
    #[should_panic(expected = "all dimensions in range")]
    fn remedy_rejects_in_range_inputs() {
        let model = fitted_model();
        remedy_estimate(&model, &[1e5, 300.0], &RemedyConfig::default(), 0.5);
    }

    #[test]
    fn alpha_tuner_moves_toward_better_source() {
        let mut t = AlphaTuner::default();
        assert_eq!(t.alpha(), 0.5);
        // NN is consistently right, regression consistently 50% high: the
        // best alpha is 1.0 (all weight on the NN).
        for i in 0..20 {
            let actual = 10.0 + i as f64;
            t.record(actual, actual * 1.5, actual);
        }
        let a = t.retune();
        assert!(a > 0.95, "alpha {a}");
    }

    #[test]
    fn alpha_tuner_finds_interior_optimum() {
        let mut t = AlphaTuner::default();
        // NN reads 20% low, regression 20% high: best blend is 0.5.
        for i in 0..20 {
            let actual = 50.0 + i as f64;
            t.record(actual * 0.8, actual * 1.2, actual);
        }
        let a = t.retune();
        assert!((a - 0.5).abs() < 0.05, "alpha {a}");
    }

    #[test]
    fn rmse_pct_for_slices_history() {
        let mut t = AlphaTuner::default();
        for _ in 0..10 {
            t.record(10.0, 10.0, 10.0);
        }
        assert_eq!(t.rmse_pct_for(0.5, 0, 10), 0.0);
        assert_eq!(t.observations(), 10);
    }

    mod properties {
        use super::*;
        use crate::estimator::{CostEstimate, EstimateSource};
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// Training an NN per generated case would dominate the suite;
        /// the properties below only need *one* model, probed many ways.
        fn shared_model() -> &'static LogicalOpModel {
            static MODEL: OnceLock<LogicalOpModel> = OnceLock::new();
            MODEL.get_or_init(fitted_model)
        }

        proptest! {
            /// For any α ∈ [0,1] the blend can never escape the interval
            /// spanned by its two ingredients, and the reported pivots are
            /// exactly the way-off dimensions.
            #[test]
            fn prop_blend_stays_between_sources(
                rows in 5.0e6f64..5.0e7,
                size in 50.0f64..5_000.0,
                alpha in 0.0f64..=1.0,
            ) {
                let model = shared_model();
                let cfg = RemedyConfig::default();
                // `rows` is always way beyond the trained 2e6; `size`
                // straddles the boundary, so both the single- and the
                // multi-pivot regression branches get exercised.
                let x = vec![rows, size];
                prop_assume!(!model.meta.all_in_range(&x, cfg.beta));
                let out = remedy_estimate(model, &x, &cfg, alpha);
                let lo = out.nn_estimate.min(out.regression_estimate);
                let hi = out.nn_estimate.max(out.regression_estimate);
                prop_assert!(
                    out.estimate >= lo - 1e-9 && out.estimate <= hi + 1e-9,
                    "blend {} escaped [{lo}, {hi}] at alpha {alpha}",
                    out.estimate
                );
                prop_assert!(out.estimate >= 0.0);
                prop_assert!(out.alpha == alpha);
                prop_assert_eq!(&out.pivots, &model.meta.pivots(&x, cfg.beta));
                prop_assert!(!out.pivots.is_empty());
            }

            /// Probes within β·stepSize slack of every trained range have
            /// no pivot dimensions — the remedy must never trigger there.
            #[test]
            fn prop_no_pivots_within_slack(
                f_rows in 0.0f64..=1.0,
                f_size in 0.0f64..=1.0,
                beta in 1.1f64..4.0,
            ) {
                let model = shared_model();
                let x: Vec<f64> = model
                    .meta
                    .dims
                    .iter()
                    .zip([f_rows, f_size])
                    .map(|(d, f)| {
                        let slack = beta * d.step_size;
                        (d.min - slack) + f * ((d.max + slack) - (d.min - slack))
                    })
                    .collect();
                prop_assert!(
                    model.meta.pivots(&x, beta).is_empty(),
                    "pivot reported for in-slack probe {x:?} at beta {beta}"
                );
                prop_assert!(model.meta.all_in_range(&x, beta));
            }

            /// However the history looks, retuning keeps α inside [0,1].
            #[test]
            fn prop_retuned_alpha_stays_in_unit_interval(
                triples in prop::collection::vec(
                    (0.1f64..100.0, 0.1f64..100.0, 0.1f64..100.0),
                    2..30,
                ),
            ) {
                let mut t = AlphaTuner::default();
                for &(nn, reg, actual) in &triples {
                    t.record(nn, reg, actual);
                }
                let a = t.retune();
                prop_assert!((0.0..=1.0).contains(&a), "alpha {a}");
                prop_assert!(t.alpha() == a);
            }

            /// The retuned α is optimal over the 0.01 grid: no fixed grid
            /// point may beat it on the history it was fitted to.
            #[test]
            fn prop_retune_beats_any_fixed_grid_alpha(
                triples in prop::collection::vec(
                    (0.1f64..100.0, 0.1f64..100.0, 0.1f64..100.0),
                    2..30,
                ),
                k in 0usize..=100,
            ) {
                let mut t = AlphaTuner::default();
                for &(nn, reg, actual) in &triples {
                    t.record(nn, reg, actual);
                }
                t.retune();
                let n = t.observations();
                let tuned = t.rmse_pct_for(t.alpha(), 0, n);
                let fixed = t.rmse_pct_for(k as f64 * 0.01, 0, n);
                prop_assert!(
                    tuned <= fixed + 1e-6 * (1.0 + fixed),
                    "tuned RMSE% {tuned} lost to fixed alpha {}: {fixed}",
                    k as f64 * 0.01
                );
            }

            /// `CostEstimate::new` clamps: seconds (and hence micros) are
            /// never negative, whatever a regression extrapolates.
            #[test]
            fn prop_cost_estimate_never_negative(secs in any::<f64>()) {
                let e = CostEstimate::new(secs, EstimateSource::NeuralNetwork);
                prop_assert!(e.secs >= 0.0, "secs {} from input {secs}", e.secs);
                prop_assert!(e.micros() >= 0.0);
            }
        }

        #[test]
        fn cost_estimate_clamps_non_finite_inputs() {
            assert_eq!(
                CostEstimate::new(f64::NAN, EstimateSource::NeuralNetwork).secs,
                0.0
            );
            assert_eq!(
                CostEstimate::new(f64::NEG_INFINITY, EstimateSource::NeuralNetwork).secs,
                0.0
            );
            let inf = CostEstimate::new(f64::INFINITY, EstimateSource::NeuralNetwork);
            assert!(inf.secs.is_infinite() && inf.secs > 0.0);
        }
    }
}
