//! The Fig. 3 query-time flow, assembled.
//!
//! ```text
//! Query Q
//!   └─ input parameters within the trained range (β threshold)?
//!        ├─ yes → use the existing NN model
//!        └─ no  → online remedy: combined estimate
//!   └─ operator executed remotely?
//!        └─ yes → logging phase: collect actual cost, dump a record
//!                 into the batch (offline tuning + α adjustment)
//! ```

use crate::{
    estimator::{CostEstimate, EstimateSource},
    logical_op::{
        model::{FitConfig, LogicalOpModel},
        remedy::{
            remedy_estimate, remedy_estimate_scratch, remedy_estimate_scratch_traced,
            remedy_estimate_traced, AlphaTuner, RemedyConfig, RemedyScratch,
        },
        tuning::{offline_tune, ExecutionLog, TuneReport},
    },
    observability::TraceCtx,
};
use serde::{Deserialize, Serialize};
use telemetry::Event;

/// A complete logical-operator costing unit for one operator on one
/// remote system: model + remedy machinery + execution log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogicalOpCosting {
    /// The trained model.
    pub model: LogicalOpModel,
    /// Remedy configuration (β, k).
    pub remedy: RemedyConfig,
    /// The α auto-tuner.
    pub tuner: AlphaTuner,
    /// The offline-tuning execution log.
    pub log: ExecutionLog,
    /// Pending remedy components (nn, regression) for α adjustment, keyed
    /// by the feature vector of the estimate they came from.
    pending_remedies: Vec<(Vec<f64>, f64, f64)>,
}

impl LogicalOpCosting {
    /// Wraps a trained model with default remedy settings.
    pub fn new(model: LogicalOpModel) -> Self {
        LogicalOpCosting {
            model,
            remedy: RemedyConfig::default(),
            tuner: AlphaTuner::default(),
            log: ExecutionLog::new(),
            pending_remedies: Vec::new(),
        }
    }

    /// Estimates the cost of an operator with features `x` — the top half
    /// of the Fig. 3 flowchart.
    pub fn estimate(&mut self, x: &[f64]) -> CostEstimate {
        if self.model.meta.all_in_range(x, self.remedy.beta) {
            CostEstimate::new(self.model.predict_nn(x), EstimateSource::NeuralNetwork)
        } else {
            let out = remedy_estimate(&self.model, x, &self.remedy, self.tuner.alpha());
            self.pending_remedies
                .push((x.to_vec(), out.nn_estimate, out.regression_estimate));
            CostEstimate::new(
                out.estimate,
                EstimateSource::OnlineRemedy {
                    alpha: out.alpha,
                    pivots: out.pivots,
                },
            )
        }
    }

    /// Read-only estimate that does not track remedy components (for
    /// what-if probing).
    pub fn estimate_readonly(&self, x: &[f64]) -> CostEstimate {
        if self.model.meta.all_in_range(x, self.remedy.beta) {
            CostEstimate::new(self.model.predict_nn(x), EstimateSource::NeuralNetwork)
        } else {
            let out = remedy_estimate(&self.model, x, &self.remedy, self.tuner.alpha());
            CostEstimate::new(
                out.estimate,
                EstimateSource::OnlineRemedy {
                    alpha: out.alpha,
                    pivots: out.pivots,
                },
            )
        }
    }

    /// [`LogicalOpCosting::estimate_readonly`] with a caller-provided
    /// remedy workspace: identical result, but an out-of-range estimate
    /// reuses `remedy`'s buffers instead of allocating its own.
    pub fn estimate_readonly_scratch(&self, x: &[f64], remedy: &mut RemedyScratch) -> CostEstimate {
        if self.model.meta.all_in_range(x, self.remedy.beta) {
            CostEstimate::new(self.model.predict_nn(x), EstimateSource::NeuralNetwork)
        } else {
            let out =
                remedy_estimate_scratch(&self.model, x, &self.remedy, self.tuner.alpha(), remedy);
            CostEstimate::new(
                out.estimate,
                EstimateSource::OnlineRemedy {
                    alpha: out.alpha,
                    pivots: out.pivots,
                },
            )
        }
    }

    /// [`LogicalOpCosting::estimate`] with the decision trail: remedy-path
    /// estimates emit [`Event::PivotsDetected`] and [`Event::RemedyBlend`]
    /// through `ctx`. Returns exactly what the untraced call returns.
    pub fn estimate_traced(&mut self, x: &[f64], ctx: &TraceCtx<'_>) -> CostEstimate {
        if self.model.meta.all_in_range(x, self.remedy.beta) {
            CostEstimate::new(self.model.predict_nn(x), EstimateSource::NeuralNetwork)
        } else {
            let out = remedy_estimate_traced(&self.model, x, &self.remedy, self.tuner.alpha(), ctx);
            self.pending_remedies
                .push((x.to_vec(), out.nn_estimate, out.regression_estimate));
            CostEstimate::new(
                out.estimate,
                EstimateSource::OnlineRemedy {
                    alpha: out.alpha,
                    pivots: out.pivots,
                },
            )
        }
    }

    /// [`LogicalOpCosting::estimate_readonly`] with the decision trail
    /// (see [`LogicalOpCosting::estimate_traced`]).
    pub fn estimate_readonly_traced(&self, x: &[f64], ctx: &TraceCtx<'_>) -> CostEstimate {
        if self.model.meta.all_in_range(x, self.remedy.beta) {
            CostEstimate::new(self.model.predict_nn(x), EstimateSource::NeuralNetwork)
        } else {
            let out = remedy_estimate_traced(&self.model, x, &self.remedy, self.tuner.alpha(), ctx);
            CostEstimate::new(
                out.estimate,
                EstimateSource::OnlineRemedy {
                    alpha: out.alpha,
                    pivots: out.pivots,
                },
            )
        }
    }

    /// [`LogicalOpCosting::estimate_readonly_scratch`] with the decision
    /// trail (see [`LogicalOpCosting::estimate_traced`]).
    pub fn estimate_readonly_scratch_traced(
        &self,
        x: &[f64],
        ctx: &TraceCtx<'_>,
        remedy: &mut RemedyScratch,
    ) -> CostEstimate {
        if self.model.meta.all_in_range(x, self.remedy.beta) {
            CostEstimate::new(self.model.predict_nn(x), EstimateSource::NeuralNetwork)
        } else {
            let out = remedy_estimate_scratch_traced(
                &self.model,
                x,
                &self.remedy,
                self.tuner.alpha(),
                ctx,
                remedy,
            );
            CostEstimate::new(
                out.estimate,
                EstimateSource::OnlineRemedy {
                    alpha: out.alpha,
                    pivots: out.pivots,
                },
            )
        }
    }

    /// The bottom half of Fig. 3: the operator actually ran remotely —
    /// log the actual cost, and if it had gone through the remedy path,
    /// feed the α tuner.
    pub fn observe_actual(&mut self, x: &[f64], actual_secs: f64) {
        self.log.push(x.to_vec(), actual_secs);
        if let Some(pos) = self.pending_remedies.iter().position(|(fx, _, _)| fx == x) {
            let (_, nn, reg) = self.pending_remedies.remove(pos);
            self.tuner.record(nn, reg, actual_secs);
        }
    }

    /// Observes an actual execution whose estimate was served through a
    /// read-only path (e.g. a shared estimation service) and therefore left
    /// no pending remedy record. If the features were out of the trained
    /// range the remedy components are recomputed here so the α tuner is
    /// still fed; either way the observation lands in the offline-tuning
    /// log.
    pub fn observe_detached(&mut self, x: &[f64], actual_secs: f64) {
        if !self.model.meta.all_in_range(x, self.remedy.beta) {
            let out = remedy_estimate(&self.model, x, &self.remedy, self.tuner.alpha());
            self.tuner
                .record(out.nn_estimate, out.regression_estimate, actual_secs);
        }
        self.log.push(x.to_vec(), actual_secs);
    }

    /// [`LogicalOpCosting::observe_detached`] with the decision trail:
    /// emits [`Event::ActualObserved`] carrying the model's *current*
    /// prediction next to the reported actual — the raw material of drift
    /// monitoring. The prediction is only computed when tracing is
    /// enabled.
    pub fn observe_detached_traced(&mut self, x: &[f64], actual_secs: f64, ctx: &TraceCtx<'_>) {
        if ctx.tracer.is_enabled() {
            let predicted = self.estimate_readonly(x).secs;
            ctx.tracer.emit(|| Event::ActualObserved {
                system: ctx.system.to_string(),
                operator: self.model.op.to_string(),
                predicted,
                actual: actual_secs,
            });
        }
        self.observe_detached(x, actual_secs);
    }

    /// Re-fits α from everything recorded so far (the paper adjusts after
    /// each batch — Table 1).
    pub fn adjust_alpha(&mut self) -> f64 {
        self.tuner.retune()
    }

    /// [`LogicalOpCosting::adjust_alpha`] with the decision trail: emits
    /// [`Event::AlphaAdjusted`] with the weight before and after retuning.
    pub fn adjust_alpha_traced(&mut self, ctx: &TraceCtx<'_>) -> f64 {
        let old_alpha = self.tuner.alpha();
        let new_alpha = self.adjust_alpha();
        ctx.tracer.emit(|| Event::AlphaAdjusted {
            system: ctx.system.to_string(),
            operator: self.model.op.to_string(),
            old_alpha,
            new_alpha,
        });
        new_alpha
    }

    /// Runs the offline tuning phase over the accumulated log.
    pub fn offline_tune(&mut self, config: &FitConfig) -> TuneReport {
        offline_tune(&mut self.model, &mut self.log, self.remedy.beta, config)
    }

    /// [`LogicalOpCosting::offline_tune`] with the decision trail: emits
    /// [`Event::TuningPass`] summarising what the pass consumed and
    /// achieved.
    pub fn offline_tune_traced(&mut self, config: &FitConfig, ctx: &TraceCtx<'_>) -> TuneReport {
        let report = self.offline_tune(config);
        ctx.tracer.emit(|| Event::TuningPass {
            system: ctx.system.to_string(),
            operator: self.model.op.to_string(),
            entries_used: report.entries_used,
            dims_expanded: report.dims_expanded.len(),
            rmse_pct_after: report.rmse_pct_after,
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OperatorKind;
    use neuro::Dataset;

    fn costing() -> LogicalOpCosting {
        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=15 {
            for s in 1..=4 {
                let rows = r as f64 * 1e5;
                let size = s as f64 * 100.0;
                inputs.push(vec![rows, size]);
                targets.push(1.0 + 2e-6 * rows + 0.01 * size);
            }
        }
        let (model, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["rows", "size"],
            &Dataset::new(inputs, targets),
            &FitConfig::fast(),
        );
        LogicalOpCosting::new(model)
    }

    #[test]
    fn in_range_inputs_use_the_network() {
        let mut c = costing();
        let e = c.estimate(&[5e5, 200.0]);
        assert_eq!(e.source, EstimateSource::NeuralNetwork);
    }

    #[test]
    fn out_of_range_inputs_trigger_the_remedy() {
        let mut c = costing();
        let e = c.estimate(&[2e7, 200.0]);
        match e.source {
            EstimateSource::OnlineRemedy { alpha, ref pivots } => {
                assert_eq!(alpha, 0.5);
                assert_eq!(pivots, &vec![0]);
            }
            ref other => panic!("expected remedy, got {other:?}"),
        }
    }

    #[test]
    fn observing_actuals_feeds_alpha_tuning() {
        let mut c = costing();
        for i in 0..10 {
            let x = vec![2e7 + i as f64 * 1e5, 200.0];
            let _ = c.estimate(&x);
            let truth = 1.0 + 2e-6 * x[0] + 0.01 * x[1];
            c.observe_actual(&x, truth);
        }
        assert_eq!(c.tuner.observations(), 10);
        let a = c.adjust_alpha();
        // The regression extrapolates this linear truth better than the
        // NN, so alpha should move off 0.5 (usually towards 0).
        assert!((0.0..=1.0).contains(&a));
        assert_eq!(c.log.len(), 10);
    }

    #[test]
    fn full_loop_estimate_observe_tune_improves() {
        let mut c = costing();
        let probe = vec![2.5e6, 200.0];
        let truth = 1.0 + 2e-6 * probe[0] + 0.01 * probe[1];
        let before = (c.estimate_readonly(&probe).secs - truth).abs();
        // Observe a contiguous ladder past the trained max (1.5M).
        let mut rows = 1.6e6;
        while rows <= 2.6e6 {
            c.observe_actual(&[rows, 200.0], 1.0 + 2e-6 * rows + 2.0);
            rows += 1e5;
        }
        // Note deliberately shifted actuals (+2s): tuning must follow the
        // observed system, not our original formula.
        let report = c.offline_tune(&FitConfig::fast());
        assert!(report.entries_used > 0);
        let after_estimate = c.estimate_readonly(&probe).secs;
        let shifted_truth = 1.0 + 2e-6 * probe[0] + 2.0;
        let after = (after_estimate - shifted_truth).abs();
        assert!(
            after < before + 2.0,
            "tuning should track the shifted system: err {after}"
        );
        // The expanded range means the probe no longer pivots.
        assert!(c.model.meta.all_in_range(&probe, c.remedy.beta));
    }

    #[test]
    fn detached_observation_feeds_tuner_and_log() {
        let mut c = costing();
        // Out of range: the tuner must be fed even though no estimate()
        // call recorded pending remedy components.
        c.observe_detached(&[2e7, 200.0], 60.0);
        assert_eq!(c.tuner.observations(), 1);
        assert_eq!(c.log.len(), 1);
        // In range: log only.
        c.observe_detached(&[5e5, 200.0], 2.0);
        assert_eq!(c.tuner.observations(), 1);
        assert_eq!(c.log.len(), 2);
    }

    #[test]
    fn readonly_estimate_does_not_accumulate_state() {
        let c = costing();
        let before_len = c.pending_remedies.len();
        let _ = c.estimate_readonly(&[2e7, 200.0]);
        assert_eq!(c.pending_remedies.len(), before_len);
    }

    #[test]
    fn traced_estimate_trail_agrees_with_the_returned_source() {
        use catalog::SystemId;
        use std::sync::Arc;
        use telemetry::{Event, Tracer, VecSubscriber};

        let mut c = costing();
        let sub = Arc::new(VecSubscriber::new());
        let tracer = Tracer::new(sub.clone());
        let system = SystemId::new("hive-a");
        let ctx = TraceCtx::new(&tracer, &system);
        // In-range estimates leave no remedy trail.
        let e = c.estimate_traced(&[5e5, 200.0], &ctx);
        assert_eq!(e.source, EstimateSource::NeuralNetwork);
        assert!(sub.is_empty());
        // Out-of-range: the emitted pivots and α must agree with the
        // source the estimate itself reports.
        let e = c.estimate_traced(&[2e7, 200.0], &ctx);
        let (src_alpha, src_pivots) = match &e.source {
            EstimateSource::OnlineRemedy { alpha, pivots } => (*alpha, pivots.clone()),
            other => panic!("expected remedy, got {other:?}"),
        };
        let events = sub.take();
        assert_eq!(events.len(), 2);
        match &events[0] {
            Event::PivotsDetected { pivots, .. } => assert_eq!(pivots, &src_pivots),
            other => panic!("unexpected {other:?}"),
        }
        match &events[1] {
            Event::RemedyBlend {
                alpha,
                nn_estimate,
                regression_estimate,
                blended,
                ..
            } => {
                assert_eq!(*alpha, src_alpha);
                let expect =
                    (src_alpha * nn_estimate + (1.0 - src_alpha) * regression_estimate).max(0.0);
                assert!((blended - expect).abs() < 1e-12);
                assert_eq!(*blended, e.secs);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Observation, α adjustment, and tuning each add to the trail.
        c.observe_detached_traced(&[2e7, 200.0], 60.0, &ctx);
        let _ = c.adjust_alpha_traced(&ctx);
        let _ = c.offline_tune_traced(&FitConfig::fast(), &ctx);
        let kinds: Vec<&str> = sub.snapshot().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            // observe_detached on an out-of-range point recomputes the
            // remedy, which traces nothing here (untraced internal call);
            // only the three explicit stations emit.
            vec!["actual_observed", "alpha_adjusted", "tuning_pass"]
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = costing();
        let _ = c.estimate(&[2e7, 200.0]);
        c.observe_actual(&[2e7, 200.0], 42.0);
        let json = serde_json::to_string(&c).unwrap();
        let back: LogicalOpCosting = serde_json::from_str(&json).unwrap();
        assert_eq!(back.log.len(), c.log.len());
        assert_eq!(back.tuner.alpha(), c.tuner.alpha());
    }
}
