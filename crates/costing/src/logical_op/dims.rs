//! Per-dimension training metadata.
//!
//! §3: "the system maintains metadata information for each input dimension
//! in the training set of a given operator. This metadata includes the
//! covered range using min and max boundaries and a stepSize. … if the
//! value of a given dimension is outside the [min, max] range by more than
//! β · stepSize, where β > 1 is a configuration parameter, then that
//! dimension is considered way off the trained range."
//!
//! The offline tuning phase expands a range "only if a continuity in the
//! training points is maintained"; discontiguous observations are kept as
//! *detached* points so they still inform the models without pretending
//! the gap is covered.

use serde::{Deserialize, Serialize};

/// Metadata for one training dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionMeta {
    /// Dimension name (for reports and serialization).
    pub name: String,
    /// Smallest trained value.
    pub min: f64,
    /// Largest trained value.
    pub max: f64,
    /// The step size near the range boundary. The Fig. 10 grids are
    /// log-spaced, so the gap between the two largest distinct trained
    /// values is used — the step that matters when judging values beyond
    /// `max`.
    pub step_size: f64,
    /// Observed out-of-range values that could not be merged into the
    /// contiguous range (continuity broken).
    pub detached: Vec<f64>,
}

impl DimensionMeta {
    /// Builds metadata from the trained values of one dimension.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn from_values(name: &str, values: &[f64]) -> Self {
        assert!(!values.is_empty(), "DimensionMeta: no training values");
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let min = sorted[0];
        let max = *sorted.last().expect("non-empty");
        let step_size = if sorted.len() >= 2 {
            (sorted[sorted.len() - 1] - sorted[sorted.len() - 2]).max(f64::EPSILON)
        } else {
            // A single trained value: any deviation is out of range; use
            // a nominal step of 10% of the value.
            (min.abs() * 0.1).max(1.0)
        };
        DimensionMeta {
            name: name.to_string(),
            min,
            max,
            step_size,
            detached: Vec::new(),
        }
    }

    /// True when `v` lies inside (or within `beta·step` of) the trained
    /// range — i.e. the NN can be trusted directly.
    pub fn in_range(&self, v: f64, beta: f64) -> bool {
        let slack = beta * self.step_size;
        v >= self.min - slack && v <= self.max + slack
    }

    /// The paper's "way off" test: outside `[min, max]` by more than
    /// `β · stepSize`.
    pub fn is_way_off(&self, v: f64, beta: f64) -> bool {
        !self.in_range(v, beta)
    }

    /// Attempts to absorb new observed values above `max` / below `min`.
    ///
    /// Values are merged into the contiguous range as long as each
    /// consecutive gap is at most `β · stepSize` (continuity); the first
    /// value that breaks continuity — and everything beyond it — lands in
    /// [`DimensionMeta::detached`]. Returns `true` when the `[min,max]`
    /// range changed.
    pub fn absorb(&mut self, observed: &[f64], beta: f64) -> bool {
        let slack = beta * self.step_size;
        let mut changed = false;

        let mut above: Vec<f64> = observed.iter().copied().filter(|&v| v > self.max).collect();
        above.sort_by(f64::total_cmp);
        above.dedup();
        let mut broken = false;
        for v in above {
            if !broken && v - self.max <= slack {
                self.max = v;
                changed = true;
            } else {
                broken = true;
                if !self.detached.contains(&v) {
                    self.detached.push(v);
                }
            }
        }

        let mut below: Vec<f64> = observed.iter().copied().filter(|&v| v < self.min).collect();
        below.sort_by(|a, b| f64::total_cmp(b, a)); // descending towards min
        below.dedup();
        let mut broken = false;
        for v in below {
            if !broken && self.min - v <= slack {
                self.min = v;
                changed = true;
            } else {
                broken = true;
                if !self.detached.contains(&v) {
                    self.detached.push(v);
                }
            }
        }
        self.detached.sort_by(f64::total_cmp);
        changed
    }
}

/// Metadata for a whole training set (one entry per input dimension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingMeta {
    /// Per-dimension metadata, in feature order.
    pub dims: Vec<DimensionMeta>,
}

impl TrainingMeta {
    /// Builds metadata from a set of training rows.
    ///
    /// # Panics
    /// Panics when `rows` is empty or `names` does not match the arity.
    pub fn from_rows(names: &[&str], rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "TrainingMeta: no rows");
        assert_eq!(
            names.len(),
            rows[0].len(),
            "TrainingMeta: name/arity mismatch"
        );
        let dims = names
            .iter()
            .enumerate()
            .map(|(j, name)| {
                let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
                DimensionMeta::from_values(name, &col)
            })
            .collect();
        TrainingMeta { dims }
    }

    /// Indices of the dimensions of `x` that are way off the trained
    /// range — the *pivot* dimensions of the online remedy.
    pub fn pivots(&self, x: &[f64], beta: f64) -> Vec<usize> {
        assert_eq!(
            x.len(),
            self.dims.len(),
            "TrainingMeta::pivots: arity mismatch"
        );
        self.dims
            .iter()
            .zip(x)
            .enumerate()
            .filter(|&(_, (d, &xj))| d.is_way_off(xj, beta))
            .map(|(j, _)| j)
            .collect()
    }

    /// True when every dimension of `x` is within (slack of) the trained
    /// range — the top diamond of the Fig. 3 flowchart.
    ///
    /// Runs once per estimate on the zero-alloc path, so it short-
    /// circuits over the dimensions directly instead of materialising
    /// the [`TrainingMeta::pivots`] vector just to test emptiness.
    pub fn all_in_range(&self, x: &[f64], beta: f64) -> bool {
        assert_eq!(
            x.len(),
            self.dims.len(),
            "TrainingMeta::all_in_range: arity mismatch"
        );
        !self
            .dims
            .iter()
            .zip(x)
            .any(|(d, &xj)| d.is_way_off(xj, beta))
    }

    /// Absorbs out-of-range observations into each dimension (offline
    /// tuning). Returns the indices of dimensions whose range changed.
    pub fn absorb_rows(&mut self, rows: &[Vec<f64>], beta: f64) -> Vec<usize> {
        let mut changed = Vec::new();
        for (j, dim) in self.dims.iter_mut().enumerate() {
            let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            if dim.absorb(&col, beta) {
                changed.push(j);
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_grid() -> Vec<f64> {
        // A Fig. 10-like log-spaced grid: 10k..8M.
        vec![
            10e3, 20e3, 40e3, 60e3, 80e3, 100e3, 200e3, 400e3, 600e3, 800e3, 1e6, 2e6, 4e6, 6e6,
            8e6,
        ]
    }

    #[test]
    fn from_values_extracts_range_and_boundary_step() {
        let d = DimensionMeta::from_values("num_rows", &rows_grid());
        assert_eq!(d.min, 10e3);
        assert_eq!(d.max, 8e6);
        // Gap between the two largest values: 8M - 6M.
        assert_eq!(d.step_size, 2e6);
    }

    #[test]
    fn way_off_matches_paper_rule() {
        let d = DimensionMeta::from_values("num_rows", &rows_grid());
        let beta = 2.0;
        // 20M is 12M beyond max, > 2·2M -> way off (the Fig. 14 scenario).
        assert!(d.is_way_off(20e6, beta));
        // 9M is 1M beyond max, <= 4M slack -> close enough for the NN.
        assert!(!d.is_way_off(9e6, beta));
        assert!(!d.is_way_off(5e6, beta));
        // Below min by a lot.
        assert!(d.is_way_off(-10e6, beta));
    }

    #[test]
    fn absorb_extends_while_contiguous() {
        let mut d = DimensionMeta::from_values("x", &[100.0, 200.0, 300.0]);
        // step = 100; beta 2 -> slack 200.
        let changed = d.absorb(&[450.0, 600.0], 2.0);
        assert!(changed);
        assert_eq!(d.max, 600.0);
        assert!(d.detached.is_empty());
    }

    #[test]
    fn absorb_detaches_after_a_gap() {
        // The paper's example: trained to 1,000 with step 100; observing
        // 8,000 and 10,000 must NOT extend the range (continuity broken).
        let values: Vec<f64> = (1..=10).map(|i| i as f64 * 100.0).collect();
        let mut d = DimensionMeta::from_values("row_size", &values);
        let changed = d.absorb(&[8_000.0, 10_000.0], 2.0);
        assert!(!changed);
        assert_eq!(d.max, 1_000.0);
        assert_eq!(d.detached, vec![8_000.0, 10_000.0]);
    }

    #[test]
    fn absorb_extends_below_min_too() {
        let mut d = DimensionMeta::from_values("x", &[100.0, 200.0, 300.0]);
        // Boundary step comes from the top gap (100).
        assert!(d.absorb(&[-50.0], 2.0));
        assert_eq!(d.min, -50.0);
    }

    #[test]
    fn single_value_dimension_gets_nominal_step() {
        let d = DimensionMeta::from_values("x", &[500.0]);
        assert!(d.step_size > 0.0);
        assert!(d.is_way_off(5_000.0, 2.0));
    }

    #[test]
    fn training_meta_pivots() {
        let rows = vec![vec![100.0, 1e4], vec![500.0, 1e5], vec![1_000.0, 1e6]];
        let meta = TrainingMeta::from_rows(&["size", "rows"], &rows);
        // size within range, rows way off -> pivot index 1.
        assert_eq!(meta.pivots(&[500.0, 2e7], 2.0), vec![1]);
        assert!(meta.all_in_range(&[500.0, 5e5], 2.0));
        // Both off.
        assert_eq!(meta.pivots(&[1e6, 2e7], 2.0), vec![0, 1]);
    }

    #[test]
    fn absorb_rows_reports_changed_dims() {
        let rows = vec![vec![100.0, 10.0], vec![200.0, 20.0], vec![300.0, 30.0]];
        let mut meta = TrainingMeta::from_rows(&["a", "b"], &rows);
        let changed = meta.absorb_rows(&[vec![450.0, 25.0]], 2.0);
        assert_eq!(changed, vec![0]); // b's 25 is within range already
        assert_eq!(meta.dims[0].max, 450.0);
    }

    #[test]
    fn serde_roundtrip() {
        let meta = TrainingMeta::from_rows(&["a"], &[vec![1.0], vec![2.0]]);
        let json = serde_json::to_string(&meta).unwrap();
        let back: TrainingMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(meta, back);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every trained value is in range; min/max bracket the data.
            #[test]
            fn prop_trained_values_in_range(
                values in proptest::collection::vec(0.0f64..1e8, 2..50),
                beta in 1.0f64..5.0,
            ) {
                let d = DimensionMeta::from_values("x", &values);
                for &v in &values {
                    prop_assert!(d.in_range(v, beta), "{v} outside [{}, {}]", d.min, d.max);
                }
                prop_assert!(d.min <= d.max);
                prop_assert!(d.step_size > 0.0);
            }

            /// Absorbing a second time changes nothing (idempotence).
            #[test]
            fn prop_absorb_is_idempotent(
                values in proptest::collection::vec(0.0f64..1e6, 3..20),
                extra in proptest::collection::vec(0.0f64..2e6, 1..10),
            ) {
                let mut d = DimensionMeta::from_values("x", &values);
                d.absorb(&extra, 2.0);
                let snapshot = d.clone();
                let changed = d.absorb(&extra, 2.0);
                prop_assert!(!changed, "second absorb must be a no-op");
                prop_assert_eq!(d, snapshot);
            }

            /// Pivot detection and in-range agreement: a dimension is a
            /// pivot iff it is not in range.
            #[test]
            fn prop_pivots_complement_in_range(
                values in proptest::collection::vec(0.0f64..1e6, 3..20),
                probe in 0.0f64..2e6,
                beta in 1.1f64..4.0,
            ) {
                let meta = TrainingMeta::from_rows(&["x"], &values.iter().map(|&v| vec![v]).collect::<Vec<_>>());
                let pivots = meta.pivots(&[probe], beta);
                prop_assert_eq!(pivots.is_empty(), meta.dims[0].in_range(probe, beta));
            }

            /// After absorbing a value, it is never way-off any more (it
            /// either extended the range or sits in `detached`, and
            /// detached values still count as observed).
            #[test]
            fn prop_absorbed_values_are_accounted_for(
                values in proptest::collection::vec(100.0f64..1e5, 3..20),
                extra in 0.0f64..1e7,
            ) {
                let mut d = DimensionMeta::from_values("x", &values);
                d.absorb(&[extra], 2.0);
                let in_range = d.in_range(extra, 2.0);
                let detached = d.detached.contains(&extra);
                prop_assert!(in_range || detached, "absorbed value lost: {extra}");
            }
        }
    }
}
