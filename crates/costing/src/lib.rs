#![warn(missing_docs)]

//! The IntelliSphere remote-system cost estimation module.
//!
//! This crate is the paper's primary contribution (§§3–5): estimating the
//! elapsed execution time of a SQL operator were it to run on a remote
//! system, via three approaches:
//!
//! * [`logical_op`] — **logical-operator costing** for black-box remotes:
//!   a grid of training queries per operator labels a small neural
//!   network (join: 7 dims, aggregation: 4 dims), fortified by an *online
//!   remedy* phase (on-the-fly pivot regression blended as
//!   `α·c_nn + (1−α)·c_reg`) and an *offline tuning* phase (execution log
//!   → retrain + continuity-aware metadata expansion).
//! * [`sub_op`] — **sub-operator costing** for open-box remotes: per-record
//!   linear models for the Fig. 5 primitives learned from a handful of
//!   probe queries, composed through expert cost formulas per physical
//!   algorithm (Fig. 6), gated by applicability rules, resolved by a
//!   choice policy (worst / average / in-house-comparable).
//! * [`hybrid`] — **hybrid costing**: a per-remote-system Costing Profile
//!   selects the approach (per system, per operator, or switched over
//!   time, Fig. 9).
//!
//! Every estimation path is observable: traced method variants accept a
//! [`TraceCtx`] and emit typed decision-trail events ([`observability`]),
//! the [`service`] keeps registry-backed metrics, and the execution logs
//! feed a drift monitor keyed by [`ModelKey`].
//!
//! The crate interacts with remote systems *only* through the
//! [`remote_sim::RemoteSystem`] trait — submit a query or probe, observe
//! an elapsed time — which is exactly the paper's black-box contract. All
//! expert (open-box) knowledge enters as data: formulas, rules, and
//! thresholds stored in the Costing Profile.

pub mod epoch;
pub mod estimator;
pub mod features;
pub mod hybrid;
pub mod logical_op;
pub mod observability;
pub mod service;
pub mod sub_op;

pub use epoch::{Epoch, EpochStore, ModelSnapshot, SnapshotLineage, TuningPipeline};
pub use estimator::{CostEstimate, EstimateSource, OperatorKind};
pub use features::{agg_features, join_features, QueryFeatures, AGG_DIMS, JOIN_DIMS};
pub use hybrid::{CostingApproach, CostingProfile, HybridCostManager};
pub use logical_op::{
    flow::LogicalOpCosting, model::FitConfig, model::LogicalOpModel, packed::PackedOpModel,
    packed::PackedOpScratch, remedy::RemedyConfig, remedy::RemedyScratch,
};
pub use observability::{
    publish_drift, DriftRetuner, ModelKey, ModelKeyQuery, ModelKeyRef, RetuneOutcome, TraceCtx,
};
pub use service::{CacheStats, EstimateScratch, EstimatorService, ServiceConfig, ServiceError};
pub use sub_op::{choice::ChoicePolicy, SubOpCosting};
