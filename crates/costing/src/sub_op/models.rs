//! Fitted sub-op cost models.
//!
//! §4: "a simple linear regression costing model can be built … a big
//! advantage of the sub-op costing approach is that most sub-ops have
//! simple and tight linear regression models that can be easily learned
//! from small training dataset. Moreover, these models are easy to
//! extrapolate for un-seen values." HashBuild gets the Fig. 13f
//! two-regime treatment.

use crate::sub_op::measurement::SubOpMeasurement;
use crate::sub_op::subop::SubOp;
use mathkit::SimpleLinearModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum SubOpModelError {
    /// A basic sub-op has no measurements — the paper deems the approach
    /// inapplicable without them.
    MissingBasicSubOp(SubOp),
    /// Regression failed (degenerate measurements).
    FitFailed(SubOp),
}

impl std::fmt::Display for SubOpModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubOpModelError::MissingBasicSubOp(s) => {
                write!(f, "no measurements for mandatory sub-op {s}")
            }
            SubOpModelError::FitFailed(s) => write!(f, "regression failed for sub-op {s}"),
        }
    }
}

impl std::error::Error for SubOpModelError {}

/// IntelliSphere's rough defaults for *Specific* sub-ops when a remote
/// system's probes don't cover them (§4: "IntelliSphere can provide rough
/// default values for them").
fn default_model(subop: SubOp) -> SimpleLinearModel {
    let (slope, intercept) = match subop {
        SubOp::Sort => (0.005, 1.5),
        SubOp::Scan => (0.001, 0.2),
        SubOp::HashBuild => (0.03, 20.0),
        SubOp::HashProbe => (0.012, 2.5),
        SubOp::RecMerge => (0.04, 40.0),
        // Basic sub-ops have no defaults — they are mandatory.
        // analysis:allow(panic-freedom): private fn, callers guard on SubOp::is_specific before reaching here
        _ => unreachable!("default_model called for basic sub-op"),
    };
    SimpleLinearModel {
        slope,
        intercept,
        r2: 0.0,
    }
}

/// The complete fitted model set for one remote system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubOpModels {
    /// Per-sub-op linear models: work µs/record as a function of record
    /// size. `HashBuild` here is the **in-memory** regime.
    pub linear: BTreeMap<SubOp, SimpleLinearModel>,
    /// The spill-regime HashBuild model (Fig. 13f's second line).
    pub hash_spilled: SimpleLinearModel,
    /// Learned fixed per-stage overhead, µs (from probe intercepts).
    pub job_overhead_us: f64,
    /// Cluster parallelism (from the system profile).
    pub cores: f64,
    /// Node count.
    pub nodes: f64,
    /// Per-task hash memory budget, bytes (expert input; decides the
    /// HashBuild regime).
    pub task_hash_budget_bytes: f64,
}

impl SubOpModels {
    /// Fits all models from a measurement campaign.
    pub fn fit(m: &SubOpMeasurement, task_hash_budget_bytes: f64) -> Result<Self, SubOpModelError> {
        let mut linear = BTreeMap::new();
        for subop in SubOp::ALL {
            let pts = m.per_size_points(subop, false);
            if pts.len() < 2 {
                match subop.category() {
                    crate::sub_op::subop::SubOpCategory::Basic => {
                        return Err(SubOpModelError::MissingBasicSubOp(subop))
                    }
                    crate::sub_op::subop::SubOpCategory::Specific => {
                        linear.insert(subop, default_model(subop));
                        continue;
                    }
                }
            }
            let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
            let model =
                SimpleLinearModel::fit(&xs, &ys).map_err(|_| SubOpModelError::FitFailed(subop))?;
            linear.insert(subop, model);
        }
        let spill_pts = m.per_size_points(SubOp::HashBuild, true);
        let hash_spilled = if spill_pts.len() >= 2 {
            let (xs, ys): (Vec<f64>, Vec<f64>) = spill_pts.into_iter().unzip();
            SimpleLinearModel::fit(&xs, &ys)
                .map_err(|_| SubOpModelError::FitFailed(SubOp::HashBuild))?
        } else {
            // Fall back to 3× the in-memory model.
            let mem = &linear[&SubOp::HashBuild];
            SimpleLinearModel {
                slope: mem.slope * 3.0,
                intercept: mem.intercept * 3.0,
                r2: 0.0,
            }
        };
        Ok(SubOpModels {
            linear,
            hash_spilled,
            job_overhead_us: m.job_overhead_us(),
            cores: m.cores,
            nodes: m.nodes,
            task_hash_budget_bytes,
        })
    }

    /// Per-record work (µs) of a sub-op at a record size. `HashBuild`
    /// resolves to the in-memory regime; use
    /// [`SubOpModels::hash_build_us`] for regime-aware costing.
    pub fn per_record_us(&self, subop: SubOp, record_bytes: f64) -> f64 {
        self.linear[&subop].predict(record_bytes).max(0.0)
    }

    /// Regime-aware HashBuild cost per record: the spill model is used
    /// when the table exceeds the per-task budget ("if the broadcasted
    /// relation fits in memory … then the corresponding model is used.
    /// Otherwise … the other model").
    pub fn hash_build_us(&self, record_bytes: f64, table_bytes: f64) -> f64 {
        let mem = self.per_record_us(SubOp::HashBuild, record_bytes);
        if table_bytes <= self.task_hash_budget_bytes {
            mem
        } else {
            self.hash_spilled.predict(record_bytes).max(mem)
        }
    }

    /// The fitted line for one sub-op (for reports/figures).
    pub fn line(&self, subop: SubOp) -> &SimpleLinearModel {
        &self.linear[&subop]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sub_op::measurement::SubOpMeasurement;
    use remote_sim::ClusterEngine;
    use workload::probe_suite;

    fn fitted() -> SubOpModels {
        let mut e = ClusterEngine::paper_hive("hive", 3).without_noise();
        let m = SubOpMeasurement::run(&mut e, &probe_suite());
        // The paper cluster's per-task budget.
        SubOpModels::fit(&m, 8.0 * 1024.0 * 1024.0 * 1024.0 * 0.10 / 2.0).unwrap()
    }

    #[test]
    fn recovered_lines_match_hidden_truth() {
        let models = fitted();
        // ReadDFS truth: 0.0041·s + 0.6323.
        let rd = models.line(SubOp::ReadDfs);
        assert!((rd.slope - 0.0041).abs() < 0.0005, "slope {}", rd.slope);
        assert!(
            (rd.intercept - 0.6323).abs() < 0.3,
            "intercept {}",
            rd.intercept
        );
        // WriteDFS truth: 0.0314·s + 0.7403 (Fig. 13c).
        let wd = models.line(SubOp::WriteDfs);
        assert!((wd.slope - 0.0314).abs() < 0.002, "slope {}", wd.slope);
        // Shuffle truth: 0.0126·s + 5.2551 (Fig. 13d).
        let sh = models.line(SubOp::Shuffle);
        assert!((sh.slope - 0.0126).abs() < 0.002, "slope {}", sh.slope);
        assert!(
            (sh.intercept - 5.2551).abs() < 1.0,
            "intercept {}",
            sh.intercept
        );
        // RecMerge truth: 0.0344·s + 36.701 (Fig. 13e).
        let rm = models.line(SubOp::RecMerge);
        assert!((rm.slope - 0.0344).abs() < 0.003);
        assert!((rm.intercept - 36.701).abs() < 3.0);
    }

    #[test]
    fn fits_are_tight() {
        // The paper reports R² ≥ 0.95 for the sub-op lines.
        let models = fitted();
        for subop in [
            SubOp::ReadDfs,
            SubOp::WriteDfs,
            SubOp::Shuffle,
            SubOp::RecMerge,
        ] {
            assert!(
                models.line(subop).r2 > 0.95,
                "{subop}: r2 {}",
                models.line(subop).r2
            );
        }
    }

    #[test]
    fn hash_regimes_switch_on_budget() {
        let models = fitted();
        let small_table = models.hash_build_us(1000.0, 1.0e6);
        let big_table = models.hash_build_us(1000.0, 1.0e12);
        assert!(
            big_table > 2.0 * small_table,
            "mem {small_table} spill {big_table}"
        );
    }

    #[test]
    fn extrapolation_beyond_probed_sizes_is_linear() {
        let models = fitted();
        let at_2000 = models.per_record_us(SubOp::WriteDfs, 2000.0);
        let truth = 0.0314 * 2000.0 + 0.7403;
        assert!(
            (at_2000 - truth).abs() / truth < 0.1,
            "extrapolated {at_2000} vs {truth}"
        );
    }

    #[test]
    fn missing_basic_subop_is_fatal_missing_specific_defaults() {
        let mut e = ClusterEngine::paper_hive("hive", 3).without_noise();
        // Suite with only ReadDfs probes: all other basics missing.
        let suite = workload::probe_suite_for(remote_sim::probe::ProbeKind::ReadDfs);
        let m = SubOpMeasurement::run(&mut e, &suite);
        assert!(matches!(
            SubOpModels::fit(&m, 1e9),
            Err(SubOpModelError::MissingBasicSubOp(_))
        ));
    }
}
