//! The cost-formula algebra.
//!
//! §4: "each query operator for which a costing model need to be built …
//! need to be expressed as a composition of the sub operators", and the
//! formulas live in the remote system's costing profile. This module is a
//! small serialisable expression language for those compositions, so an
//! expert can author, store, and ship formulas as data (not code):
//!
//! ```text
//! BroadcastJoin =
//!   serial:   rD(|S|, sS) + b(|S|, sS)
//!   parallel: rL(|S|·blocks(R), sS) + hI(|S|·blocks(R), sS)
//!           + rL(|R|, sR) + hP(|R|, sR) + wD(|out|, s_out)
//! ```
//!
//! Evaluation mirrors the paper's elapsed-time semantics: serial terms
//! count in full, parallel terms divide by the cluster's parallelism, and
//! each stage contributes the learned fixed job overhead.

use crate::sub_op::models::SubOpModels;
use crate::sub_op::subop::SubOp;
use serde::{Deserialize, Serialize};

/// A scalar quantity over the operator's dimensions and cluster facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Qty {
    /// Literal.
    Num(f64),
    /// A named dimension.
    Dim(DimRef),
    /// Sum.
    Add(Box<Qty>, Box<Qty>),
    /// Difference.
    Sub(Box<Qty>, Box<Qty>),
    /// Product.
    Mul(Box<Qty>, Box<Qty>),
    /// Quotient.
    Div(Box<Qty>, Box<Qty>),
    /// Minimum.
    Min(Box<Qty>, Box<Qty>),
    /// Maximum.
    Max(Box<Qty>, Box<Qty>),
    /// Ceiling.
    Ceil(Box<Qty>),
}

/// Dimensions available to formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DimRef {
    /// Probe-side rows (`|R|`).
    BigRows,
    /// Probe-side stored row bytes.
    BigRowBytes,
    /// Probe-side projected bytes.
    BigProjBytes,
    /// Build-side rows (`|S|`).
    SmallRows,
    /// Build-side stored row bytes.
    SmallRowBytes,
    /// Build-side projected bytes.
    SmallProjBytes,
    /// Output rows.
    OutRows,
    /// Output row bytes.
    OutRowBytes,
    /// Rows under the heaviest join-key value.
    HeavyKeyRows,
    /// Aggregation input rows.
    InRows,
    /// Aggregation input row bytes.
    InRowBytes,
    /// Aggregation output groups.
    Groups,
    /// Number of aggregate functions.
    NAggs,
    /// Cluster parallelism.
    Cores,
    /// Cluster nodes.
    Nodes,
    /// DFS block size in bytes.
    BlockBytes,
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div build AST nodes, not arithmetic
impl Qty {
    /// Shorthand for a dimension reference.
    pub fn dim(d: DimRef) -> Qty {
        Qty::Dim(d)
    }

    /// Shorthand for a literal.
    pub fn num(v: f64) -> Qty {
        Qty::Num(v)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Qty) -> Qty {
        Qty::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Qty) -> Qty {
        Qty::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Qty) -> Qty {
        Qty::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Qty) -> Qty {
        Qty::Div(Box::new(self), Box::new(rhs))
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: Qty) -> Qty {
        Qty::Min(Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Qty) -> Qty {
        Qty::Max(Box::new(self), Box::new(rhs))
    }

    /// `ceil(self)`.
    pub fn ceil(self) -> Qty {
        Qty::Ceil(Box::new(self))
    }

    /// `ceil(rows·bytes / blockBytes)` — the `blocks(X)` helper.
    pub fn blocks(rows: DimRef, bytes: DimRef) -> Qty {
        Qty::dim(rows)
            .mul(Qty::dim(bytes))
            .div(Qty::dim(DimRef::BlockBytes))
            .ceil()
            .max(Qty::num(1.0))
    }

    /// Evaluates against a context.
    pub fn eval(&self, ctx: &FormulaContext) -> f64 {
        match self {
            Qty::Num(v) => *v,
            Qty::Dim(d) => ctx.dim(*d),
            Qty::Add(a, b) => a.eval(ctx) + b.eval(ctx),
            Qty::Sub(a, b) => a.eval(ctx) - b.eval(ctx),
            Qty::Mul(a, b) => a.eval(ctx) * b.eval(ctx),
            Qty::Div(a, b) => {
                let d = b.eval(ctx);
                if d == 0.0 {
                    0.0
                } else {
                    a.eval(ctx) / d
                }
            }
            Qty::Min(a, b) => a.eval(ctx).min(b.eval(ctx)),
            Qty::Max(a, b) => a.eval(ctx).max(b.eval(ctx)),
            Qty::Ceil(a) => a.eval(ctx).ceil(),
        }
    }
}

/// The dimension values a formula evaluates against.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FormulaContext {
    /// `|R|` (probe side).
    pub big_rows: f64,
    /// Probe-side row bytes.
    pub big_row_bytes: f64,
    /// Probe-side projected bytes.
    pub big_proj_bytes: f64,
    /// `|S|` (build side).
    pub small_rows: f64,
    /// Build-side row bytes.
    pub small_row_bytes: f64,
    /// Build-side projected bytes.
    pub small_proj_bytes: f64,
    /// Output rows.
    pub out_rows: f64,
    /// Output row bytes.
    pub out_row_bytes: f64,
    /// Heaviest join-key cardinality.
    pub heavy_key_rows: f64,
    /// Aggregation input rows.
    pub in_rows: f64,
    /// Aggregation input row bytes.
    pub in_row_bytes: f64,
    /// Aggregation groups.
    pub groups: f64,
    /// Aggregate-function count.
    pub n_aggs: f64,
    /// Cluster parallelism.
    pub cores: f64,
    /// Node count.
    pub nodes: f64,
    /// DFS block size, bytes.
    pub block_bytes: f64,
}

impl FormulaContext {
    fn dim(&self, d: DimRef) -> f64 {
        match d {
            DimRef::BigRows => self.big_rows,
            DimRef::BigRowBytes => self.big_row_bytes,
            DimRef::BigProjBytes => self.big_proj_bytes,
            DimRef::SmallRows => self.small_rows,
            DimRef::SmallRowBytes => self.small_row_bytes,
            DimRef::SmallProjBytes => self.small_proj_bytes,
            DimRef::OutRows => self.out_rows,
            DimRef::OutRowBytes => self.out_row_bytes,
            DimRef::HeavyKeyRows => self.heavy_key_rows,
            DimRef::InRows => self.in_rows,
            DimRef::InRowBytes => self.in_row_bytes,
            DimRef::Groups => self.groups,
            DimRef::NAggs => self.n_aggs,
            DimRef::Cores => self.cores,
            DimRef::Nodes => self.nodes,
            DimRef::BlockBytes => self.block_bytes,
        }
    }
}

/// One additive term of a formula.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// `subop_per_record(bytes) × rows`.
    SubOpTotal {
        /// The sub-op.
        op: SubOp,
        /// Record count.
        rows: Qty,
        /// Record size.
        bytes: Qty,
    },
    /// Regime-aware hash build: per-record cost depends on whether
    /// `table_bytes` fits the task budget (Fig. 13f).
    HashBuildTotal {
        /// Records inserted.
        rows: Qty,
        /// Record size.
        bytes: Qty,
        /// Total hash-table payload, bytes.
        table_bytes: Qty,
    },
    /// A fixed cost in µs.
    FixedUs(f64),
}

impl Term {
    /// Work in µs for this term.
    pub fn eval_us(&self, models: &SubOpModels, ctx: &FormulaContext) -> f64 {
        match self {
            Term::SubOpTotal { op, rows, bytes } => {
                let r = rows.eval(ctx).max(0.0);
                let b = bytes.eval(ctx).max(0.0);
                models.per_record_us(*op, b) * r
            }
            Term::HashBuildTotal {
                rows,
                bytes,
                table_bytes,
            } => {
                let r = rows.eval(ctx).max(0.0);
                let b = bytes.eval(ctx).max(0.0);
                let t = table_bytes.eval(ctx).max(0.0);
                models.hash_build_us(b, t) * r
            }
            Term::FixedUs(v) => *v,
        }
    }
}

/// Convenience constructor: `subop(op, rows, bytes)`.
pub fn subop(op: SubOp, rows: Qty, bytes: Qty) -> Term {
    Term::SubOpTotal { op, rows, bytes }
}

/// Convenience constructor for the regime-aware hash build.
pub fn hash_build(rows: Qty, bytes: Qty, table_bytes: Qty) -> Term {
    Term::HashBuildTotal {
        rows,
        bytes,
        table_bytes,
    }
}

/// A complete cost formula for one physical algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostFormula {
    /// Human-readable name.
    pub name: String,
    /// Execution stages (each adds the learned job overhead).
    pub stages: u32,
    /// Driver-side (serial) terms — counted in full.
    pub serial: Vec<Term>,
    /// Task-side terms — divided by the cluster parallelism.
    pub parallel: Vec<Term>,
    /// The task count of the parallel section, when the expert models it.
    /// With it, evaluation uses the paper's `NumTaskWaves` semantics
    /// (Fig. 6): the parallel section costs `ceil(tasks/cores)` *full*
    /// task quanta — charging partial waves as whole ones, one of the
    /// reasons the sub-op approach "slightly tends to overestimate" (§7).
    #[serde(default)]
    pub tasks: Option<Qty>,
}

impl std::fmt::Display for Qty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Qty::Num(v) => write!(f, "{v}"),
            Qty::Dim(d) => write!(f, "{d:?}"),
            Qty::Add(a, b) => write!(f, "({a} + {b})"),
            Qty::Sub(a, b) => write!(f, "({a} - {b})"),
            Qty::Mul(a, b) => write!(f, "({a} * {b})"),
            Qty::Div(a, b) => write!(f, "({a} / {b})"),
            Qty::Min(a, b) => write!(f, "min({a}, {b})"),
            Qty::Max(a, b) => write!(f, "max({a}, {b})"),
            Qty::Ceil(a) => write!(f, "ceil({a})"),
        }
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::SubOpTotal { op, rows, bytes } => {
                write!(f, "{}[{bytes}B] * {rows}", op.symbol())
            }
            Term::HashBuildTotal {
                rows,
                bytes,
                table_bytes,
            } => {
                write!(f, "hI[{bytes}B, table={table_bytes}B] * {rows}")
            }
            Term::FixedUs(v) => write!(f, "{v}us"),
        }
    }
}

impl std::fmt::Display for CostFormula {
    /// Renders the formula in the paper's Fig. 6 style:
    /// `serial terms + NumTaskWaves * (parallel terms)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, t) in self.serial.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{t}")?;
        }
        if !self.parallel.is_empty() {
            if !self.serial.is_empty() {
                write!(f, " + ")?;
            }
            if self.tasks.is_some() {
                write!(f, "NumTaskWaves * (")?;
            } else {
                write!(f, "(")?;
            }
            for (i, t) in self.parallel.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ") / parallelism")?;
        }
        write!(f, " [{} stage(s)]", self.stages)
    }
}

impl CostFormula {
    /// Predicted elapsed time in **seconds**.
    pub fn evaluate(&self, models: &SubOpModels, ctx: &FormulaContext) -> f64 {
        let serial: f64 = self.serial.iter().map(|t| t.eval_us(models, ctx)).sum();
        let parallel: f64 = self.parallel.iter().map(|t| t.eval_us(models, ctx)).sum();
        let cores = ctx.cores.max(1.0);
        let parallel_elapsed = match &self.tasks {
            Some(tq) => {
                let tasks = tq.eval(ctx).max(1.0);
                let waves = (tasks / cores).ceil().max(1.0);
                // waves × per-task work = parallel × waves / tasks.
                parallel * waves / tasks
            }
            None => parallel / cores,
        };
        let us = self.stages as f64 * models.job_overhead_us + serial + parallel_elapsed;
        (us / 1e6).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sub_op::measurement::SubOpMeasurement;
    use remote_sim::ClusterEngine;
    use workload::probe_suite;

    fn models() -> SubOpModels {
        let mut e = ClusterEngine::paper_hive("hive", 3).without_noise();
        let m = SubOpMeasurement::run(&mut e, &probe_suite());
        SubOpModels::fit(&m, 4.0e8).unwrap()
    }

    fn ctx() -> FormulaContext {
        FormulaContext {
            big_rows: 1e6,
            big_row_bytes: 250.0,
            big_proj_bytes: 8.0,
            small_rows: 1e5,
            small_row_bytes: 100.0,
            small_proj_bytes: 8.0,
            out_rows: 1e5,
            out_row_bytes: 8.0,
            heavy_key_rows: 1.0,
            cores: 6.0,
            nodes: 3.0,
            block_bytes: 32.0 * 1024.0 * 1024.0,
            ..Default::default()
        }
    }

    #[test]
    fn qty_arithmetic() {
        let c = ctx();
        let q = Qty::dim(DimRef::BigRows)
            .mul(Qty::dim(DimRef::BigRowBytes))
            .div(Qty::num(2.0));
        assert_eq!(q.eval(&c), 1e6 * 250.0 / 2.0);
        assert_eq!(Qty::num(5.0).min(Qty::num(3.0)).eval(&c), 3.0);
        assert_eq!(Qty::num(2.1).ceil().eval(&c), 3.0);
        // Division by zero guards to zero instead of inf.
        assert_eq!(Qty::num(5.0).div(Qty::num(0.0)).eval(&c), 0.0);
    }

    #[test]
    fn blocks_helper_counts_dfs_blocks() {
        let c = ctx();
        // 1e6 × 250 B = 250 MB over 32 MB blocks → 8 blocks.
        let q = Qty::blocks(DimRef::BigRows, DimRef::BigRowBytes);
        assert_eq!(q.eval(&c), 8.0);
    }

    #[test]
    fn formula_divides_parallel_terms_by_cores() {
        let m = models();
        let c = ctx();
        let serial_only = CostFormula {
            name: "serial".into(),
            stages: 0,
            serial: vec![subop(
                SubOp::ReadDfs,
                Qty::dim(DimRef::BigRows),
                Qty::dim(DimRef::BigRowBytes),
            )],
            parallel: vec![],
            tasks: None,
        };
        let parallel_only = CostFormula {
            name: "parallel".into(),
            stages: 0,
            serial: vec![],
            parallel: vec![subop(
                SubOp::ReadDfs,
                Qty::dim(DimRef::BigRows),
                Qty::dim(DimRef::BigRowBytes),
            )],
            tasks: None,
        };
        let s = serial_only.evaluate(&m, &c);
        let p = parallel_only.evaluate(&m, &c);
        assert!((s / p - 6.0).abs() < 1e-6, "serial {s} parallel {p}");
    }

    #[test]
    fn stages_add_job_overhead() {
        let m = models();
        let c = ctx();
        let empty = CostFormula {
            name: "x".into(),
            stages: 2,
            serial: vec![],
            parallel: vec![],
            tasks: None,
        };
        let secs = empty.evaluate(&m, &c);
        assert!((secs - 2.0 * m.job_overhead_us / 1e6).abs() < 1e-9);
    }

    #[test]
    fn hash_build_term_uses_regime() {
        let m = models();
        let c = ctx();
        // Use a 1000-byte record: the spill line only rises above the
        // in-memory line for larger records (its fitted intercept is
        // negative, Fig. 13f).
        let mk = |table: f64| CostFormula {
            name: "h".into(),
            stages: 0,
            serial: vec![],
            parallel: vec![hash_build(
                Qty::dim(DimRef::SmallRows),
                Qty::num(1000.0),
                Qty::num(table),
            )],
            tasks: None,
        };
        let fits = mk(1e6).evaluate(&m, &c);
        let spills = mk(1e12).evaluate(&m, &c);
        assert!(spills > fits);
    }

    #[test]
    fn formula_renders_in_fig6_style() {
        let f = crate::sub_op::algorithms::join_formula(
            remote_sim::physical::JoinAlgorithm::HiveBroadcastJoin,
        );
        let rendered = f.to_string();
        // Fig. 6's structure: the once-off rD + b prefix and the
        // wave-multiplied per-task body.
        assert!(rendered.starts_with("Broadcast Join: rD["), "{rendered}");
        assert!(rendered.contains("NumTaskWaves * ("), "{rendered}");
        assert!(rendered.contains("hI["), "{rendered}");
        assert!(rendered.contains("wD["), "{rendered}");
    }

    #[test]
    fn formulas_serialize() {
        let f = CostFormula {
            name: "Broadcast Join".into(),
            stages: 1,
            serial: vec![subop(
                SubOp::Broadcast,
                Qty::dim(DimRef::SmallRows),
                Qty::dim(DimRef::SmallRowBytes),
            )],
            parallel: vec![hash_build(
                Qty::dim(DimRef::SmallRows),
                Qty::dim(DimRef::SmallRowBytes),
                Qty::dim(DimRef::SmallRows).mul(Qty::dim(DimRef::SmallRowBytes)),
            )],
            tasks: None,
        };
        let json = serde_json::to_string(&f).unwrap();
        let back: CostFormula = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
