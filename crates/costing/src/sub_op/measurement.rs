//! Probe-based sub-op measurement (Fig. 5's footnoted methodology).
//!
//! §4: "we avoided instrumenting and injecting special code inside the
//! remote system … Instead, we submitted primitive queries that execute
//! specific type of operations, and from that we extracted the values of
//! the individual sub-ops."
//!
//! The extraction uses two expert facts from the system profile: the
//! cluster's total parallelism (to convert observed elapsed slopes into
//! per-record *work*), and which sub-ops run driver-side (broadcast) vs
//! task-side. Everything else comes from subtraction against the ReadDFS
//! baseline, exactly as Fig. 5's footnotes prescribe ("Subtract rD from
//! the measured values").

use crate::sub_op::subop::SubOp;
use mathkit::SimpleLinearModel;
use remote_sim::probe::{ProbeKind, ProbeSpec};
use remote_sim::{RemoteSystem, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One executed probe query and its observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeObservation {
    /// The probe kind executed.
    pub kind: ProbeKind,
    /// Rows processed.
    pub rows: u64,
    /// Record size, bytes.
    pub record_bytes: u64,
    /// Whether the spill regime was forced (hash-build probes).
    pub spill: bool,
    /// Observed elapsed time, µs.
    pub elapsed_us: f64,
}

/// The result of running a probe suite on one remote system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubOpMeasurement {
    /// Raw observations, in execution order.
    pub observations: Vec<ProbeObservation>,
    /// Total task parallelism of the measured cluster (expert knowledge
    /// from the system profile).
    pub cores: f64,
    /// Node count (for broadcast interpretation).
    pub nodes: f64,
    /// Total probe queries executed.
    pub queries_run: usize,
    /// Remote busy time consumed by the suite — Fig. 13a's y-axis.
    pub training_time: SimDuration,
    /// Cumulative busy time after each probe.
    pub cumulative: Vec<SimDuration>,
}

/// Which probe measures a sub-op (paired against the ReadDFS baseline).
pub fn probe_for(subop: SubOp) -> ProbeKind {
    match subop {
        SubOp::ReadDfs => ProbeKind::ReadDfs,
        SubOp::WriteDfs => ProbeKind::ReadWriteDfs,
        SubOp::ReadLocal => ProbeKind::ReadDfsReadLocal,
        SubOp::WriteLocal => ProbeKind::ReadDfsWriteLocal,
        SubOp::Shuffle => ProbeKind::ReadDfsShuffle,
        SubOp::Broadcast => ProbeKind::ReadDfsBroadcast,
        SubOp::Sort => ProbeKind::ReadDfsSort,
        SubOp::Scan => ProbeKind::ReadDfsScan,
        SubOp::HashBuild => ProbeKind::ReadDfsHashBuild,
        SubOp::HashProbe => ProbeKind::ReadDfsHashProbe,
        SubOp::RecMerge => ProbeKind::ReadDfsMerge,
    }
}

impl SubOpMeasurement {
    /// Runs a probe suite against a remote system.
    pub fn run<R: RemoteSystem + ?Sized>(remote: &mut R, suite: &[ProbeSpec]) -> Self {
        let profile = remote.profile().clone();
        let start = remote.total_busy();
        let mut observations = Vec::with_capacity(suite.len());
        let mut cumulative = Vec::with_capacity(suite.len());
        for spec in suite {
            if let Ok(exec) = remote.submit_probe(spec) {
                observations.push(ProbeObservation {
                    kind: spec.kind,
                    rows: spec.rows,
                    record_bytes: spec.record_bytes,
                    spill: spec.force_spill,
                    elapsed_us: exec.elapsed.as_micros(),
                });
                cumulative.push(remote.total_busy() - start);
            }
        }
        SubOpMeasurement {
            observations,
            cores: (profile.total_cores() as f64).max(1.0),
            nodes: profile.nodes as f64,
            queries_run: suite.len(),
            training_time: cumulative.last().copied().unwrap_or(SimDuration::ZERO),
            cumulative,
        }
    }

    /// Observations for a kind/size/spill combination, as (rows, elapsed).
    fn series(&self, kind: ProbeKind, size: u64, spill: bool) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = self
            .observations
            .iter()
            .filter(|o| o.kind == kind && o.record_bytes == size && o.spill == spill)
            .map(|o| (o.rows as f64, o.elapsed_us))
            .collect();
        pts.sort_by(|a, b| mathkit::total_cmp_f64(&a.0, &b.0));
        pts
    }

    /// Elapsed of a specific probe, if it ran.
    fn elapsed_at(&self, kind: ProbeKind, rows: u64, size: u64, spill: bool) -> Option<f64> {
        self.observations
            .iter()
            .find(|o| {
                o.kind == kind && o.rows == rows && o.record_bytes == size && o.spill == spill
            })
            .map(|o| o.elapsed_us)
    }

    /// Record sizes covered for a probe kind.
    fn sizes(&self, kind: ProbeKind) -> Vec<u64> {
        let mut s: Vec<u64> = self
            .observations
            .iter()
            .filter(|o| o.kind == kind)
            .map(|o| o.record_bytes)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Derived per-record **work** (single-core µs) of a sub-op at one
    /// record size, averaged across the row counts — the paper's "group
    /// the measurements by the record size, and compute the average
    /// across the varying number of records".
    pub fn work_per_record(&self, subop: SubOp, size: u64, spill: bool) -> Option<f64> {
        let series = self.per_record_series(subop, size, spill);
        if series.is_empty() {
            return None;
        }
        Some(series.iter().map(|&(_, v)| v).sum::<f64>() / series.len() as f64)
    }

    /// The per-row-count series behind Figs. 7a/13b: derived per-record
    /// work at each row count (should be roughly flat).
    pub fn per_record_series(&self, subop: SubOp, size: u64, spill: bool) -> Vec<(u64, f64)> {
        let kind = probe_for(subop);
        if subop == SubOp::ReadDfs {
            // Baseline: slope of elapsed vs rows removes constant job
            // overheads; work = slope × cores. Reported per row count via
            // (elapsed − intercept) × cores / rows.
            let pts = self.series(kind, size, false);
            if pts.len() < 2 {
                return vec![];
            }
            let (xs, ys): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
            let Ok(line) = SimpleLinearModel::fit(&xs, &ys) else {
                return vec![];
            };
            return pts
                .iter()
                .map(|&(rows, el)| {
                    (
                        rows as u64,
                        ((el - line.intercept) * self.cores / rows).max(0.0),
                    )
                })
                .collect();
        }
        // Everything else: subtract the ReadDFS elapsed at the same
        // (rows, size) — both probes share the read component and the job
        // overheads, so the difference isolates the target sub-op.
        let mut out = Vec::new();
        for o in &self.observations {
            if o.kind != kind || o.record_bytes != size || o.spill != spill {
                continue;
            }
            let Some(base) = self.elapsed_at(ProbeKind::ReadDfs, o.rows, size, false) else {
                continue;
            };
            let diff = (o.elapsed_us - base).max(0.0);
            let scale = if subop == SubOp::Broadcast {
                // Broadcast runs driver-side (serial): elapsed is work.
                1.0
            } else {
                self.cores
            };
            out.push((o.rows, diff * scale / o.rows as f64));
        }
        out.sort_by_key(|&(rows, _)| rows);
        out
    }

    /// Per-size derived points for a sub-op: `(record size, work µs/rec)`.
    pub fn per_size_points(&self, subop: SubOp, spill: bool) -> Vec<(f64, f64)> {
        self.sizes(probe_for(subop))
            .into_iter()
            .filter_map(|s| self.work_per_record(subop, s, spill).map(|w| (s as f64, w)))
            .collect()
    }

    /// Estimated fixed job overhead in µs (average intercept of the
    /// ReadDFS elapsed-vs-rows fits across record sizes). Used by the
    /// formulas as the per-stage constant.
    pub fn job_overhead_us(&self) -> f64 {
        let mut intercepts = Vec::new();
        for size in self.sizes(ProbeKind::ReadDfs) {
            let pts = self.series(ProbeKind::ReadDfs, size, false);
            if pts.len() < 2 {
                continue;
            }
            let (xs, ys): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
            if let Ok(line) = SimpleLinearModel::fit(&xs, &ys) {
                intercepts.push(line.intercept.max(0.0));
            }
        }
        if intercepts.is_empty() {
            0.0
        } else {
            intercepts.iter().sum::<f64>() / intercepts.len() as f64
        }
    }

    /// Per-sub-op probe counts (for the Fig. 13a x-axis).
    pub fn queries_per_subop(&self) -> BTreeMap<SubOp, usize> {
        let mut out = BTreeMap::new();
        for subop in SubOp::ALL {
            let kind = probe_for(subop);
            let n = self.observations.iter().filter(|o| o.kind == kind).count();
            out.insert(subop, n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remote_sim::ClusterEngine;
    use workload::probe_suite;

    fn measured() -> SubOpMeasurement {
        let mut e = ClusterEngine::paper_hive("hive", 3).without_noise();
        SubOpMeasurement::run(&mut e, &probe_suite())
    }

    #[test]
    fn suite_runs_completely() {
        let m = measured();
        assert_eq!(m.observations.len(), m.queries_run);
        assert!(m.training_time > SimDuration::ZERO);
        assert_eq!(m.cores, 6.0);
    }

    #[test]
    fn read_dfs_work_matches_hidden_truth() {
        let m = measured();
        // Hidden truth: 0.0041·s + 0.6323 µs/record at s = 1000 → 4.7323.
        let w = m.work_per_record(SubOp::ReadDfs, 1000, false).unwrap();
        assert!((w - 4.7323).abs() < 0.3, "derived {w}");
    }

    #[test]
    fn write_dfs_derivation_by_subtraction() {
        let m = measured();
        // Truth: 0.0314·1000 + 0.7403 ≈ 32.14.
        let w = m.work_per_record(SubOp::WriteDfs, 1000, false).unwrap();
        assert!((w - 32.14).abs() < 1.0, "derived {w}");
    }

    #[test]
    fn per_record_series_is_flat_across_row_counts() {
        // The Fig. 7a / 13b observation: per-record cost ~constant vs rows.
        let m = measured();
        let series = m.per_record_series(SubOp::WriteDfs, 1000, false);
        assert_eq!(series.len(), 4);
        let vals: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        for v in &vals {
            assert!((v - mean).abs() / mean < 0.1, "series not flat: {vals:?}");
        }
    }

    #[test]
    fn broadcast_is_measured_serially() {
        let m = measured();
        // Truth: per-node 0.0105·s + 4.2, × 3 nodes. At s=500: 28.35.
        let w = m.work_per_record(SubOp::Broadcast, 500, false).unwrap();
        assert!((w - 28.35).abs() < 3.0, "derived {w}");
    }

    #[test]
    fn hash_build_regimes_differ() {
        let m = measured();
        let mem = m.work_per_record(SubOp::HashBuild, 1000, false).unwrap();
        let spill = m.work_per_record(SubOp::HashBuild, 1000, true).unwrap();
        // Truth: ~43 vs ~130.
        assert!(spill > 2.0 * mem, "mem {mem} spill {spill}");
    }

    #[test]
    fn job_overhead_is_positive_and_near_stage_startup() {
        let m = measured();
        let oh = m.job_overhead_us();
        // Hive persona: 2 s stage startup + ~wave startups.
        assert!(oh > 1.0e6 && oh < 4.0e6, "overhead {oh}");
    }

    #[test]
    fn per_size_points_cover_probe_sizes() {
        let m = measured();
        let pts = m.per_size_points(SubOp::Shuffle, false);
        assert_eq!(pts.len(), 5);
        // Monotone increasing with record size.
        for w in pts.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn queries_per_subop_counts() {
        let m = measured();
        let counts = m.queries_per_subop();
        assert_eq!(counts[&SubOp::ReadDfs], 20);
        assert_eq!(counts[&SubOp::HashBuild], 40); // both regimes
    }
}
