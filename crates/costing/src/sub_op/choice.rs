//! Choice policies (§4).
//!
//! "If there are still multiple possible choices, then the system can
//! either take the highest cost (assuming the worst case scenario), the
//! average cost, or the 'in-house comparable' cost. The in-house
//! comparable cost is applicable when the remote system is another
//! relational database system. In this case, IntelliSphere assumes that
//! the remote system will pick the algorithm that Teradata would have
//! picked were the data in-house" — i.e. the cost-minimal one.

use crate::estimator::OperatorKind;
use crate::observability::TraceCtx;
use serde::{Deserialize, Serialize};
use telemetry::Event;

/// How to resolve multiple applicable algorithm costs into one estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChoicePolicy {
    /// Take the highest candidate cost (worst case).
    Worst,
    /// Take the mean of the candidate costs.
    Average,
    /// Assume the remote optimizer picks what a cost-based in-house
    /// optimizer would: the cheapest candidate.
    InHouseComparable,
}

impl ChoicePolicy {
    /// Resolves candidate costs (seconds) into one estimate.
    ///
    /// # Panics
    /// Panics on an empty candidate list.
    pub fn resolve(self, costs: &[f64]) -> f64 {
        assert!(!costs.is_empty(), "ChoicePolicy::resolve: no candidates");
        match self {
            ChoicePolicy::Worst => costs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ChoicePolicy::Average => costs.iter().sum::<f64>() / costs.len() as f64,
            ChoicePolicy::InHouseComparable => costs.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// [`ChoicePolicy::resolve`] with the decision trail: emits
    /// [`Event::SubOpAlgorithmChosen`] carrying the candidate costs and
    /// the resolved estimate.
    pub fn resolve_traced(self, costs: &[f64], op: OperatorKind, ctx: &TraceCtx<'_>) -> f64 {
        let resolved = self.resolve(costs);
        ctx.tracer.emit(|| Event::SubOpAlgorithmChosen {
            system: ctx.system.to_string(),
            operator: op.to_string(),
            policy: self.name().to_string(),
            candidates: costs.to_vec(),
            resolved,
        });
        resolved
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ChoicePolicy::Worst => "worst",
            ChoicePolicy::Average => "average",
            ChoicePolicy::InHouseComparable => "in-house",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COSTS: [f64; 3] = [10.0, 20.0, 60.0];

    #[test]
    fn worst_takes_max() {
        assert_eq!(ChoicePolicy::Worst.resolve(&COSTS), 60.0);
    }

    #[test]
    fn average_takes_mean() {
        assert_eq!(ChoicePolicy::Average.resolve(&COSTS), 30.0);
    }

    #[test]
    fn in_house_takes_min() {
        assert_eq!(ChoicePolicy::InHouseComparable.resolve(&COSTS), 10.0);
    }

    #[test]
    fn single_candidate_is_identity_for_all() {
        for p in [
            ChoicePolicy::Worst,
            ChoicePolicy::Average,
            ChoicePolicy::InHouseComparable,
        ] {
            assert_eq!(p.resolve(&[42.0]), 42.0);
        }
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panic() {
        ChoicePolicy::Worst.resolve(&[]);
    }

    #[test]
    fn traced_resolution_reports_candidates_and_result() {
        use catalog::SystemId;
        use std::sync::Arc;
        use telemetry::{Tracer, VecSubscriber};

        let sub = Arc::new(VecSubscriber::new());
        let tracer = Tracer::new(sub.clone());
        let system = SystemId::new("hive-a");
        let ctx = TraceCtx::new(&tracer, &system);
        let resolved = ChoicePolicy::Average.resolve_traced(&COSTS, OperatorKind::Join, &ctx);
        assert_eq!(resolved, 30.0);
        match &sub.snapshot()[0] {
            Event::SubOpAlgorithmChosen {
                system,
                operator,
                policy,
                candidates,
                resolved,
            } => {
                assert_eq!(system, "hive-a");
                assert_eq!(operator, "join");
                assert_eq!(policy, "average");
                assert_eq!(candidates, &COSTS.to_vec());
                assert_eq!(*resolved, 30.0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
