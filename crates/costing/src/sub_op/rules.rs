//! Applicability rules (§4).
//!
//! "These observations, or what we refer to them as 'Applicability
//! Rules', are defined by the technical experts while defining the cost
//! formula for each possible algorithm. IntelliSphere uses them at query
//! time to eliminate inapplicable choices based on the cardinalities and
//! statistics at hand."

use catalog::SystemKind;
use remote_sim::exec::JoinInfo;
use remote_sim::physical::JoinAlgorithm;
use remote_sim::remote_opt::JoinContext;
use serde::{Deserialize, Serialize};

/// The statistics a rule can consult at query time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleInputs {
    /// Rows carried by the heaviest join-key value.
    pub heavy_key_rows: f64,
    /// Rows of the big (probe) side.
    pub big_rows: f64,
    /// The join has at least one equi-key conjunct.
    pub has_equi_keys: bool,
    /// The big (probe) side is known to be bucketed on the join key.
    pub big_bucketed: bool,
    /// The small (build) side is known to be bucketed on the join key —
    /// note the paper's point: data shipped from Teradata loses its
    /// partitioning, so this is `false` for transferred relations "even
    /// if S is partitioned on the join key, but there is no way to tell
    /// the remote system such property after the data transfer".
    pub small_bucketed: bool,
    /// Total stored bytes of the small side.
    pub small_total_bytes: f64,
    /// Total stored bytes of the big side.
    pub big_total_bytes: f64,
}

impl RuleInputs {
    /// Builds rule inputs straight from a query analysis' join profile.
    pub fn from_join(info: &JoinInfo, ctx: &JoinContext) -> Self {
        RuleInputs {
            has_equi_keys: ctx.has_equi_keys,
            big_bucketed: ctx.big_bucketed,
            small_bucketed: ctx.small_bucketed,
            small_total_bytes: info.small.total_bytes(),
            big_total_bytes: info.big.total_bytes(),
            heavy_key_rows: info.heavy_key_rows,
            big_rows: info.big.rows,
        }
    }
}

/// A predicate over [`RuleInputs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// The join is an equi-join.
    EquiJoin,
    /// The join has no equi keys (Cartesian-like).
    NotEquiJoin,
    /// The small side is not bucketed on the join key.
    SmallNotBucketed,
    /// Either side is not bucketed on the join key.
    AnySideNotBucketed,
    /// The small side exceeds a byte threshold ("if both join relations
    /// are quite large, then the choices of Broadcast Join … can be
    /// eliminated").
    SmallSideLargerThan {
        /// Threshold in bytes.
        bytes: f64,
    },
    /// The small side is at most a byte threshold (e.g. it fits the
    /// remote's hash-join memory, so a cost-based RDBMS will hash-join).
    SmallSideAtMost {
        /// Threshold in bytes.
        bytes: f64,
    },
    /// The heaviest join-key value carries more than `fraction` of the
    /// probe side's rows (Hive's skew-join trigger).
    HeavyKeyFractionAbove {
        /// Skew threshold as a fraction of probe rows.
        fraction: f64,
    },
    /// The heaviest join-key value carries at most `fraction` of the probe
    /// side's rows.
    HeavyKeyFractionAtMost {
        /// Skew threshold as a fraction of probe rows.
        fraction: f64,
    },
    /// Always fires.
    Always,
}

impl Condition {
    /// Evaluates the condition.
    pub fn holds(&self, inputs: &RuleInputs) -> bool {
        match self {
            Condition::EquiJoin => inputs.has_equi_keys,
            Condition::NotEquiJoin => !inputs.has_equi_keys,
            Condition::SmallNotBucketed => !inputs.small_bucketed,
            Condition::AnySideNotBucketed => !inputs.small_bucketed || !inputs.big_bucketed,
            Condition::SmallSideLargerThan { bytes } => inputs.small_total_bytes > *bytes,
            Condition::SmallSideAtMost { bytes } => inputs.small_total_bytes <= *bytes,
            Condition::HeavyKeyFractionAbove { fraction } => {
                inputs.big_rows > 0.0 && inputs.heavy_key_rows / inputs.big_rows > *fraction
            }
            Condition::HeavyKeyFractionAtMost { fraction } => {
                inputs.big_rows <= 0.0 || inputs.heavy_key_rows / inputs.big_rows <= *fraction
            }
            Condition::Always => true,
        }
    }
}

/// One applicability rule: when `when` holds, `eliminates` are ruled out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicabilityRule {
    /// Human-readable rationale (stored in the costing profile).
    pub description: String,
    /// The condition under which the rule fires.
    pub when: Condition,
    /// The algorithms eliminated when it fires.
    pub eliminates: Vec<JoinAlgorithm>,
}

/// The expert rule set for an engine family, mirroring the §4 examples.
/// `rdbms_hash_memory_bytes` is the RDBMS remote's hash-join memory
/// ceiling (its optimizer hash-joins whenever the build side fits).
pub fn default_rules(
    kind: SystemKind,
    broadcast_threshold_bytes: f64,
    rdbms_hash_memory_bytes: f64,
) -> Vec<ApplicabilityRule> {
    match kind {
        SystemKind::Hive => vec![
            ApplicabilityRule {
                description: "Relations not bucketed by the join key rule out the \
                              bucketed algorithms"
                    .into(),
                when: Condition::AnySideNotBucketed,
                eliminates: vec![
                    JoinAlgorithm::HiveBucketMapJoin,
                    JoinAlgorithm::HiveSortMergeBucketJoin,
                ],
            },
            ApplicabilityRule {
                description: "Both relations large: broadcast is off the table".into(),
                when: Condition::SmallSideLargerThan { bytes: broadcast_threshold_bytes },
                eliminates: vec![JoinAlgorithm::HiveBroadcastJoin],
            },
            ApplicabilityRule {
                description: "A skewed join key routes through Hive's skew join".into(),
                when: Condition::HeavyKeyFractionAbove { fraction: 0.20 },
                eliminates: vec![JoinAlgorithm::HiveShuffleJoin],
            },
            ApplicabilityRule {
                description: "Without key skew the skew-join machinery is not used".into(),
                when: Condition::HeavyKeyFractionAtMost { fraction: 0.20 },
                eliminates: vec![JoinAlgorithm::HiveSkewJoin],
            },
        ],
        SystemKind::Spark => vec![
            ApplicabilityRule {
                description: "Equi-joins never run as nested-loop or Cartesian".into(),
                when: Condition::EquiJoin,
                eliminates: vec![
                    JoinAlgorithm::SparkBroadcastNestedLoopJoin,
                    JoinAlgorithm::SparkCartesianProductJoin,
                ],
            },
            ApplicabilityRule {
                description: "Non-equi joins cannot use the key-based algorithms".into(),
                when: Condition::NotEquiJoin,
                eliminates: vec![
                    JoinAlgorithm::SparkBroadcastHashJoin,
                    JoinAlgorithm::SparkShuffleHashJoin,
                    JoinAlgorithm::SparkSortMergeJoin,
                ],
            },
            ApplicabilityRule {
                description: "Both relations large: broadcast variants are out".into(),
                when: Condition::SmallSideLargerThan { bytes: broadcast_threshold_bytes },
                eliminates: vec![
                    JoinAlgorithm::SparkBroadcastHashJoin,
                    JoinAlgorithm::SparkBroadcastNestedLoopJoin,
                ],
            },
        ],
        SystemKind::Rdbms | SystemKind::Teradata => vec![
            ApplicabilityRule {
                description: "Non-equi joins fall back to nested loops".into(),
                when: Condition::NotEquiJoin,
                eliminates: vec![
                    JoinAlgorithm::RdbmsHashJoin,
                    JoinAlgorithm::RdbmsSortMergeJoin,
                ],
            },
            ApplicabilityRule {
                description: "Equi-joins never run as nested loops at scale".into(),
                when: Condition::EquiJoin,
                eliminates: vec![JoinAlgorithm::RdbmsNestedLoopJoin],
            },
            ApplicabilityRule {
                description: "A build side fitting the hash memory means the                               cost-based optimizer hash-joins"
                    .into(),
                when: Condition::SmallSideAtMost { bytes: rdbms_hash_memory_bytes },
                eliminates: vec![JoinAlgorithm::RdbmsSortMergeJoin],
            },
            ApplicabilityRule {
                description: "A build side exceeding the hash memory forces the                               sort-merge path"
                    .into(),
                when: Condition::SmallSideLargerThan { bytes: rdbms_hash_memory_bytes },
                eliminates: vec![JoinAlgorithm::RdbmsHashJoin],
            },
        ],
    }
}

/// Applies the rules: starts from the engine's full menu and removes what
/// fires. Guarantees at least one survivor (if everything is eliminated,
/// the full menu is returned — better to cost conservatively than to have
/// no estimate).
pub fn applicable_algorithms(
    menu: &[JoinAlgorithm],
    rules: &[ApplicabilityRule],
    inputs: &RuleInputs,
) -> Vec<JoinAlgorithm> {
    let mut surviving: Vec<JoinAlgorithm> = menu.to_vec();
    for rule in rules {
        if rule.when.holds(inputs) {
            surviving.retain(|a| !rule.eliminates.contains(a));
        }
    }
    if surviving.is_empty() {
        menu.to_vec()
    } else {
        surviving
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sub_op::algorithms::algorithms_for;

    fn inputs() -> RuleInputs {
        RuleInputs {
            has_equi_keys: true,
            big_bucketed: false,
            small_bucketed: false,
            small_total_bytes: 1e9,
            big_total_bytes: 1e10,
            heavy_key_rows: 1.0,
            big_rows: 1e7,
        }
    }

    #[test]
    fn hive_large_unbucketed_equi_join_leaves_shuffle_only() {
        let menu = algorithms_for(SystemKind::Hive);
        let rules = default_rules(SystemKind::Hive, 32e6, 1e9);
        let left = applicable_algorithms(&menu, &rules, &inputs());
        assert_eq!(left, vec![JoinAlgorithm::HiveShuffleJoin]);
    }

    #[test]
    fn skewed_keys_swap_shuffle_for_skew_join() {
        let menu = algorithms_for(SystemKind::Hive);
        let rules = default_rules(SystemKind::Hive, 32e6, 1e9);
        let mut i = inputs();
        i.heavy_key_rows = 0.5 * i.big_rows;
        let left = applicable_algorithms(&menu, &rules, &i);
        assert_eq!(left, vec![JoinAlgorithm::HiveSkewJoin]);
    }

    #[test]
    fn hive_small_build_side_keeps_broadcast() {
        let menu = algorithms_for(SystemKind::Hive);
        let rules = default_rules(SystemKind::Hive, 32e6, 1e9);
        let mut i = inputs();
        i.small_total_bytes = 1e6;
        let left = applicable_algorithms(&menu, &rules, &i);
        assert!(left.contains(&JoinAlgorithm::HiveBroadcastJoin));
    }

    #[test]
    fn spark_equi_join_drops_cartesian_family() {
        let menu = algorithms_for(SystemKind::Spark);
        let rules = default_rules(SystemKind::Spark, 10e6, 1e9);
        let left = applicable_algorithms(&menu, &rules, &inputs());
        assert!(!left.contains(&JoinAlgorithm::SparkCartesianProductJoin));
        assert!(!left.contains(&JoinAlgorithm::SparkBroadcastNestedLoopJoin));
        assert!(left.contains(&JoinAlgorithm::SparkSortMergeJoin));
    }

    #[test]
    fn spark_non_equi_join_keeps_only_cartesian_family() {
        let menu = algorithms_for(SystemKind::Spark);
        let rules = default_rules(SystemKind::Spark, 10e6, 1e9);
        let mut i = inputs();
        i.has_equi_keys = false;
        i.small_total_bytes = 1e6;
        let left = applicable_algorithms(&menu, &rules, &i);
        assert_eq!(
            left,
            vec![
                JoinAlgorithm::SparkBroadcastNestedLoopJoin,
                JoinAlgorithm::SparkCartesianProductJoin
            ]
        );
    }

    #[test]
    fn bucketed_sides_keep_smb() {
        let menu = algorithms_for(SystemKind::Hive);
        let rules = default_rules(SystemKind::Hive, 32e6, 1e9);
        let mut i = inputs();
        i.big_bucketed = true;
        i.small_bucketed = true;
        let left = applicable_algorithms(&menu, &rules, &i);
        assert!(left.contains(&JoinAlgorithm::HiveSortMergeBucketJoin));
    }

    #[test]
    fn total_elimination_falls_back_to_full_menu() {
        let menu = vec![JoinAlgorithm::HiveBroadcastJoin];
        let rules = vec![ApplicabilityRule {
            description: "kill everything".into(),
            when: Condition::Always,
            eliminates: vec![JoinAlgorithm::HiveBroadcastJoin],
        }];
        let left = applicable_algorithms(&menu, &rules, &inputs());
        assert_eq!(left, menu);
    }

    #[test]
    fn rules_serialize() {
        let rules = default_rules(SystemKind::Hive, 32e6, 1e9);
        let json = serde_json::to_string(&rules).unwrap();
        let back: Vec<ApplicabilityRule> = serde_json::from_str(&json).unwrap();
        assert_eq!(rules, back);
    }
}
