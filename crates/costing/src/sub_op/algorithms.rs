//! The expert-authored cost formulas per physical algorithm.
//!
//! §4: "it is important for a technical expert to know the list of
//! physical algorithms that are supported by the remote system for a
//! given query operator … Each of these algorithms need to be expressed
//! in terms of the defined sub operators." Figure 6 spells out the
//! broadcast-join composition; the others follow the same method.
//!
//! These formulas deliberately model the *naive serial composition* of
//! sub-op work — they do not know about I/O↔CPU overlap inside a task,
//! which is why the sub-op approach "slightly tends to overestimate the
//! cost" (§7, Fig. 13g).

use crate::sub_op::formula::{hash_build, subop, CostFormula, DimRef, Qty, Term};
use crate::sub_op::subop::SubOp;
use catalog::SystemKind;
use remote_sim::physical::JoinAlgorithm;

use DimRef::*;

fn d(r: DimRef) -> Qty {
    Qty::dim(r)
}

/// `small_rows × blocks(big)` — the hash table is rebuilt by every map
/// task (Fig. 6: the per-task loop multiplied by NumTaskWaves).
fn small_times_big_blocks() -> Qty {
    d(SmallRows).mul(Qty::blocks(BigRows, BigRowBytes))
}

fn small_table_bytes() -> Qty {
    d(SmallRows).mul(d(SmallRowBytes))
}

/// Map tasks of a two-input job: blocks(R) + blocks(S).
fn both_side_tasks() -> Qty {
    Qty::blocks(BigRows, BigRowBytes).add(Qty::blocks(SmallRows, SmallRowBytes))
}

/// The shared shuffle/sort-merge body (Hive Shuffle Join, Spark SortMerge
/// Join): map read + local sort spill, shuffle, reduce merge, write.
fn shuffle_sort_merge_terms() -> Vec<Term> {
    vec![
        subop(SubOp::ReadDfs, d(BigRows), d(BigRowBytes)),
        subop(SubOp::ReadDfs, d(SmallRows), d(SmallRowBytes)),
        subop(SubOp::WriteLocal, d(BigRows), d(BigProjBytes)),
        subop(SubOp::WriteLocal, d(SmallRows), d(SmallProjBytes)),
        subop(SubOp::Scan, d(BigRows), d(BigRowBytes)),
        subop(SubOp::Scan, d(SmallRows), d(SmallRowBytes)),
        subop(SubOp::Sort, d(BigRows), d(BigProjBytes)),
        subop(SubOp::Sort, d(SmallRows), d(SmallProjBytes)),
        subop(SubOp::Shuffle, d(BigRows), d(BigProjBytes)),
        subop(SubOp::Shuffle, d(SmallRows), d(SmallProjBytes)),
        subop(SubOp::Scan, d(BigRows), d(BigProjBytes)),
        subop(SubOp::Scan, d(SmallRows), d(SmallProjBytes)),
        subop(SubOp::RecMerge, d(OutRows), d(OutRowBytes)),
        subop(SubOp::WriteDfs, d(OutRows), d(OutRowBytes)),
    ]
}

/// The Fig. 6 broadcast-join formula:
/// `rD·|S| + b·|S| + NumTaskWaves·(rL·|S| + hI·|S| + rL·|Block(R)| +
/// hP·|Block(R)| + wD·|TaskOutput|)`.
fn broadcast_join(name: &str, reload: SubOp) -> CostFormula {
    CostFormula {
        name: name.to_string(),
        stages: 1,
        serial: vec![
            subop(SubOp::ReadDfs, d(SmallRows), d(SmallRowBytes)),
            subop(SubOp::Broadcast, d(SmallRows), d(SmallRowBytes)),
        ],
        parallel: vec![
            subop(reload, small_times_big_blocks(), d(SmallRowBytes)),
            hash_build(
                small_times_big_blocks(),
                d(SmallRowBytes),
                small_table_bytes(),
            ),
            subop(SubOp::ReadLocal, d(BigRows), d(BigRowBytes)),
            subop(SubOp::HashProbe, d(BigRows), d(BigRowBytes)),
            subop(SubOp::WriteDfs, d(OutRows), d(OutRowBytes)),
        ],
        tasks: Some(Qty::blocks(BigRows, BigRowBytes)),
    }
}

/// The formula for one join algorithm (expert knowledge per engine).
pub fn join_formula(algo: JoinAlgorithm) -> CostFormula {
    match algo {
        JoinAlgorithm::HiveShuffleJoin => CostFormula {
            name: "Shuffle Join".into(),
            stages: 2,
            serial: vec![],
            parallel: shuffle_sort_merge_terms(),
            tasks: Some(both_side_tasks()),
        },
        JoinAlgorithm::HiveSkewJoin => CostFormula {
            name: "Skew Join".into(),
            stages: 2,
            serial: vec![
                subop(SubOp::RecMerge, d(HeavyKeyRows), d(OutRowBytes)),
                subop(SubOp::Sort, d(HeavyKeyRows), d(BigProjBytes)),
            ],
            parallel: shuffle_sort_merge_terms(),
            tasks: Some(both_side_tasks()),
        },
        JoinAlgorithm::HiveBroadcastJoin => broadcast_join("Broadcast Join", SubOp::ReadLocal),
        JoinAlgorithm::HiveBucketMapJoin => CostFormula {
            name: "Bucket Map Join".into(),
            stages: 1,
            serial: vec![],
            parallel: vec![
                subop(SubOp::ReadLocal, d(SmallRows), d(SmallRowBytes)),
                hash_build(
                    d(SmallRows),
                    d(SmallRowBytes),
                    small_table_bytes().div(Qty::blocks(BigRows, BigRowBytes)),
                ),
                subop(SubOp::ReadLocal, d(BigRows), d(BigRowBytes)),
                subop(SubOp::HashProbe, d(BigRows), d(BigRowBytes)),
                subop(SubOp::WriteDfs, d(OutRows), d(OutRowBytes)),
            ],
            tasks: Some(Qty::blocks(BigRows, BigRowBytes)),
        },
        JoinAlgorithm::HiveSortMergeBucketJoin => CostFormula {
            name: "Sort Merge Bucket Join".into(),
            stages: 1,
            serial: vec![],
            parallel: vec![
                subop(SubOp::ReadLocal, d(BigRows), d(BigRowBytes)),
                subop(SubOp::ReadLocal, d(SmallRows), d(SmallRowBytes)),
                subop(SubOp::Scan, d(BigRows), d(BigProjBytes)),
                subop(SubOp::Scan, d(SmallRows), d(SmallProjBytes)),
                subop(SubOp::RecMerge, d(OutRows), d(OutRowBytes)),
                subop(SubOp::WriteDfs, d(OutRows), d(OutRowBytes)),
            ],
            tasks: Some(Qty::blocks(BigRows, BigRowBytes)),
        },
        JoinAlgorithm::SparkBroadcastHashJoin => broadcast_join("Broadcast Hash Join", SubOp::Scan),
        JoinAlgorithm::SparkShuffleHashJoin => CostFormula {
            name: "Shuffle Hash Join".into(),
            stages: 2,
            serial: vec![],
            parallel: vec![
                subop(SubOp::ReadDfs, d(BigRows), d(BigRowBytes)),
                subop(SubOp::ReadDfs, d(SmallRows), d(SmallRowBytes)),
                subop(SubOp::Scan, d(BigRows), d(BigRowBytes)),
                subop(SubOp::Scan, d(SmallRows), d(SmallRowBytes)),
                subop(SubOp::Shuffle, d(BigRows), d(BigProjBytes)),
                subop(SubOp::Shuffle, d(SmallRows), d(SmallProjBytes)),
                hash_build(
                    d(SmallRows),
                    d(SmallProjBytes),
                    d(SmallRows).mul(d(SmallProjBytes)).div(d(Cores)),
                ),
                subop(SubOp::HashProbe, d(BigRows), d(BigProjBytes)),
                subop(SubOp::RecMerge, d(OutRows), d(OutRowBytes)),
                subop(SubOp::WriteDfs, d(OutRows), d(OutRowBytes)),
            ],
            tasks: Some(both_side_tasks()),
        },
        JoinAlgorithm::SparkSortMergeJoin => CostFormula {
            name: "SortMerge Join".into(),
            stages: 2,
            serial: vec![],
            parallel: shuffle_sort_merge_terms(),
            tasks: Some(both_side_tasks()),
        },
        JoinAlgorithm::SparkBroadcastNestedLoopJoin => CostFormula {
            name: "Broadcast NestedLoop Join".into(),
            stages: 1,
            serial: vec![
                subop(SubOp::ReadDfs, d(SmallRows), d(SmallRowBytes)),
                subop(SubOp::Broadcast, d(SmallRows), d(SmallRowBytes)),
            ],
            parallel: vec![
                subop(SubOp::ReadLocal, d(BigRows), d(BigRowBytes)),
                subop(SubOp::Scan, d(BigRows).mul(d(SmallRows)), d(SmallProjBytes)),
                subop(SubOp::WriteDfs, d(OutRows), d(OutRowBytes)),
            ],
            tasks: Some(Qty::blocks(BigRows, BigRowBytes)),
        },
        JoinAlgorithm::SparkCartesianProductJoin => CostFormula {
            name: "Cartesian Product Join".into(),
            stages: 1,
            serial: vec![],
            parallel: vec![
                subop(SubOp::Shuffle, d(BigRows), d(BigProjBytes)),
                subop(SubOp::Shuffle, d(SmallRows), d(SmallProjBytes)),
                subop(SubOp::Scan, d(BigRows).mul(d(SmallRows)), d(SmallProjBytes)),
                subop(SubOp::WriteDfs, d(OutRows), d(OutRowBytes)),
            ],
            tasks: Some(both_side_tasks()),
        },
        JoinAlgorithm::RdbmsHashJoin => CostFormula {
            name: "Hash Join".into(),
            stages: 1,
            serial: vec![],
            parallel: vec![
                subop(SubOp::ReadLocal, d(BigRows), d(BigRowBytes)),
                subop(SubOp::ReadLocal, d(SmallRows), d(SmallRowBytes)),
                hash_build(d(SmallRows), d(SmallRowBytes), small_table_bytes()),
                subop(SubOp::HashProbe, d(BigRows), d(BigRowBytes)),
                subop(SubOp::RecMerge, d(OutRows), d(OutRowBytes)),
                subop(SubOp::WriteLocal, d(OutRows), d(OutRowBytes)),
            ],
            tasks: None,
        },
        JoinAlgorithm::RdbmsSortMergeJoin => CostFormula {
            name: "Sort-Merge Join".into(),
            stages: 1,
            serial: vec![],
            parallel: vec![
                subop(SubOp::ReadLocal, d(BigRows), d(BigRowBytes)),
                subop(SubOp::ReadLocal, d(SmallRows), d(SmallRowBytes)),
                subop(SubOp::Sort, d(BigRows), d(BigProjBytes)),
                subop(SubOp::Sort, d(SmallRows), d(SmallProjBytes)),
                subop(SubOp::RecMerge, d(OutRows), d(OutRowBytes)),
                subop(SubOp::WriteLocal, d(OutRows), d(OutRowBytes)),
            ],
            tasks: None,
        },
        JoinAlgorithm::RdbmsNestedLoopJoin => CostFormula {
            name: "Nested-Loop Join".into(),
            stages: 1,
            serial: vec![],
            parallel: vec![
                subop(SubOp::ReadLocal, d(BigRows), d(BigRowBytes)),
                subop(SubOp::ReadLocal, d(SmallRows), d(SmallRowBytes)),
                subop(SubOp::Scan, d(BigRows).mul(d(SmallRows)), d(SmallProjBytes)),
                subop(SubOp::WriteLocal, d(OutRows), d(OutRowBytes)),
            ],
            tasks: None,
        },
    }
}

/// The join algorithms an engine family offers (§4's two lists plus the
/// RDBMS menu).
pub fn algorithms_for(kind: SystemKind) -> Vec<JoinAlgorithm> {
    match kind {
        SystemKind::Hive => vec![
            JoinAlgorithm::HiveShuffleJoin,
            JoinAlgorithm::HiveBroadcastJoin,
            JoinAlgorithm::HiveBucketMapJoin,
            JoinAlgorithm::HiveSortMergeBucketJoin,
            JoinAlgorithm::HiveSkewJoin,
        ],
        SystemKind::Spark => vec![
            JoinAlgorithm::SparkBroadcastHashJoin,
            JoinAlgorithm::SparkShuffleHashJoin,
            JoinAlgorithm::SparkSortMergeJoin,
            JoinAlgorithm::SparkBroadcastNestedLoopJoin,
            JoinAlgorithm::SparkCartesianProductJoin,
        ],
        SystemKind::Rdbms | SystemKind::Teradata => vec![
            JoinAlgorithm::RdbmsHashJoin,
            JoinAlgorithm::RdbmsSortMergeJoin,
            JoinAlgorithm::RdbmsNestedLoopJoin,
        ],
    }
}

/// Helper: partial aggregation output rows `min(in, groups × map_tasks)`.
fn partial_rows() -> Qty {
    d(InRows).min(d(Groups).mul(Qty::blocks(InRows, InRowBytes)))
}

/// Aggregation formula — hash variant (map-side partial aggregation,
/// shuffle, reduce merge).
pub fn agg_hash_formula(distributed: bool) -> CostFormula {
    if !distributed {
        return CostFormula {
            name: "Hash Aggregate (single-node)".into(),
            stages: 1,
            serial: vec![],
            parallel: vec![
                subop(SubOp::ReadLocal, d(InRows), d(InRowBytes)),
                subop(SubOp::HashProbe, d(InRows), d(InRowBytes)),
                subop(SubOp::Scan, d(InRows).mul(d(NAggs)), d(InRowBytes)),
                hash_build(d(Groups), d(OutRowBytes), d(Groups).mul(d(OutRowBytes))),
                subop(SubOp::WriteLocal, d(Groups), d(OutRowBytes)),
            ],
            tasks: None,
        };
    }
    CostFormula {
        name: "Hash Aggregate".into(),
        stages: 2,
        serial: vec![],
        parallel: vec![
            subop(SubOp::ReadDfs, d(InRows), d(InRowBytes)),
            subop(SubOp::Scan, d(InRows), d(InRowBytes)),
            subop(SubOp::HashProbe, d(InRows), d(InRowBytes)),
            subop(SubOp::Scan, d(InRows).mul(d(NAggs)), d(InRowBytes)),
            hash_build(
                partial_rows(),
                d(OutRowBytes),
                d(Groups).mul(d(OutRowBytes)),
            ),
            subop(SubOp::Shuffle, partial_rows(), d(OutRowBytes)),
            subop(
                SubOp::RecMerge,
                partial_rows().sub(d(Groups)).max(Qty::num(0.0)),
                d(OutRowBytes),
            ),
            subop(SubOp::Scan, partial_rows(), d(OutRowBytes)),
            subop(SubOp::WriteDfs, d(Groups), d(OutRowBytes)),
        ],
        tasks: None,
    }
}

/// Aggregation formula — sort variant (chosen when the hash table would
/// spill badly).
pub fn agg_sort_formula(distributed: bool) -> CostFormula {
    if !distributed {
        return CostFormula {
            name: "Sort Aggregate (single-node)".into(),
            stages: 1,
            serial: vec![],
            parallel: vec![
                subop(SubOp::ReadLocal, d(InRows), d(InRowBytes)),
                subop(SubOp::Sort, d(InRows), d(InRowBytes)),
                subop(SubOp::Scan, d(InRows).mul(d(NAggs)), d(InRowBytes)),
                subop(SubOp::WriteLocal, d(Groups), d(OutRowBytes)),
            ],
            tasks: None,
        };
    }
    CostFormula {
        name: "Sort Aggregate".into(),
        stages: 2,
        serial: vec![],
        parallel: vec![
            subop(SubOp::ReadDfs, d(InRows), d(InRowBytes)),
            subop(SubOp::Scan, d(InRows), d(InRowBytes)),
            subop(SubOp::Sort, d(InRows), d(InRowBytes)),
            subop(SubOp::Scan, d(InRows).mul(d(NAggs)), d(InRowBytes)),
            subop(SubOp::Shuffle, partial_rows(), d(OutRowBytes)),
            subop(
                SubOp::RecMerge,
                partial_rows().sub(d(Groups)).max(Qty::num(0.0)),
                d(OutRowBytes),
            ),
            subop(SubOp::Scan, partial_rows(), d(OutRowBytes)),
            subop(SubOp::WriteDfs, d(Groups), d(OutRowBytes)),
        ],
        tasks: None,
    }
}

/// `ORDER BY` formula: re-read the intermediate result, sort it, write
/// it back.
pub fn sort_formula(distributed: bool) -> CostFormula {
    let write = if distributed {
        SubOp::WriteDfs
    } else {
        SubOp::WriteLocal
    };
    CostFormula {
        name: "Order By".into(),
        stages: 1,
        serial: vec![],
        parallel: vec![
            subop(SubOp::ReadLocal, d(InRows), d(InRowBytes)),
            subop(SubOp::Sort, d(InRows), d(InRowBytes)),
            subop(write, d(InRows), d(InRowBytes)),
        ],
        tasks: Some(Qty::blocks(InRows, InRowBytes)),
    }
}

/// Scan/filter/project formula.
pub fn scan_formula(distributed: bool) -> CostFormula {
    let (read, write) = if distributed {
        (SubOp::ReadDfs, SubOp::WriteDfs)
    } else {
        (SubOp::ReadLocal, SubOp::WriteLocal)
    };
    CostFormula {
        name: "Scan".into(),
        stages: 1,
        serial: vec![],
        parallel: vec![
            subop(read, d(InRows), d(InRowBytes)),
            subop(SubOp::Scan, d(InRows), d(InRowBytes)),
            subop(write, d(OutRows), d(OutRowBytes)),
        ],
        tasks: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_has_a_formula() {
        for kind in [SystemKind::Hive, SystemKind::Spark, SystemKind::Rdbms] {
            for algo in algorithms_for(kind) {
                let f = join_formula(algo);
                assert!(!f.parallel.is_empty() || !f.serial.is_empty(), "{algo}");
                assert!(f.stages >= 1, "{algo}");
            }
        }
    }

    #[test]
    fn hive_menu_matches_paper_list() {
        let names: Vec<String> = algorithms_for(SystemKind::Hive)
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "Shuffle Join",
                "Broadcast Join",
                "Bucket Map Join",
                "Sort Merge Bucket Join",
                "Skew Join"
            ]
        );
    }

    #[test]
    fn fig6_broadcast_formula_shape() {
        let f = join_formula(JoinAlgorithm::HiveBroadcastJoin);
        // Performed once: rD·|S| + b·|S|.
        assert_eq!(f.serial.len(), 2);
        // Per task: rL(S), hI(S), rL(Block R), hP(Block R), wD(TaskOutput).
        assert_eq!(f.parallel.len(), 5);
        assert_eq!(f.stages, 1);
    }

    #[test]
    fn formulas_roundtrip_through_json() {
        for algo in algorithms_for(SystemKind::Spark) {
            let f = join_formula(algo);
            let json = serde_json::to_string(&f).unwrap();
            let back: CostFormula = serde_json::from_str(&json).unwrap();
            assert_eq!(f, back);
        }
    }

    #[test]
    fn agg_formulas_exist_in_both_variants() {
        assert_eq!(agg_hash_formula(true).stages, 2);
        assert_eq!(agg_hash_formula(false).stages, 1);
        assert_eq!(agg_sort_formula(true).stages, 2);
        assert!(scan_formula(true).parallel.len() == 3);
    }
}
