//! Sub-operator costing (§4): open-box remotes.
//!
//! [`SubOpCosting`] bundles everything the costing profile stores for a
//! sub-op-costed system: the fitted per-sub-op models, the per-algorithm
//! cost formulas, the applicability rules, and the choice policy.

pub mod algorithms;
pub mod choice;
pub mod formula;
pub mod measurement;
pub mod models;
pub mod rules;
pub mod subop;

pub use choice::ChoicePolicy;
pub use formula::{CostFormula, FormulaContext};
pub use measurement::{ProbeObservation, SubOpMeasurement};
pub use models::{SubOpModelError, SubOpModels};
pub use rules::{applicable_algorithms, ApplicabilityRule, RuleInputs};
pub use subop::{SubOp, SubOpCategory};

use crate::estimator::{CostEstimate, EstimateSource, OperatorKind};
use crate::observability::TraceCtx;
use catalog::SystemKind;
use remote_sim::exec::{AggInfo, JoinInfo};
use remote_sim::physical::JoinAlgorithm;
use serde::{Deserialize, Serialize};

/// A complete sub-op costing unit for one remote system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubOpCosting {
    /// Engine family (selects formulas and rules).
    pub kind: SystemKind,
    /// Fitted per-sub-op models.
    pub models: SubOpModels,
    /// The applicability rules.
    pub rules: Vec<ApplicabilityRule>,
    /// Resolution policy when several algorithms stay applicable.
    pub policy: ChoicePolicy,
    /// DFS block size (expert knowledge; drives the `blocks(X)` terms).
    pub block_bytes: f64,
    /// Whether the engine is distributed (MR/Spark) or single-node.
    pub distributed: bool,
    /// Hash-aggregation spill threshold multiplier (the engine switches
    /// to sort aggregation past `factor × task budget`).
    pub agg_sort_switch_factor: f64,
}

impl SubOpCosting {
    /// Builds the costing unit for an engine family with default expert
    /// settings (32 MB Hive / 10 MB Spark broadcast thresholds).
    pub fn for_system(kind: SystemKind, models: SubOpModels, block_bytes: f64) -> Self {
        let broadcast_threshold = match kind {
            SystemKind::Hive => 32.0 * 1024.0 * 1024.0,
            SystemKind::Spark => 10.0 * 1024.0 * 1024.0,
            _ => f64::INFINITY,
        };
        let policy = match kind {
            // Paper: in-house comparable applies to RDBMS remotes.
            SystemKind::Rdbms | SystemKind::Teradata => ChoicePolicy::InHouseComparable,
            _ => ChoicePolicy::Average,
        };
        // The RDBMS hash-memory ceiling: the standard budget convention is
        // node_memory × 0.10 / cores, and the engine hash-joins while the
        // build side fits half of node memory — invert the convention.
        let rdbms_hash_memory = models.task_hash_budget_bytes * models.cores / 0.10 * 0.5;
        SubOpCosting {
            rules: rules::default_rules(kind, broadcast_threshold, rdbms_hash_memory),
            kind,
            models,
            policy,
            block_bytes,
            distributed: !matches!(kind, SystemKind::Rdbms | SystemKind::Teradata),
            agg_sort_switch_factor: 4.0,
        }
    }

    /// Builds the formula evaluation context for a join.
    fn join_ctx(&self, j: &JoinInfo) -> FormulaContext {
        FormulaContext {
            big_rows: j.big.rows,
            big_row_bytes: j.big.row_bytes,
            big_proj_bytes: j.big.proj_bytes,
            small_rows: j.small.rows,
            small_row_bytes: j.small.row_bytes,
            small_proj_bytes: j.small.proj_bytes,
            out_rows: j.out_rows,
            out_row_bytes: j.out_bytes,
            heavy_key_rows: j.heavy_key_rows,
            cores: self.models.cores,
            nodes: self.models.nodes,
            block_bytes: self.block_bytes,
            ..Default::default()
        }
    }

    /// Cost of a join under one specific algorithm (seconds).
    pub fn estimate_join_with(&self, algo: JoinAlgorithm, j: &JoinInfo) -> f64 {
        algorithms::join_formula(algo).evaluate(&self.models, &self.join_ctx(j))
    }

    /// Full §4 join estimation: apply the applicability rules, cost every
    /// surviving algorithm, resolve via the policy.
    pub fn estimate_join(&self, j: &JoinInfo, inputs: &RuleInputs) -> CostEstimate {
        let menu = algorithms::algorithms_for(self.kind);
        let surviving = applicable_algorithms(&menu, &self.rules, inputs);
        let costs: Vec<f64> = surviving
            .iter()
            .map(|&a| self.estimate_join_with(a, j))
            .collect();
        if surviving.len() == 1 {
            CostEstimate::new(
                costs[0],
                EstimateSource::SubOpFormula {
                    algorithm: surviving[0],
                },
            )
        } else {
            CostEstimate::new(
                self.policy.resolve(&costs),
                EstimateSource::SubOpPolicy {
                    policy: self.policy.name().to_string(),
                    candidates: surviving.len(),
                },
            )
        }
    }

    /// [`SubOpCosting::estimate_join`] with the decision trail: when
    /// several algorithms survive the rules, the policy resolution is
    /// routed through [`ChoicePolicy::resolve_traced`] so the candidate
    /// costs and the chosen value land on the tracer.
    pub fn estimate_join_traced(
        &self,
        j: &JoinInfo,
        inputs: &RuleInputs,
        ctx: &TraceCtx<'_>,
    ) -> CostEstimate {
        let menu = algorithms::algorithms_for(self.kind);
        let surviving = applicable_algorithms(&menu, &self.rules, inputs);
        let costs: Vec<f64> = surviving
            .iter()
            .map(|&a| self.estimate_join_with(a, j))
            .collect();
        if surviving.len() == 1 {
            CostEstimate::new(
                costs[0],
                EstimateSource::SubOpFormula {
                    algorithm: surviving[0],
                },
            )
        } else {
            CostEstimate::new(
                self.policy.resolve_traced(&costs, OperatorKind::Join, ctx),
                EstimateSource::SubOpPolicy {
                    policy: self.policy.name().to_string(),
                    candidates: surviving.len(),
                },
            )
        }
    }

    /// The algorithms that survive the rules (for reports).
    pub fn surviving_algorithms(&self, inputs: &RuleInputs) -> Vec<JoinAlgorithm> {
        applicable_algorithms(&algorithms::algorithms_for(self.kind), &self.rules, inputs)
    }

    /// Aggregation estimation: the expert predicts hash vs sort from the
    /// group volume against the task budget (the same observable rule the
    /// engine itself uses).
    pub fn estimate_agg(&self, a: &AggInfo) -> CostEstimate {
        let ctx = FormulaContext {
            in_rows: a.in_rows,
            in_row_bytes: a.in_bytes,
            groups: a.groups,
            out_row_bytes: a.out_bytes,
            n_aggs: a.n_aggs as f64,
            cores: self.models.cores,
            nodes: self.models.nodes,
            block_bytes: self.block_bytes,
            ..Default::default()
        };
        let spills = a.groups * a.out_bytes
            > self.agg_sort_switch_factor * self.models.task_hash_budget_bytes;
        let formula = if spills {
            algorithms::agg_sort_formula(self.distributed)
        } else {
            algorithms::agg_hash_formula(self.distributed)
        };
        CostEstimate::new(
            formula.evaluate(&self.models, &ctx),
            EstimateSource::SubOpAggregation,
        )
    }

    /// `ORDER BY` estimation over an intermediate result.
    pub fn estimate_sort(&self, rows: f64, row_bytes: f64) -> CostEstimate {
        let ctx = FormulaContext {
            in_rows: rows,
            in_row_bytes: row_bytes,
            cores: self.models.cores,
            nodes: self.models.nodes,
            block_bytes: self.block_bytes,
            ..Default::default()
        };
        CostEstimate::new(
            algorithms::sort_formula(self.distributed).evaluate(&self.models, &ctx),
            EstimateSource::SubOpSort,
        )
    }

    /// Scan estimation.
    pub fn estimate_scan(
        &self,
        in_rows: f64,
        in_bytes: f64,
        out_rows: f64,
        out_bytes: f64,
    ) -> CostEstimate {
        let ctx = FormulaContext {
            in_rows,
            in_row_bytes: in_bytes,
            out_rows,
            out_row_bytes: out_bytes,
            cores: self.models.cores,
            nodes: self.models.nodes,
            block_bytes: self.block_bytes,
            ..Default::default()
        };
        CostEstimate::new(
            algorithms::scan_formula(self.distributed).evaluate(&self.models, &ctx),
            EstimateSource::SubOpScan,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remote_sim::exec::SideInfo;
    use remote_sim::ClusterEngine;
    use workload::probe_suite;

    fn costing() -> SubOpCosting {
        let mut e = ClusterEngine::paper_hive("hive", 5).without_noise();
        let m = SubOpMeasurement::run(&mut e, &probe_suite());
        let models = SubOpModels::fit(&m, 8.0 * 1024.0 * 1024.0 * 1024.0 * 0.10 / 2.0).unwrap();
        SubOpCosting::for_system(SystemKind::Hive, models, 32.0 * 1024.0 * 1024.0)
    }

    fn join_info() -> JoinInfo {
        JoinInfo {
            big: SideInfo {
                rows: 1e6,
                row_bytes: 250.0,
                proj_bytes: 8.0,
            },
            small: SideInfo {
                rows: 1e5,
                row_bytes: 100.0,
                proj_bytes: 8.0,
            },
            out_rows: 1e5,
            out_bytes: 8.0,
            heavy_key_rows: 1.0,
        }
    }

    fn rule_inputs(j: &JoinInfo) -> RuleInputs {
        RuleInputs {
            has_equi_keys: true,
            big_bucketed: false,
            small_bucketed: false,
            small_total_bytes: j.small.total_bytes(),
            big_total_bytes: j.big.total_bytes(),
            heavy_key_rows: j.heavy_key_rows,
            big_rows: j.big.rows,
        }
    }

    #[test]
    fn join_estimate_is_positive_and_finite() {
        let c = costing();
        let j = join_info();
        let e = c.estimate_join(&j, &rule_inputs(&j));
        assert!(e.secs.is_finite() && e.secs > 0.0, "estimate {}", e.secs);
    }

    #[test]
    fn small_build_side_survivors_include_broadcast() {
        let c = costing();
        let j = join_info(); // small side = 10 MB < 32 MB threshold
        let survivors = c.surviving_algorithms(&rule_inputs(&j));
        assert!(survivors.contains(&JoinAlgorithm::HiveBroadcastJoin));
        assert!(!survivors.contains(&JoinAlgorithm::HiveSortMergeBucketJoin));
    }

    #[test]
    fn estimate_tracks_input_scale() {
        let c = costing();
        let mut big = join_info();
        big.big.rows = 1e7;
        big.out_rows = 1e5;
        let small = join_info();
        let e_small = c.estimate_join(&small, &rule_inputs(&small)).secs;
        let e_big = c.estimate_join(&big, &rule_inputs(&big)).secs;
        assert!(e_big > e_small * 2.0, "small {e_small} big {e_big}");
    }

    #[test]
    fn policy_changes_resolution() {
        let mut c = costing();
        let j = join_info();
        let inputs = rule_inputs(&j);
        c.policy = ChoicePolicy::Worst;
        let worst = c.estimate_join(&j, &inputs).secs;
        c.policy = ChoicePolicy::InHouseComparable;
        let best = c.estimate_join(&j, &inputs).secs;
        assert!(worst >= best);
    }

    #[test]
    fn agg_estimate_switches_formula_on_group_volume() {
        let c = costing();
        let small = AggInfo {
            in_rows: 1e6,
            in_bytes: 250.0,
            groups: 1e3,
            out_bytes: 12.0,
            n_aggs: 1,
        };
        let e1 = c.estimate_agg(&small);
        assert!(e1.secs > 0.0);
        let huge = AggInfo {
            groups: 1e9,
            out_bytes: 100.0,
            ..small
        };
        let e2 = c.estimate_agg(&huge);
        assert!(e2.secs > e1.secs);
    }

    #[test]
    fn scan_estimate_positive() {
        let c = costing();
        let e = c.estimate_scan(1e6, 250.0, 1e5, 8.0);
        assert!(e.secs > 0.0);
        assert_eq!(e.source, EstimateSource::SubOpScan);
    }

    #[test]
    fn traced_join_estimate_matches_untraced_and_reports_choice() {
        use catalog::SystemId;
        use std::sync::Arc;
        use telemetry::{Event, Tracer, VecSubscriber};

        let c = costing();
        let j = join_info();
        let inputs = rule_inputs(&j);
        let sub = Arc::new(VecSubscriber::new());
        let tracer = Tracer::new(sub.clone());
        let system = SystemId::new("hive");
        let ctx = TraceCtx::new(&tracer, &system);
        let traced = c.estimate_join_traced(&j, &inputs, &ctx);
        let plain = c.estimate_join(&j, &inputs);
        assert_eq!(traced.secs, plain.secs);
        assert_eq!(traced.source, plain.source);
        let events = sub.snapshot();
        match &plain.source {
            EstimateSource::SubOpPolicy { candidates, .. } => {
                assert_eq!(events.len(), 1);
                match &events[0] {
                    Event::SubOpAlgorithmChosen {
                        candidates: costs,
                        resolved,
                        ..
                    } => {
                        assert_eq!(costs.len(), *candidates);
                        assert_eq!(*resolved, traced.secs);
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            _ => assert!(events.is_empty()),
        }
    }

    #[test]
    fn costing_profile_serializes() {
        let c = costing();
        let json = serde_json::to_string(&c).unwrap();
        let back: SubOpCosting = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
