//! The sub-operator inventory of Fig. 5.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Fig. 5's sub-operators with their paper symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubOp {
    /// `rD` — reading a record from the distributed file system.
    ReadDfs,
    /// `wD` — writing a record to the distributed file system.
    WriteDfs,
    /// `rL` — reading a record from the local file system.
    ReadLocal,
    /// `wL` — writing a record to the local file system.
    WriteLocal,
    /// `f` — shuffling a record between machines.
    Shuffle,
    /// `b` — broadcasting a record to all machines.
    Broadcast,
    /// `o` — main-memory sort cost per record.
    Sort,
    /// `c` — main-memory scan cost per record.
    Scan,
    /// `hI` — inserting a record into a hash table.
    HashBuild,
    /// `hP` — probing a hash table.
    HashProbe,
    /// `m` — merging two records.
    RecMerge,
}

/// Fig. 5 splits the sub-ops into two tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubOpCategory {
    /// "Kind of mandatory to learn, otherwise it would not make sense for
    /// the corresponding remote system to be costed using this approach."
    Basic,
    /// "Good to have, but missing them is not a hinder" — defaults exist.
    Specific,
}

impl SubOp {
    /// All sub-ops in Fig. 5 order.
    pub const ALL: [SubOp; 11] = [
        SubOp::ReadDfs,
        SubOp::WriteDfs,
        SubOp::ReadLocal,
        SubOp::WriteLocal,
        SubOp::Shuffle,
        SubOp::Broadcast,
        SubOp::Sort,
        SubOp::Scan,
        SubOp::HashBuild,
        SubOp::HashProbe,
        SubOp::RecMerge,
    ];

    /// The paper's symbol (`rD`, `wD`, …).
    pub fn symbol(self) -> &'static str {
        match self {
            SubOp::ReadDfs => "rD",
            SubOp::WriteDfs => "wD",
            SubOp::ReadLocal => "rL",
            SubOp::WriteLocal => "wL",
            SubOp::Shuffle => "f",
            SubOp::Broadcast => "b",
            SubOp::Sort => "o",
            SubOp::Scan => "c",
            SubOp::HashBuild => "hI",
            SubOp::HashProbe => "hP",
            SubOp::RecMerge => "m",
        }
    }

    /// Basic vs Specific per Fig. 5.
    pub fn category(self) -> SubOpCategory {
        match self {
            SubOp::ReadDfs
            | SubOp::WriteDfs
            | SubOp::ReadLocal
            | SubOp::WriteLocal
            | SubOp::Shuffle
            | SubOp::Broadcast => SubOpCategory::Basic,
            SubOp::Sort | SubOp::Scan | SubOp::HashBuild | SubOp::HashProbe | SubOp::RecMerge => {
                SubOpCategory::Specific
            }
        }
    }
}

impl fmt::Display for SubOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SubOp::ReadDfs => "Read (DFS)",
            SubOp::WriteDfs => "Write (DFS)",
            SubOp::ReadLocal => "Read (Local)",
            SubOp::WriteLocal => "Write (Local)",
            SubOp::Shuffle => "Shuffle",
            SubOp::Broadcast => "Broadcast",
            SubOp::Sort => "Sort",
            SubOp::Scan => "Scan",
            SubOp::HashBuild => "HashTable Build",
            SubOp::HashProbe => "HashTable Probe",
            SubOp::RecMerge => "Rec Merge",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_subops_with_unique_symbols() {
        let symbols: std::collections::HashSet<&str> =
            SubOp::ALL.iter().map(|s| s.symbol()).collect();
        assert_eq!(symbols.len(), 11);
    }

    #[test]
    fn categories_match_fig5() {
        assert_eq!(SubOp::ReadDfs.category(), SubOpCategory::Basic);
        assert_eq!(SubOp::Broadcast.category(), SubOpCategory::Basic);
        assert_eq!(SubOp::HashBuild.category(), SubOpCategory::Specific);
        assert_eq!(SubOp::RecMerge.category(), SubOpCategory::Specific);
        let basic = SubOp::ALL
            .iter()
            .filter(|s| s.category() == SubOpCategory::Basic)
            .count();
        assert_eq!(basic, 6);
    }

    #[test]
    fn display_names_match_fig5() {
        assert_eq!(SubOp::ReadDfs.to_string(), "Read (DFS)");
        assert_eq!(SubOp::RecMerge.to_string(), "Rec Merge");
    }
}
