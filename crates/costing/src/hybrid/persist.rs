//! Costing-profile persistence.
//!
//! §2: the remote-system profile "is constructed during the registration
//! step, and can be modified afterwards as needed. We will use the
//! profile extensively to store all metadata information related to the
//! cost estimation module." Profiles therefore need a durable,
//! human-inspectable representation — JSON on disk — so a trained
//! ecosystem survives restarts without re-running multi-hour training
//! campaigns.

use crate::epoch::{Epoch, ModelSnapshot, SnapshotLineage};
use crate::estimator::OperatorKind;
use crate::hybrid::profile::CostingProfile;
use crate::logical_op::flow::LogicalOpCosting;
use catalog::SystemId;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Errors from profile persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// (De)serialisation failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Writes a profile as pretty-printed JSON. Parent directories are
/// created as needed; the write is atomic (temp file + rename) so a crash
/// cannot leave a torn profile behind.
pub fn save_profile(profile: &CostingProfile, path: &Path) -> Result<(), PersistError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(profile)?;
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, json)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a profile back.
pub fn load_profile(path: &Path) -> Result<CostingProfile, PersistError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// Writes every profile of a manager under `dir` as
/// `<system-id>.profile.json`.
pub fn save_manager(
    manager: &crate::hybrid::manager::HybridCostManager,
    dir: &Path,
) -> Result<usize, PersistError> {
    let mut n = 0;
    for id in manager.systems() {
        // `systems()` and `profile()` read the same map, so the lookup
        // cannot miss; skipping a hypothetical miss beats panicking.
        if let Some(profile) = manager.profile(id) {
            save_profile(profile, &dir.join(format!("{id}.profile.json")))?;
            n += 1;
        }
    }
    Ok(n)
}

/// Rebuilds a manager from every `*.profile.json` under `dir`.
pub fn load_manager(dir: &Path) -> Result<crate::hybrid::manager::HybridCostManager, PersistError> {
    let mut manager = crate::hybrid::manager::HybridCostManager::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".profile.json"))
        {
            manager.register(load_profile(&path)?);
        }
    }
    Ok(manager)
}

/// Serialized form of one registered model in a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotModelDto {
    system: SystemId,
    op: OperatorKind,
    flow: LogicalOpCosting,
}

/// Serialized form of an epoch-stamped [`ModelSnapshot`], carrying its
/// full lineage so a reloaded model state keeps its history (and can be
/// used as a rollback target). Maps are flattened to entry lists because
/// the snapshot keys are composite, not strings.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotDto {
    epoch: u64,
    #[serde(default)]
    parent: Option<u64>,
    label: String,
    #[serde(default)]
    entries_trained: usize,
    #[serde(default)]
    models_retrained: usize,
    #[serde(default)]
    rmse_pct_after: Option<f64>,
    #[serde(default)]
    restores: Option<u64>,
    models: Vec<SnapshotModelDto>,
    profiles: Vec<CostingProfile>,
}

impl SnapshotDto {
    fn from_snapshot(snapshot: &ModelSnapshot) -> Self {
        let lineage = snapshot.lineage();
        let mut models: Vec<SnapshotModelDto> = snapshot
            .models()
            .map(|((system, op), flow)| SnapshotModelDto {
                system: system.clone(),
                op: *op,
                flow: LogicalOpCosting::clone(flow),
            })
            .collect();
        models.sort_by(|a, b| (&a.system, a.op).cmp(&(&b.system, b.op)));
        SnapshotDto {
            epoch: snapshot.epoch().get(),
            parent: lineage.parent,
            label: lineage.label.clone(),
            entries_trained: lineage.entries_trained,
            models_retrained: lineage.models_retrained,
            rmse_pct_after: lineage.rmse_pct_after,
            restores: lineage.restores,
            models,
            profiles: snapshot
                .profiles()
                .map(|(_, p)| CostingProfile::clone(p))
                .collect(),
        }
    }

    fn into_snapshot(self) -> ModelSnapshot {
        ModelSnapshot::from_parts(
            Epoch::new(self.epoch),
            SnapshotLineage {
                parent: self.parent,
                label: self.label,
                entries_trained: self.entries_trained,
                models_retrained: self.models_retrained,
                rmse_pct_after: self.rmse_pct_after,
                restores: self.restores,
            },
            self.models
                .into_iter()
                .map(|m| ((m.system, m.op), m.flow))
                .collect(),
            self.profiles,
        )
    }
}

/// Writes an epoch-stamped model snapshot (with lineage) as
/// pretty-printed JSON, atomically, creating parent directories as
/// needed. A snapshot saved here can later be reloaded and published as
/// a rollback target via
/// [`crate::service::EstimatorService::rollback_to`].
pub fn save_snapshot(snapshot: &ModelSnapshot, path: &Path) -> Result<(), PersistError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(&SnapshotDto::from_snapshot(snapshot))?;
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, json)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a persisted model snapshot back, preserving its epoch and
/// lineage.
pub fn load_snapshot(path: &Path) -> Result<ModelSnapshot, PersistError> {
    let json = fs::read_to_string(path)?;
    let dto: SnapshotDto = serde_json::from_str(&json)?;
    Ok(dto.into_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::OperatorKind;
    use crate::hybrid::profile::{CostingApproach, LogicalOpSuite};
    use crate::logical_op::flow::LogicalOpCosting;
    use crate::logical_op::model::{FitConfig, LogicalOpModel};
    use catalog::{SystemId, SystemKind};
    use neuro::Dataset;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("intellisphere-test-{}-{name}", std::process::id()))
    }

    fn sample_profile() -> CostingProfile {
        let mut inputs = vec![];
        let mut targets = vec![];
        for i in 0..40 {
            let rows = (i + 1) as f64 * 1e5;
            inputs.push(vec![rows, 100.0, rows / 5.0, 12.0]);
            targets.push(1.0 + rows * 1e-6);
        }
        let (model, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["rows", "size", "groups", "width"],
            &Dataset::new(inputs, targets),
            &FitConfig::fast(),
        );
        CostingProfile::new(
            SystemId::new("hive-persist"),
            SystemKind::Hive,
            CostingApproach::LogicalOp(LogicalOpSuite {
                join: None,
                aggregation: Some(LogicalOpCosting::new(model)),
            }),
        )
    }

    #[test]
    fn save_and_load_roundtrip_preserves_estimates() {
        let profile = sample_profile();
        let path = tmp_path("roundtrip.json");
        save_profile(&profile, &path).unwrap();
        let mut restored = load_profile(&path).unwrap();
        let mut original = profile.clone();

        // Compare estimates through the logical model directly.
        let x = vec![2e6, 100.0, 4e5, 12.0];
        let (a, b) = match (&mut original.approach, &mut restored.approach) {
            (CostingApproach::LogicalOp(s1), CostingApproach::LogicalOp(s2)) => (
                s1.aggregation.as_mut().unwrap().estimate(&x).secs,
                s2.aggregation.as_mut().unwrap().estimate(&x).secs,
            ),
            _ => unreachable!(),
        };
        assert_eq!(a, b);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn save_creates_parent_directories() {
        let profile = sample_profile();
        let dir = tmp_path("nested-dir");
        let path = dir.join("deep").join("profile.json");
        save_profile(&profile, &path).unwrap();
        assert!(path.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_profile(Path::new("/nonexistent/profile.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_corrupt_file_is_serde_error() {
        let path = tmp_path("corrupt.json");
        fs::write(&path, "{not json").unwrap();
        let err = load_profile(&path).unwrap_err();
        assert!(matches!(err, PersistError::Serde(_)));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn manager_directory_roundtrip() {
        let mut manager = crate::hybrid::manager::HybridCostManager::new();
        let mut p1 = sample_profile();
        p1.system = SystemId::new("hive-a");
        let mut p2 = sample_profile();
        p2.system = SystemId::new("spark-b");
        manager.register(p1);
        manager.register(p2);

        let dir = tmp_path("manager-dir");
        let n = save_manager(&manager, &dir).unwrap();
        assert_eq!(n, 2);
        let restored = load_manager(&dir).unwrap();
        assert_eq!(restored.systems().len(), 2);
        assert!(restored.profile(&SystemId::new("hive-a")).is_some());
        assert!(restored.profile(&SystemId::new("spark-b")).is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_roundtrip_preserves_epoch_lineage_and_enables_rollback() {
        use crate::service::EstimatorService;

        fn flow(slope: f64) -> LogicalOpCosting {
            let mut inputs = vec![];
            let mut targets = vec![];
            for i in 0..40 {
                let rows = (i + 1) as f64 * 1e5;
                inputs.push(vec![rows, 100.0]);
                targets.push(1.0 + rows * slope);
            }
            let (model, _) = LogicalOpModel::fit(
                OperatorKind::Aggregation,
                &["rows", "size"],
                &Dataset::new(inputs, targets),
                &FitConfig::fast(),
            );
            LogicalOpCosting::new(model)
        }

        let svc = EstimatorService::default();
        let sys = SystemId::new("hive-a");
        svc.register(sys.clone(), flow(1e-6));
        let x = [5e5, 100.0];
        let good_est = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        let path = tmp_path("snapshot.json");
        save_snapshot(&svc.snapshot(), &path).unwrap();

        // The live state moves on.
        svc.register(sys.clone(), flow(6e-6));
        let drifted = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_ne!(good_est.secs, drifted.secs);

        // Reload: epoch and lineage survive the roundtrip.
        let restored = load_snapshot(&path).unwrap();
        assert_eq!(restored.epoch().get(), 1);
        assert_eq!(restored.lineage().label, "register");
        assert_eq!(restored.lineage().parent, Some(0));
        assert_eq!(restored.len(), 1);

        // The reloaded snapshot is a valid rollback target.
        let published = svc.rollback_to(&restored);
        assert_eq!(published.lineage().restores, Some(1));
        let back = svc.estimate(&sys, OperatorKind::Aggregation, &x).unwrap();
        assert_eq!(back, good_est);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let profile = sample_profile();
        let path = tmp_path("atomic.json");
        save_profile(&profile, &path).unwrap();
        assert!(!path.with_extension("json.tmp").exists());
        fs::remove_file(&path).ok();
    }
}
