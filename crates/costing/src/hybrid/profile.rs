//! The Costing Profile (CP).
//!
//! Fig. 9: "each remote system has a costing profile (CP) containing all
//! needed details based on its costing model. For example, for the sub-op
//! costing, it includes a list of the sub-ops, a list of the physical
//! algorithms for each logical operator, the costing formula of each
//! algorithm, and the applicability rules … For the logical-op costing,
//! it includes the neural network model for each operator, the metadata
//! information of the training dataset, plus other information."
//!
//! The profile also implements the paper's planned extension ("the hybrid
//! approach is also applicable within a single system … some operators
//! can be trained using the logical-op approach, while other operators
//! such as joins can be trained using the sub-op approach") via
//! per-operator overrides, and the Fig. 9 timed switch
//! (`sub-op costing [0…t1], logical-op costing [t1…]`).

use crate::{
    estimator::{CostEstimate, OperatorKind},
    features::{agg_features, join_features},
    logical_op::{flow::LogicalOpCosting, model::FitConfig, tuning::TuneReport},
    sub_op::{RuleInputs, SubOpCosting},
};
use catalog::{SystemId, SystemKind};
use remote_sim::analyze::QueryAnalysis;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Logical-op models per operator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogicalOpSuite {
    /// The join model (7 dims).
    pub join: Option<LogicalOpCosting>,
    /// The aggregation model (4 dims).
    pub aggregation: Option<LogicalOpCosting>,
}

/// One costing approach, as stored in a profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum CostingApproach {
    /// Sub-operator costing (open box).
    SubOp(SubOpCosting),
    /// Logical-operator costing (black box).
    LogicalOp(LogicalOpSuite),
    /// Fig. 9's system C: one approach until `switch_after_estimates`
    /// cost estimates have been served, then another ("an approximate
    /// sub-op costing can be applied to C … until the more extensive
    /// training for the logical-op costing is performed").
    Timed {
        /// Approach used first.
        before: Box<CostingApproach>,
        /// Approach used after the switch.
        after: Box<CostingApproach>,
        /// Estimate count at which to switch.
        switch_after_estimates: u64,
    },
}

/// Costing failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CostingError {
    /// The query has no costable operator of the requested kind.
    NoOperator(OperatorKind),
    /// Logical-op costing was selected but no model is trained for the
    /// operator.
    ModelMissing(OperatorKind),
    /// No profile registered for the system.
    UnknownSystem(SystemId),
}

impl std::fmt::Display for CostingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostingError::NoOperator(k) => write!(f, "query has no {k} operator"),
            CostingError::ModelMissing(k) => write!(f, "no trained logical-op model for {k}"),
            CostingError::UnknownSystem(s) => write!(f, "no costing profile for system `{s}`"),
        }
    }
}

impl std::error::Error for CostingError {}

/// Per-operator estimates for one query, plus the total.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCost {
    /// Each costed operator with its estimate.
    pub operators: Vec<(OperatorKind, CostEstimate)>,
    /// Sum of operator estimates (seconds).
    pub total_secs: f64,
}

/// A remote system's costing profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostingProfile {
    /// The system this profile costs.
    pub system: SystemId,
    /// Engine family.
    pub kind: SystemKind,
    /// The default approach.
    pub approach: CostingApproach,
    /// Per-operator overrides (the §5 within-one-system extension).
    pub overrides: BTreeMap<OperatorKind, CostingApproach>,
    /// Estimates served so far (drives timed switching).
    pub estimates_made: u64,
}

impl CostingProfile {
    /// Creates a profile with one approach for everything.
    pub fn new(system: SystemId, kind: SystemKind, approach: CostingApproach) -> Self {
        CostingProfile {
            system,
            kind,
            approach,
            overrides: BTreeMap::new(),
            estimates_made: 0,
        }
    }

    /// Sets a per-operator override.
    pub fn with_override(mut self, op: OperatorKind, approach: CostingApproach) -> Self {
        self.overrides.insert(op, approach);
        self
    }

    /// Costs every costable operator in an analysed query.
    pub fn estimate_query(&mut self, analysis: &QueryAnalysis) -> Result<QueryCost, CostingError> {
        let mut operators = Vec::new();
        if analysis.join.is_some() {
            operators.push((
                OperatorKind::Join,
                self.estimate_operator(OperatorKind::Join, analysis)?,
            ));
        }
        if analysis.agg.is_some() {
            operators.push((
                OperatorKind::Aggregation,
                self.estimate_operator(OperatorKind::Aggregation, analysis)?,
            ));
        }
        if operators.is_empty() {
            operators.push((
                OperatorKind::Scan,
                self.estimate_operator(OperatorKind::Scan, analysis)?,
            ));
        }
        if analysis.sort_in.is_some() {
            // Sub-op profiles price the ORDER BY pass explicitly; black-box
            // logical-op profiles have no sort model (their grids measure
            // whole logical operators), so a missing model means the sort
            // is treated as absorbed into the operator estimate rather
            // than failing the query.
            match self.estimate_operator(OperatorKind::Sort, analysis) {
                Ok(est) => operators.push((OperatorKind::Sort, est)),
                Err(CostingError::ModelMissing(OperatorKind::Sort)) => {}
                Err(e) => return Err(e),
            }
        }
        let total_secs = operators.iter().map(|(_, e)| e.secs).sum();
        Ok(QueryCost {
            operators,
            total_secs,
        })
    }

    /// Costs one operator of the query.
    pub fn estimate_operator(
        &mut self,
        op: OperatorKind,
        analysis: &QueryAnalysis,
    ) -> Result<CostEstimate, CostingError> {
        self.estimates_made += 1;
        let n = self.estimates_made;
        // Work around the borrow: overrides and approach are disjoint.
        if let Some(mut chosen) = self.overrides.remove(&op) {
            let result = estimate_with(&mut chosen, op, analysis, n);
            self.overrides.insert(op, chosen);
            result
        } else {
            estimate_with(&mut self.approach, op, analysis, n)
        }
    }

    /// The currently-active logical-op flows, keyed by operator
    /// (overrides shadow the base approach; timed approaches resolve at
    /// the current estimate count, matching where observations land).
    /// Drift monitoring walks these to reach every execution log.
    pub fn logical_flows(&self) -> Vec<(OperatorKind, &LogicalOpCosting)> {
        let mut out = Vec::new();
        for op in [OperatorKind::Join, OperatorKind::Aggregation] {
            let approach = active_ref(
                self.overrides.get(&op).unwrap_or(&self.approach),
                self.estimates_made,
            );
            if let CostingApproach::LogicalOp(suite) = approach {
                let flow = match op {
                    OperatorKind::Join => suite.join.as_ref(),
                    OperatorKind::Aggregation => suite.aggregation.as_ref(),
                    _ => None,
                };
                if let Some(f) = flow {
                    out.push((op, f));
                }
            }
        }
        out
    }

    /// Routes an observed actual execution back into the logical-op
    /// machinery (log + α tuning). Sub-op approaches ignore observations
    /// ("model continuous tuning … less critical because extrapolation is
    /// straightforward", Fig. 8).
    pub fn observe_actual(&mut self, op: OperatorKind, analysis: &QueryAnalysis, actual_secs: f64) {
        let n = self.estimates_made;
        if let Some(mut chosen) = self.overrides.remove(&op) {
            observe_with(&mut chosen, op, analysis, actual_secs, n);
            self.overrides.insert(op, chosen);
        } else {
            observe_with(&mut self.approach, op, analysis, actual_secs, n);
        }
    }

    /// Runs the offline tuning phase over every active logical-op flow
    /// that has pending log entries, returning one report per retrained
    /// operator. Sub-op approaches have nothing to tune.
    pub fn offline_tune(&mut self, config: &FitConfig) -> Vec<(OperatorKind, TuneReport)> {
        let n = self.estimates_made;
        let mut reports = Vec::new();
        for op in [OperatorKind::Join, OperatorKind::Aggregation] {
            let report = if let Some(mut chosen) = self.overrides.remove(&op) {
                let r = tune_with(&mut chosen, op, config, n);
                self.overrides.insert(op, chosen);
                r
            } else {
                tune_with(&mut self.approach, op, config, n)
            };
            if let Some(r) = report {
                reports.push((op, r));
            }
        }
        reports
    }
}

fn active_ref(approach: &CostingApproach, estimates_made: u64) -> &CostingApproach {
    match approach {
        CostingApproach::Timed {
            before,
            after,
            switch_after_estimates,
        } => {
            if estimates_made <= *switch_after_estimates {
                active_ref(before, estimates_made)
            } else {
                active_ref(after, estimates_made)
            }
        }
        other => other,
    }
}

fn active(approach: &mut CostingApproach, estimates_made: u64) -> &mut CostingApproach {
    match approach {
        CostingApproach::Timed {
            before,
            after,
            switch_after_estimates,
        } => {
            if estimates_made <= *switch_after_estimates {
                active(before, estimates_made)
            } else {
                active(after, estimates_made)
            }
        }
        other => other,
    }
}

fn estimate_with(
    approach: &mut CostingApproach,
    op: OperatorKind,
    analysis: &QueryAnalysis,
    estimates_made: u64,
) -> Result<CostEstimate, CostingError> {
    match active(approach, estimates_made) {
        CostingApproach::SubOp(sub) => match op {
            OperatorKind::Join => {
                let (info, ctx) = analysis.join.as_ref().ok_or(CostingError::NoOperator(op))?;
                let inputs = RuleInputs::from_join(info, ctx);
                Ok(sub.estimate_join(info, &inputs))
            }
            OperatorKind::Aggregation => {
                let a = analysis.agg.as_ref().ok_or(CostingError::NoOperator(op))?;
                Ok(sub.estimate_agg(a))
            }
            OperatorKind::Scan => {
                let scan_in = analysis.scan_in.ok_or(CostingError::NoOperator(op))?;
                Ok(sub.estimate_scan(
                    scan_in.rows,
                    scan_in.row_bytes,
                    analysis.root.rows,
                    analysis.root.row_bytes,
                ))
            }
            OperatorKind::Sort => {
                let sort_in = analysis.sort_in.ok_or(CostingError::NoOperator(op))?;
                Ok(sub.estimate_sort(sort_in.rows, sort_in.row_bytes))
            }
        },
        CostingApproach::LogicalOp(suite) => match op {
            OperatorKind::Join => {
                let features = join_features(analysis).ok_or(CostingError::NoOperator(op))?;
                let flow = suite.join.as_mut().ok_or(CostingError::ModelMissing(op))?;
                Ok(flow.estimate(&features))
            }
            OperatorKind::Aggregation => {
                let features = agg_features(analysis).ok_or(CostingError::NoOperator(op))?;
                let flow = suite
                    .aggregation
                    .as_mut()
                    .ok_or(CostingError::ModelMissing(op))?;
                Ok(flow.estimate(&features))
            }
            OperatorKind::Scan | OperatorKind::Sort => Err(CostingError::ModelMissing(op)),
        },
        // analysis:allow(panic-freedom): active() recursively unwraps Timed, so this arm is unreachable by construction
        CostingApproach::Timed { .. } => unreachable!("active() resolves Timed"),
    }
}

fn tune_with(
    approach: &mut CostingApproach,
    op: OperatorKind,
    config: &FitConfig,
    estimates_made: u64,
) -> Option<TuneReport> {
    if let CostingApproach::LogicalOp(suite) = active(approach, estimates_made) {
        let flow = match op {
            OperatorKind::Join => suite.join.as_mut(),
            OperatorKind::Aggregation => suite.aggregation.as_mut(),
            _ => None,
        }?;
        if flow.log.is_empty() {
            return None;
        }
        return Some(flow.offline_tune(config));
    }
    None
}

fn observe_with(
    approach: &mut CostingApproach,
    op: OperatorKind,
    analysis: &QueryAnalysis,
    actual_secs: f64,
    estimates_made: u64,
) {
    if let CostingApproach::LogicalOp(suite) = active(approach, estimates_made) {
        match op {
            OperatorKind::Join => {
                if let (Some(f), Some(flow)) = (join_features(analysis), suite.join.as_mut()) {
                    flow.observe_actual(&f, actual_secs);
                }
            }
            OperatorKind::Aggregation => {
                if let (Some(f), Some(flow)) = (agg_features(analysis), suite.aggregation.as_mut())
                {
                    flow.observe_actual(&f, actual_secs);
                }
            }
            OperatorKind::Scan | OperatorKind::Sort => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimateSource;
    use crate::logical_op::model::{FitConfig, LogicalOpModel};
    use crate::sub_op::{SubOpMeasurement, SubOpModels};
    use neuro::Dataset;
    use remote_sim::analyze::analyze;
    use remote_sim::{ClusterEngine, RemoteSystem};
    use workload::{probe_suite, register_tables, TableSpec};

    fn engine() -> ClusterEngine {
        let mut e = ClusterEngine::paper_hive("hive", 5).without_noise();
        register_tables(
            &mut e,
            &[
                TableSpec::new(1_000_000, 250),
                TableSpec::new(100_000, 100),
                TableSpec::new(10_000, 40),
            ],
        )
        .unwrap();
        e
    }

    fn subop_approach(e: &mut ClusterEngine) -> CostingApproach {
        let m = SubOpMeasurement::run(e, &probe_suite());
        let models = SubOpModels::fit(&m, 4.0e8).unwrap();
        CostingApproach::SubOp(SubOpCosting::for_system(
            SystemKind::Hive,
            models,
            32.0 * 1024.0 * 1024.0,
        ))
    }

    fn logical_approach() -> CostingApproach {
        // A small trained agg model over synthetic features.
        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=12 {
            for g in [2.0, 5.0, 10.0] {
                let rows = r as f64 * 1e5;
                inputs.push(vec![rows, 100.0, rows / g, 12.0]);
                targets.push(4.0 + rows * 1e-5);
            }
        }
        let (model, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["in_rows", "in_bytes", "groups", "out_bytes"],
            &Dataset::new(inputs, targets),
            &FitConfig::fast(),
        );
        CostingApproach::LogicalOp(LogicalOpSuite {
            join: None,
            aggregation: Some(LogicalOpCosting::new(model)),
        })
    }

    fn analysis_of(e: &ClusterEngine, sql: &str) -> QueryAnalysis {
        let plan = sqlkit::sql_to_plan(sql).unwrap();
        analyze(e.catalog(), &plan).unwrap()
    }

    #[test]
    fn subop_profile_costs_joins_and_aggs() {
        let mut e = engine();
        let mut p = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            subop_approach(&mut e),
        );
        let a = analysis_of(
            &e,
            "SELECT r.a1, s.a1 FROM T1000000_250 r JOIN T100000_100 s ON r.a1 = s.a1",
        );
        let cost = p.estimate_query(&a).unwrap();
        assert_eq!(cost.operators.len(), 1);
        assert_eq!(cost.operators[0].0, OperatorKind::Join);
        assert!(cost.total_secs > 0.0);

        let a2 = analysis_of(&e, "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5");
        let cost2 = p.estimate_query(&a2).unwrap();
        assert_eq!(cost2.operators[0].0, OperatorKind::Aggregation);
    }

    #[test]
    fn logical_profile_uses_nn_and_errors_without_model() {
        let e = engine();
        let mut p =
            CostingProfile::new(SystemId::new("hive"), SystemKind::Hive, logical_approach());
        let a = analysis_of(&e, "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5");
        let cost = p.estimate_query(&a).unwrap();
        assert!(matches!(
            cost.operators[0].1.source,
            EstimateSource::NeuralNetwork | EstimateSource::OnlineRemedy { .. }
        ));
        // No join model trained -> join queries error.
        let aj = analysis_of(
            &e,
            "SELECT r.a1, s.a1 FROM T1000000_250 r JOIN T100000_100 s ON r.a1 = s.a1",
        );
        assert_eq!(
            p.estimate_query(&aj),
            Err(CostingError::ModelMissing(OperatorKind::Join))
        );
    }

    #[test]
    fn timed_switching_changes_approach() {
        let mut e = engine();
        let mut p = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            CostingApproach::Timed {
                before: Box::new(subop_approach(&mut e)),
                after: Box::new(logical_approach()),
                switch_after_estimates: 2,
            },
        );
        let a = analysis_of(&e, "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5");
        let first = p.estimate_query(&a).unwrap();
        assert!(matches!(
            first.operators[0].1.source,
            EstimateSource::SubOpAggregation
        ));
        let second = p.estimate_query(&a).unwrap();
        assert!(matches!(
            second.operators[0].1.source,
            EstimateSource::SubOpAggregation
        ));
        let third = p.estimate_query(&a).unwrap();
        assert!(matches!(
            third.operators[0].1.source,
            EstimateSource::NeuralNetwork | EstimateSource::OnlineRemedy { .. }
        ));
    }

    #[test]
    fn per_operator_override_routes_independently() {
        let mut e = engine();
        let mut p = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            subop_approach(&mut e),
        )
        .with_override(OperatorKind::Aggregation, logical_approach());
        let aj = analysis_of(
            &e,
            "SELECT r.a1, s.a1 FROM T1000000_250 r JOIN T100000_100 s ON r.a1 = s.a1",
        );
        let join_cost = p.estimate_query(&aj).unwrap();
        assert!(matches!(
            join_cost.operators[0].1.source,
            EstimateSource::SubOpFormula { .. } | EstimateSource::SubOpPolicy { .. }
        ));
        let aa = analysis_of(&e, "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5");
        let agg_cost = p.estimate_query(&aa).unwrap();
        assert!(matches!(
            agg_cost.operators[0].1.source,
            EstimateSource::NeuralNetwork | EstimateSource::OnlineRemedy { .. }
        ));
    }

    #[test]
    fn observing_actuals_reaches_logical_log() {
        let e = engine();
        let mut p =
            CostingProfile::new(SystemId::new("hive"), SystemKind::Hive, logical_approach());
        let a = analysis_of(&e, "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5");
        let _ = p.estimate_query(&a).unwrap();
        p.observe_actual(OperatorKind::Aggregation, &a, 12.0);
        match &mut p.approach {
            CostingApproach::LogicalOp(suite) => {
                assert_eq!(suite.aggregation.as_ref().unwrap().log.len(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn logical_profiles_absorb_order_by_instead_of_failing() {
        let e = engine();
        let mut p =
            CostingProfile::new(SystemId::new("hive"), SystemKind::Hive, logical_approach());
        let a = analysis_of(
            &e,
            "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5 ORDER BY a5 LIMIT 10",
        );
        let cost = p
            .estimate_query(&a)
            .expect("sorted queries must still cost");
        assert_eq!(
            cost.operators.len(),
            1,
            "sort absorbed into the operator estimate"
        );
        assert_eq!(cost.operators[0].0, OperatorKind::Aggregation);
    }

    #[test]
    fn join_plus_aggregation_costs_both_operators() {
        let mut e = engine();
        let mut p = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            subop_approach(&mut e),
        );
        let a = analysis_of(
            &e,
            "SELECT r.a5, SUM(s.a1) AS s FROM T1000000_250 r JOIN T100000_100 s              ON r.a1 = s.a1 GROUP BY r.a5",
        );
        let cost = p.estimate_query(&a).unwrap();
        let ops: Vec<OperatorKind> = cost.operators.iter().map(|(k, _)| *k).collect();
        assert_eq!(ops, vec![OperatorKind::Join, OperatorKind::Aggregation]);
        assert!(cost.operators.iter().all(|(_, e)| e.secs > 0.0));
        assert!(
            (cost.total_secs - cost.operators.iter().map(|(_, e)| e.secs).sum::<f64>()).abs()
                < 1e-12
        );
    }

    #[test]
    fn order_by_adds_a_sort_operator_estimate() {
        let mut e = engine();
        let mut p = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            subop_approach(&mut e),
        );
        let plain = analysis_of(&e, "SELECT a1 FROM T1000000_250 WHERE a1 < 500000");
        let sorted = analysis_of(
            &e,
            "SELECT a1 FROM T1000000_250 WHERE a1 < 500000 ORDER BY a1 LIMIT 100",
        );
        let plain_cost = p.estimate_query(&plain).unwrap();
        let sorted_cost = p.estimate_query(&sorted).unwrap();
        assert_eq!(plain_cost.operators.len(), 1);
        assert_eq!(sorted_cost.operators.len(), 2);
        assert_eq!(sorted_cost.operators[1].0, OperatorKind::Sort);
        assert!(sorted_cost.total_secs > plain_cost.total_secs);
    }

    #[test]
    fn logical_flows_follow_overrides_and_timed_switching() {
        let mut e = engine();
        // Pure sub-op profile exposes no flows.
        let sub = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            subop_approach(&mut e),
        );
        assert!(sub.logical_flows().is_empty());

        // Logical profile exposes exactly the trained operators.
        let logical =
            CostingProfile::new(SystemId::new("hive"), SystemKind::Hive, logical_approach());
        let flows = logical.logical_flows();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].0, OperatorKind::Aggregation);

        // Timed: only the active side is visible.
        let mut timed = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            CostingApproach::Timed {
                before: Box::new(subop_approach(&mut e)),
                after: Box::new(logical_approach()),
                switch_after_estimates: 2,
            },
        );
        assert!(timed.logical_flows().is_empty());
        timed.estimates_made = 3;
        assert_eq!(timed.logical_flows().len(), 1);

        // Overrides shadow the base approach for their operator.
        let overridden = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            subop_approach(&mut e),
        )
        .with_override(OperatorKind::Aggregation, logical_approach());
        let flows = overridden.logical_flows();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].0, OperatorKind::Aggregation);
    }

    #[test]
    fn scan_queries_cost_through_subop() {
        let mut e = engine();
        let mut p = CostingProfile::new(
            SystemId::new("hive"),
            SystemKind::Hive,
            subop_approach(&mut e),
        );
        let a = analysis_of(&e, "SELECT a1 FROM T10000_40 WHERE a1 < 100");
        let cost = p.estimate_query(&a).unwrap();
        assert_eq!(cost.operators[0].0, OperatorKind::Scan);
        assert!(cost.total_secs > 0.0);
    }
}
