//! The hybrid cost manager (Fig. 9): routes per-system estimates through
//! the registered Costing Profiles.

use crate::{
    estimator::OperatorKind,
    features::{agg_features, join_features},
    hybrid::profile::{CostingError, CostingProfile, QueryCost},
    logical_op::{model::FitConfig, tuning::TuneReport},
    observability::ModelKey,
};
use catalog::{Catalog, SystemId};
use remote_sim::analyze::{analyze, QueryAnalysis};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use telemetry::{DriftMonitor, Event, Tracer};

/// Routes cost estimates to per-system costing profiles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HybridCostManager {
    profiles: BTreeMap<SystemId, CostingProfile>,
    /// Model-state version, bumped on every mutation of the registered
    /// profiles (registration, observation feedback, tuning). Serves the
    /// same role as [`crate::epoch::Epoch`] in the snapshot store: trace
    /// events and drift samples carry it so an estimate is attributable
    /// to one profile state. Kept `#[serde(default)]` so profiles
    /// persisted before versioning load at version 0.
    #[serde(default)]
    version: u64,
}

impl HybridCostManager {
    /// An empty manager.
    pub fn new() -> Self {
        HybridCostManager::default()
    }

    /// The current profile-state version (see the `version` field).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers (or replaces) a system's costing profile.
    pub fn register(&mut self, profile: CostingProfile) {
        self.profiles.insert(profile.system.clone(), profile);
        self.version += 1;
    }

    /// The registered profile for a system, if any.
    pub fn profile(&self, system: &SystemId) -> Option<&CostingProfile> {
        self.profiles.get(system)
    }

    /// Mutable access to a profile (for tuning passes).
    pub fn profile_mut(&mut self, system: &SystemId) -> Option<&mut CostingProfile> {
        self.profiles.get_mut(system)
    }

    /// Registered systems.
    pub fn systems(&self) -> Vec<&SystemId> {
        self.profiles.keys().collect()
    }

    /// Estimates the cost of running an analysed query on a system.
    pub fn estimate(
        &mut self,
        system: &SystemId,
        analysis: &QueryAnalysis,
    ) -> Result<QueryCost, CostingError> {
        let profile = self
            .profiles
            .get_mut(system)
            .ok_or_else(|| CostingError::UnknownSystem(system.clone()))?;
        profile.estimate_query(analysis)
    }

    /// Parses SQL against a catalog, analyses it, and estimates on a
    /// system — the one-call convenience path.
    pub fn estimate_sql(
        &mut self,
        system: &SystemId,
        catalog: &Catalog,
        sql: &str,
    ) -> Result<QueryCost, CostingError> {
        let plan =
            sqlkit::sql_to_plan(sql).map_err(|_| CostingError::NoOperator(OperatorKind::Scan))?;
        let analysis =
            analyze(catalog, &plan).map_err(|_| CostingError::NoOperator(OperatorKind::Scan))?;
        self.estimate(system, &analysis)
    }

    /// [`HybridCostManager::estimate`] with the decision trail: emits one
    /// [`Event::EstimateServed`] per costed operator, carrying the feature
    /// vector the logical-op path would see and the estimate's provenance.
    pub fn estimate_traced(
        &mut self,
        system: &SystemId,
        analysis: &QueryAnalysis,
        tracer: &Tracer,
    ) -> Result<QueryCost, CostingError> {
        let cost = self.estimate(system, analysis)?;
        if tracer.is_enabled() {
            for (op, est) in &cost.operators {
                let features = match op {
                    OperatorKind::Join => join_features(analysis).map(|f| f.to_vec()),
                    OperatorKind::Aggregation => agg_features(analysis).map(|f| f.to_vec()),
                    _ => None,
                }
                .unwrap_or_default();
                tracer.emit(|| Event::EstimateServed {
                    system: system.to_string(),
                    operator: op.to_string(),
                    features,
                    secs: est.secs,
                    source: format!("{:?}", est.source),
                    cache_hit: false,
                    epoch: Some(self.version),
                });
            }
        }
        Ok(cost)
    }

    /// Replays every profile's pending execution-log entries into a drift
    /// monitor keyed by `(system, operator)`: each logged observation is
    /// paired with what the currently-trained model predicts for its
    /// feature vector. Returns the number of samples fed.
    pub fn feed_drift_monitor(&self, monitor: &mut DriftMonitor<ModelKey>) -> usize {
        let mut fed = 0;
        for (system, profile) in &self.profiles {
            for (op, flow) in profile.logical_flows() {
                for entry in flow.log.entries() {
                    let predicted = flow.estimate_readonly(&entry.features).secs;
                    monitor.record_versioned(
                        (system.clone(), op),
                        predicted,
                        entry.actual_secs,
                        Some(self.version),
                    );
                    fed += 1;
                }
            }
        }
        fed
    }

    /// Feeds an observed actual execution back to the owning profile.
    pub fn observe_actual(
        &mut self,
        system: &SystemId,
        op: OperatorKind,
        analysis: &QueryAnalysis,
        actual_secs: f64,
    ) {
        if let Some(profile) = self.profiles.get_mut(system) {
            profile.observe_actual(op, analysis, actual_secs);
            self.version += 1;
        }
    }

    /// Runs the offline tuning phase over every registered profile's
    /// logical-op flows, builder-style: tuning happens on a private clone
    /// of the profile map, which replaces the live map wholesale under a
    /// single version bump once every model retrained. A panic mid-tune
    /// leaves the manager exactly as it was, and observers never see a
    /// half-tuned profile set.
    pub fn offline_tune_all(&mut self, config: &FitConfig) -> Vec<(ModelKey, TuneReport)> {
        let mut next = self.profiles.clone();
        let mut reports = Vec::new();
        for (system, profile) in next.iter_mut() {
            for (op, report) in profile.offline_tune(config) {
                reports.push(((system.clone(), op), report));
            }
        }
        self.profiles = next;
        self.version += 1;
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::profile::CostingApproach;
    use crate::sub_op::{SubOpCosting, SubOpMeasurement, SubOpModels};
    use catalog::SystemKind;
    use remote_sim::{ClusterEngine, RemoteSystem};
    use workload::{probe_suite, register_tables, TableSpec};

    fn hive_with_tables() -> ClusterEngine {
        let mut e = ClusterEngine::paper_hive("hive-a", 3).without_noise();
        register_tables(
            &mut e,
            &[TableSpec::new(1_000_000, 250), TableSpec::new(100_000, 100)],
        )
        .unwrap();
        e
    }

    fn subop_profile(e: &mut ClusterEngine, id: &str) -> CostingProfile {
        let m = SubOpMeasurement::run(e, &probe_suite());
        let models = SubOpModels::fit(&m, 4.0e8).unwrap();
        CostingProfile::new(
            SystemId::new(id),
            SystemKind::Hive,
            CostingApproach::SubOp(SubOpCosting::for_system(
                SystemKind::Hive,
                models,
                32.0 * 1024.0 * 1024.0,
            )),
        )
    }

    #[test]
    fn manager_routes_to_registered_system() {
        let mut e = hive_with_tables();
        let mut mgr = HybridCostManager::new();
        mgr.register(subop_profile(&mut e, "hive-a"));
        let cost = mgr
            .estimate_sql(
                &SystemId::new("hive-a"),
                e.catalog(),
                "SELECT r.a1, s.a1 FROM T1000000_250 r JOIN T100000_100 s ON r.a1 = s.a1",
            )
            .unwrap();
        assert!(cost.total_secs > 0.0);
        assert_eq!(mgr.systems().len(), 1);
    }

    #[test]
    fn traced_estimate_serves_one_event_per_operator() {
        use std::sync::Arc;
        use telemetry::VecSubscriber;

        let mut e = hive_with_tables();
        let mut mgr = HybridCostManager::new();
        mgr.register(subop_profile(&mut e, "hive-a"));
        let plan = sqlkit::sql_to_plan(
            "SELECT r.a5, SUM(s.a1) AS s FROM T1000000_250 r \
             JOIN T100000_100 s ON r.a1 = s.a1 GROUP BY r.a5",
        )
        .unwrap();
        let analysis = analyze(e.catalog(), &plan).unwrap();
        let sub = Arc::new(VecSubscriber::new());
        let tracer = Tracer::new(sub.clone());
        let cost = mgr
            .estimate_traced(&SystemId::new("hive-a"), &analysis, &tracer)
            .unwrap();
        let events = sub.snapshot();
        assert_eq!(events.len(), cost.operators.len());
        for ((op, est), ev) in cost.operators.iter().zip(&events) {
            match ev {
                Event::EstimateServed {
                    system,
                    operator,
                    secs,
                    cache_hit,
                    ..
                } => {
                    assert_eq!(system, "hive-a");
                    assert_eq!(operator, &op.to_string());
                    assert_eq!(*secs, est.secs);
                    assert!(!cache_hit);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn drift_feeding_pairs_log_entries_with_current_predictions() {
        use crate::hybrid::profile::LogicalOpSuite;
        use crate::logical_op::flow::LogicalOpCosting;
        use crate::logical_op::model::{FitConfig, LogicalOpModel};
        use neuro::Dataset;
        use telemetry::DriftConfig;

        // A small trained aggregation model.
        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=12 {
            for g in [2.0, 5.0, 10.0] {
                let rows = r as f64 * 1e5;
                inputs.push(vec![rows, 100.0, rows / g, 12.0]);
                targets.push(4.0 + rows * 1e-5);
            }
        }
        let (model, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["in_rows", "in_bytes", "groups", "out_bytes"],
            &Dataset::new(inputs, targets),
            &FitConfig::fast(),
        );
        let mut flow = LogicalOpCosting::new(model);
        for r in 1..=6 {
            let rows = r as f64 * 1e5;
            flow.observe_actual(&[rows, 100.0, rows / 5.0, 12.0], 4.0 + rows * 1e-5);
        }
        let logged = flow.log.len();
        assert!(logged > 0);
        let mut mgr = HybridCostManager::new();
        mgr.register(CostingProfile::new(
            SystemId::new("hive-a"),
            SystemKind::Hive,
            CostingApproach::LogicalOp(LogicalOpSuite {
                join: None,
                aggregation: Some(flow),
            }),
        ));
        let mut monitor = DriftMonitor::new(DriftConfig {
            min_samples: 1,
            ..DriftConfig::default()
        });
        let fed = mgr.feed_drift_monitor(&mut monitor);
        assert_eq!(fed, logged);
        let key = (SystemId::new("hive-a"), OperatorKind::Aggregation);
        let health = monitor.status(&key).unwrap();
        assert_eq!(health.samples, logged);
        assert!(health.rmse_pct.is_finite());
    }

    #[test]
    fn versioned_builder_tuning_swaps_profiles_in_one_bump() {
        use crate::hybrid::profile::LogicalOpSuite;
        use crate::logical_op::flow::LogicalOpCosting;
        use crate::logical_op::model::{FitConfig, LogicalOpModel};
        use neuro::Dataset;

        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=12 {
            for g in [2.0, 5.0, 10.0] {
                let rows = r as f64 * 1e5;
                inputs.push(vec![rows, 100.0, rows / g, 12.0]);
                targets.push(4.0 + rows * 1e-5);
            }
        }
        let (model, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["in_rows", "in_bytes", "groups", "out_bytes"],
            &Dataset::new(inputs, targets),
            &FitConfig::fast(),
        );
        let mut flow = LogicalOpCosting::new(model);
        for r in 1..=6 {
            let rows = r as f64 * 1e5;
            flow.observe_actual(&[rows, 100.0, rows / 5.0, 12.0], 4.0 + rows * 1e-5);
        }
        let mut mgr = HybridCostManager::new();
        assert_eq!(mgr.version(), 0);
        mgr.register(CostingProfile::new(
            SystemId::new("hive-a"),
            SystemKind::Hive,
            CostingApproach::LogicalOp(LogicalOpSuite {
                join: None,
                aggregation: Some(flow),
            }),
        ));
        assert_eq!(mgr.version(), 1);
        let reports = mgr.offline_tune_all(&FitConfig::fast());
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].0,
            (SystemId::new("hive-a"), OperatorKind::Aggregation)
        );
        assert!(reports[0].1.entries_used > 0);
        assert_eq!(mgr.version(), 2, "one bump per tuning pass");
        // The swapped-in profile's log is drained.
        let sys = SystemId::new("hive-a");
        let flows = mgr.profile(&sys).unwrap().logical_flows();
        assert!(flows[0].1.log.is_empty());
        // A pass with nothing to tune still swaps and bumps (it is a
        // republish of identical content).
        assert!(mgr.offline_tune_all(&FitConfig::fast()).is_empty());
        assert_eq!(mgr.version(), 3);
    }

    #[test]
    fn unknown_system_errors() {
        let mut mgr = HybridCostManager::new();
        let e = hive_with_tables();
        let err = mgr
            .estimate_sql(
                &SystemId::new("ghost"),
                e.catalog(),
                "SELECT a1 FROM T100000_100",
            )
            .unwrap_err();
        assert!(matches!(err, CostingError::UnknownSystem(_)));
    }

    #[test]
    fn multiple_systems_cost_independently() {
        let mut e = hive_with_tables();
        let mut mgr = HybridCostManager::new();
        mgr.register(subop_profile(&mut e, "hive-a"));
        mgr.register(subop_profile(&mut e, "hive-b"));
        let sql = "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5";
        let a = mgr
            .estimate_sql(&SystemId::new("hive-a"), e.catalog(), sql)
            .unwrap();
        let b = mgr
            .estimate_sql(&SystemId::new("hive-b"), e.catalog(), sql)
            .unwrap();
        assert_eq!(a.total_secs, b.total_secs);
        assert_eq!(
            mgr.profile(&SystemId::new("hive-a"))
                .unwrap()
                .estimates_made,
            1
        );
    }
}
