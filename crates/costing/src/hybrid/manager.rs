//! The hybrid cost manager (Fig. 9): routes per-system estimates through
//! the registered Costing Profiles.

use crate::{
    estimator::OperatorKind,
    hybrid::profile::{CostingError, CostingProfile, QueryCost},
};
use catalog::{Catalog, SystemId};
use remote_sim::analyze::{analyze, QueryAnalysis};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Routes cost estimates to per-system costing profiles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HybridCostManager {
    profiles: BTreeMap<SystemId, CostingProfile>,
}

impl HybridCostManager {
    /// An empty manager.
    pub fn new() -> Self {
        HybridCostManager::default()
    }

    /// Registers (or replaces) a system's costing profile.
    pub fn register(&mut self, profile: CostingProfile) {
        self.profiles.insert(profile.system.clone(), profile);
    }

    /// The registered profile for a system, if any.
    pub fn profile(&self, system: &SystemId) -> Option<&CostingProfile> {
        self.profiles.get(system)
    }

    /// Mutable access to a profile (for tuning passes).
    pub fn profile_mut(&mut self, system: &SystemId) -> Option<&mut CostingProfile> {
        self.profiles.get_mut(system)
    }

    /// Registered systems.
    pub fn systems(&self) -> Vec<&SystemId> {
        self.profiles.keys().collect()
    }

    /// Estimates the cost of running an analysed query on a system.
    pub fn estimate(
        &mut self,
        system: &SystemId,
        analysis: &QueryAnalysis,
    ) -> Result<QueryCost, CostingError> {
        let profile = self
            .profiles
            .get_mut(system)
            .ok_or_else(|| CostingError::UnknownSystem(system.clone()))?;
        profile.estimate_query(analysis)
    }

    /// Parses SQL against a catalog, analyses it, and estimates on a
    /// system — the one-call convenience path.
    pub fn estimate_sql(
        &mut self,
        system: &SystemId,
        catalog: &Catalog,
        sql: &str,
    ) -> Result<QueryCost, CostingError> {
        let plan =
            sqlkit::sql_to_plan(sql).map_err(|_| CostingError::NoOperator(OperatorKind::Scan))?;
        let analysis =
            analyze(catalog, &plan).map_err(|_| CostingError::NoOperator(OperatorKind::Scan))?;
        self.estimate(system, &analysis)
    }

    /// Feeds an observed actual execution back to the owning profile.
    pub fn observe_actual(
        &mut self,
        system: &SystemId,
        op: OperatorKind,
        analysis: &QueryAnalysis,
        actual_secs: f64,
    ) {
        if let Some(profile) = self.profiles.get_mut(system) {
            profile.observe_actual(op, analysis, actual_secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::profile::CostingApproach;
    use crate::sub_op::{SubOpCosting, SubOpMeasurement, SubOpModels};
    use catalog::SystemKind;
    use remote_sim::{ClusterEngine, RemoteSystem};
    use workload::{probe_suite, register_tables, TableSpec};

    fn hive_with_tables() -> ClusterEngine {
        let mut e = ClusterEngine::paper_hive("hive-a", 3).without_noise();
        register_tables(
            &mut e,
            &[TableSpec::new(1_000_000, 250), TableSpec::new(100_000, 100)],
        )
        .unwrap();
        e
    }

    fn subop_profile(e: &mut ClusterEngine, id: &str) -> CostingProfile {
        let m = SubOpMeasurement::run(e, &probe_suite());
        let models = SubOpModels::fit(&m, 4.0e8).unwrap();
        CostingProfile::new(
            SystemId::new(id),
            SystemKind::Hive,
            CostingApproach::SubOp(SubOpCosting::for_system(
                SystemKind::Hive,
                models,
                32.0 * 1024.0 * 1024.0,
            )),
        )
    }

    #[test]
    fn manager_routes_to_registered_system() {
        let mut e = hive_with_tables();
        let mut mgr = HybridCostManager::new();
        mgr.register(subop_profile(&mut e, "hive-a"));
        let cost = mgr
            .estimate_sql(
                &SystemId::new("hive-a"),
                e.catalog(),
                "SELECT r.a1, s.a1 FROM T1000000_250 r JOIN T100000_100 s ON r.a1 = s.a1",
            )
            .unwrap();
        assert!(cost.total_secs > 0.0);
        assert_eq!(mgr.systems().len(), 1);
    }

    #[test]
    fn unknown_system_errors() {
        let mut mgr = HybridCostManager::new();
        let e = hive_with_tables();
        let err = mgr
            .estimate_sql(
                &SystemId::new("ghost"),
                e.catalog(),
                "SELECT a1 FROM T100000_100",
            )
            .unwrap_err();
        assert!(matches!(err, CostingError::UnknownSystem(_)));
    }

    #[test]
    fn multiple_systems_cost_independently() {
        let mut e = hive_with_tables();
        let mut mgr = HybridCostManager::new();
        mgr.register(subop_profile(&mut e, "hive-a"));
        mgr.register(subop_profile(&mut e, "hive-b"));
        let sql = "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5";
        let a = mgr
            .estimate_sql(&SystemId::new("hive-a"), e.catalog(), sql)
            .unwrap();
        let b = mgr
            .estimate_sql(&SystemId::new("hive-b"), e.catalog(), sql)
            .unwrap();
        assert_eq!(a.total_secs, b.total_secs);
        assert_eq!(
            mgr.profile(&SystemId::new("hive-a"))
                .unwrap()
                .estimates_made,
            1
        );
    }
}
