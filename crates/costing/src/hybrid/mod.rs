//! Hybrid costing (§5): per-system Costing Profiles and the manager that
//! routes estimates through them (Fig. 9).

pub mod manager;
pub mod persist;
pub mod profile;

pub use manager::HybridCostManager;
pub use persist::{load_manager, load_profile, save_manager, save_profile, PersistError};
pub use profile::{CostingApproach, CostingError, CostingProfile, LogicalOpSuite, QueryCost};
