//! Common estimate types shared by all three costing approaches.

use remote_sim::physical::JoinAlgorithm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The logical operator being costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Binary join.
    Join,
    /// Grouped aggregation.
    Aggregation,
    /// Scan / filter / projection.
    Scan,
    /// `ORDER BY` sorting of a result.
    Sort,
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OperatorKind::Join => "join",
            OperatorKind::Aggregation => "aggregation",
            OperatorKind::Scan => "scan",
            OperatorKind::Sort => "sort",
        })
    }
}

/// How an estimate was produced — carried for observability and for the
/// evaluation figures, which compare the sources against each other.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EstimateSource {
    /// Plain neural-network prediction (inputs were in the trained range).
    NeuralNetwork,
    /// Online remedy: NN blended with an on-the-fly pivot regression.
    OnlineRemedy {
        /// The α used in `α·c_nn + (1−α)·c_reg`.
        alpha: f64,
        /// Indices of the pivot (way-off) dimensions.
        pivots: Vec<usize>,
    },
    /// Sub-op formula for a single predicted algorithm.
    SubOpFormula {
        /// The algorithm whose formula was evaluated.
        algorithm: JoinAlgorithm,
    },
    /// Sub-op costing where several algorithms remained applicable and a
    /// choice policy resolved them.
    SubOpPolicy {
        /// The resolution policy used.
        policy: String,
        /// How many candidate algorithms were still applicable.
        candidates: usize,
    },
    /// Sub-op aggregation formula (no algorithm ambiguity).
    SubOpAggregation,
    /// Sub-op scan formula.
    SubOpScan,
    /// Sub-op sort formula (`ORDER BY`).
    SubOpSort,
}

/// A produced cost estimate: predicted elapsed execution time on the
/// remote system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Predicted elapsed time in seconds.
    pub secs: f64,
    /// Provenance.
    pub source: EstimateSource,
}

impl CostEstimate {
    /// Creates an estimate, clamping negative predictions to zero (a
    /// regression extrapolation can dip below zero near the origin).
    pub fn new(secs: f64, source: EstimateSource) -> Self {
        CostEstimate {
            secs: secs.max(0.0),
            source,
        }
    }

    /// The estimate in microseconds (simulator units).
    pub fn micros(&self) -> f64 {
        self.secs * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_estimates_clamped() {
        let e = CostEstimate::new(-3.0, EstimateSource::NeuralNetwork);
        assert_eq!(e.secs, 0.0);
    }

    #[test]
    fn unit_conversion() {
        let e = CostEstimate::new(2.5, EstimateSource::SubOpAggregation);
        assert_eq!(e.micros(), 2_500_000.0);
    }

    #[test]
    fn serde_roundtrip() {
        let e = CostEstimate::new(
            1.0,
            EstimateSource::OnlineRemedy {
                alpha: 0.62,
                pivots: vec![1, 3],
            },
        );
        let json = serde_json::to_string(&e).unwrap();
        let back: CostEstimate = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn operator_kind_display() {
        assert_eq!(OperatorKind::Join.to_string(), "join");
        assert_eq!(OperatorKind::Aggregation.to_string(), "aggregation");
    }
}
