//! Feature extraction: from a query analysis to the model input vectors.
//!
//! Fig. 2 defines the join model's seven training dimensions — "the row
//! size and the number of rows in each of the two tables, the sum of the
//! projected attribute sizes from each table, and the number of output
//! rows" — and §3 gives the aggregation model four: "the number of input
//! rows, input row size, number of output rows, and output row size".

use crate::estimator::OperatorKind;
use remote_sim::analyze::{analyze, CoreKind, QueryAnalysis};
use remote_sim::cardinality::CardError;
use serde::{Deserialize, Serialize};

/// Join model dimensionality (Fig. 2).
pub const JOIN_DIMS: usize = 7;

/// Aggregation model dimensionality (§3).
pub const AGG_DIMS: usize = 4;

/// Names of the join dimensions, in feature order.
pub fn join_dim_names() -> [&'static str; JOIN_DIMS] {
    [
        "row_size_r",
        "num_rows_r",
        "row_size_s",
        "num_rows_s",
        "projected_size_r",
        "projected_size_s",
        "num_output_rows",
    ]
}

/// Names of the aggregation dimensions, in feature order.
pub fn agg_dim_names() -> [&'static str; AGG_DIMS] {
    [
        "num_input_rows",
        "input_row_size",
        "num_output_rows",
        "output_row_size",
    ]
}

/// An extracted feature vector tagged with its operator kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryFeatures {
    /// Which operator model these features feed.
    pub op: OperatorKind,
    /// The feature vector (length [`JOIN_DIMS`] or [`AGG_DIMS`]).
    pub values: Vec<f64>,
}

/// Extracts the Fig. 2 join features from an analysed query. `R` is the
/// big (probe) side, `S` the small (build) side. Returns `None` when the
/// query has no join.
pub fn join_features(analysis: &QueryAnalysis) -> Option<[f64; JOIN_DIMS]> {
    let (info, _) = analysis.join.as_ref()?;
    Some([
        info.big.row_bytes,
        info.big.rows,
        info.small.row_bytes,
        info.small.rows,
        info.big.proj_bytes,
        info.small.proj_bytes,
        info.out_rows,
    ])
}

/// Extracts the §3 aggregation features. Returns `None` when the query
/// has no aggregation.
pub fn agg_features(analysis: &QueryAnalysis) -> Option<[f64; AGG_DIMS]> {
    let a = analysis.agg.as_ref()?;
    Some([a.in_rows, a.in_bytes, a.groups, a.out_bytes])
}

/// Classifies a query and extracts its features in one step.
pub fn extract(analysis: &QueryAnalysis) -> QueryFeatures {
    if let Some(f) = agg_features(analysis) {
        // Aggregation above a join is still modelled by the aggregation
        // operator here; the join contributes its own operator estimate.
        if analysis.core != CoreKind::Join {
            return QueryFeatures {
                op: OperatorKind::Aggregation,
                values: f.to_vec(),
            };
        }
    }
    if let Some(f) = join_features(analysis) {
        return QueryFeatures {
            op: OperatorKind::Join,
            values: f.to_vec(),
        };
    }
    if let Some(f) = agg_features(analysis) {
        return QueryFeatures {
            op: OperatorKind::Aggregation,
            values: f.to_vec(),
        };
    }
    let scan_in = analysis.scan_in.unwrap_or(analysis.root);
    QueryFeatures {
        op: OperatorKind::Scan,
        values: vec![
            scan_in.rows,
            scan_in.row_bytes,
            analysis.root.rows,
            analysis.root.row_bytes,
        ],
    }
}

/// Parses SQL against a catalog and extracts features.
pub fn features_from_sql(
    catalog: &catalog::Catalog,
    sql: &str,
) -> Result<QueryFeatures, FeatureError> {
    let plan = sqlkit::sql_to_plan(sql).map_err(|e| FeatureError::Sql(e.to_string()))?;
    let analysis = analyze(catalog, &plan)?;
    Ok(extract(&analysis))
}

/// Feature-extraction failures.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureError {
    /// SQL failed to parse or plan.
    Sql(String),
    /// Cardinality estimation failed (unknown table).
    Cardinality(CardError),
}

impl std::fmt::Display for FeatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureError::Sql(m) => write!(f, "sql error: {m}"),
            FeatureError::Cardinality(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FeatureError {}

impl From<CardError> for FeatureError {
    fn from(e: CardError) -> Self {
        FeatureError::Cardinality(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::Catalog;
    use remote_sim::{ClusterEngine, RemoteSystem};
    use workload::{register_tables, TableSpec};

    fn catalog_with(specs: &[TableSpec]) -> Catalog {
        let mut e = ClusterEngine::paper_hive("hive", 1).without_noise();
        register_tables(&mut e, specs).unwrap();
        e.catalog().clone()
    }

    #[test]
    fn join_features_have_seven_dims_in_fig2_order() {
        let cat = catalog_with(&[TableSpec::new(1_000_000, 250), TableSpec::new(100_000, 100)]);
        let f = features_from_sql(
            &cat,
            "SELECT r.a1, s.a1 FROM T1000000_250 r JOIN T100000_100 s ON r.a1 = s.a1",
        )
        .unwrap();
        assert_eq!(f.op, OperatorKind::Join);
        assert_eq!(f.values.len(), JOIN_DIMS);
        assert_eq!(f.values[0], 250.0); // R row size
        assert_eq!(f.values[1], 1_000_000.0); // R rows
        assert_eq!(f.values[2], 100.0); // S row size
        assert_eq!(f.values[3], 100_000.0); // S rows
        assert!((f.values[6] - 100_000.0).abs() < 1.0); // output rows
    }

    #[test]
    fn agg_features_have_four_dims() {
        let cat = catalog_with(&[TableSpec::new(1_000_000, 250)]);
        let f = features_from_sql(
            &cat,
            "SELECT a5, SUM(a1) AS s FROM T1000000_250 GROUP BY a5",
        )
        .unwrap();
        assert_eq!(f.op, OperatorKind::Aggregation);
        assert_eq!(f.values, vec![1_000_000.0, 250.0, 200_000.0, 12.0]);
    }

    #[test]
    fn scan_features_fall_through() {
        let cat = catalog_with(&[TableSpec::new(10_000, 40)]);
        let f = features_from_sql(&cat, "SELECT a1 FROM T10000_40 WHERE a1 < 100").unwrap();
        assert_eq!(f.op, OperatorKind::Scan);
        assert_eq!(f.values.len(), 4);
    }

    #[test]
    fn unknown_table_is_a_cardinality_error() {
        let cat = Catalog::new();
        assert!(matches!(
            features_from_sql(&cat, "SELECT * FROM ghost"),
            Err(FeatureError::Cardinality(_))
        ));
    }

    #[test]
    fn dim_name_arrays_match_dims() {
        assert_eq!(join_dim_names().len(), JOIN_DIMS);
        assert_eq!(agg_dim_names().len(), AGG_DIMS);
    }
}
