//! Epoch-versioned copy-on-write model snapshots.
//!
//! The paper's offline-tuning loop (§3) retrains models while queries
//! keep arriving. Serving-side cost models are read-mostly with rare
//! bulk updates, so this module makes the *read path* completely
//! lock-free and pushes every mutation through a builder-style
//! transaction that clones, modifies, and atomically publishes a fresh
//! immutable [`ModelSnapshot`]:
//!
//! * [`ModelSnapshot`] — an immutable, `Arc`-shared map of
//!   `(SystemId, OperatorKind) → LogicalOpCosting` plus hybrid costing
//!   profiles, stamped with the [`Epoch`] that produced it and a
//!   [`SnapshotLineage`] (parent epoch + tuning stats) for provenance
//!   and rollback.
//! * [`EpochStore`] — the publication point: readers call
//!   [`EpochStore::load`] (an `arc-swap` pointer load, no locks) and
//!   writers run [`EpochStore::transaction`], which serialises
//!   clone-modify-publish cycles on a commit mutex held entirely off
//!   the estimate hot path.
//! * [`TuningPipeline`] — the offline-tuning worker: drains execution
//!   logs, retrains every due model, and swaps the results in as one
//!   epoch bump.
//!
//! A pinned snapshot is a consistency domain: every estimate computed
//! against it reflects exactly one model version, and the snapshot's
//! epoch doubles as the service's cache key, so a cached value can
//! never be served against a model state it was not computed from.

use crate::estimator::OperatorKind;
use crate::hybrid::CostingProfile;
use crate::logical_op::flow::LogicalOpCosting;
use crate::logical_op::model::FitConfig;
use crate::logical_op::packed::PackedOpModel;
use crate::logical_op::tuning::TuneReport;
use crate::observability::{ModelKey, ModelKeyQuery, ModelKeyRef};
use arc_swap::ArcSwap;
use catalog::SystemId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use telemetry::{Event, Tracer};

/// A monotonically increasing model-state version number.
///
/// Epoch 0 is the empty genesis snapshot; every published transaction
/// bumps the epoch by one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(u64);

impl Epoch {
    /// The genesis epoch (empty snapshot).
    pub const ZERO: Epoch = Epoch(0);

    /// Wraps a raw epoch number (used when reloading persisted
    /// snapshots).
    pub fn new(raw: u64) -> Self {
        Epoch(raw)
    }

    /// The raw epoch number.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The epoch following this one.
    fn next(self) -> Self {
        Epoch(self.0 + 1)
    }
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Where a snapshot came from: its parent epoch plus a summary of the
/// mutation that produced it. Persisted alongside the snapshot so a
/// reloaded model state keeps its history.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotLineage {
    /// Epoch of the snapshot this one was derived from (`None` for the
    /// genesis snapshot).
    pub parent: Option<u64>,
    /// Short label of the transaction that published it
    /// (`"register"`, `"observe"`, `"tuning-pipeline"`, …).
    pub label: String,
    /// Log entries consumed by retraining in this transaction.
    pub entries_trained: usize,
    /// Models retrained in this transaction.
    pub models_retrained: usize,
    /// Held-out RMSE% reported by the last retrain in this transaction.
    pub rmse_pct_after: Option<f64>,
    /// When this snapshot is a rollback, the epoch whose content it
    /// restored.
    pub restores: Option<u64>,
}

impl SnapshotLineage {
    fn genesis() -> Self {
        SnapshotLineage {
            parent: None,
            label: "genesis".to_string(),
            entries_trained: 0,
            models_retrained: 0,
            rmse_pct_after: None,
            restores: None,
        }
    }
}

/// An immutable, epoch-stamped view of every registered model.
///
/// Snapshots are shared via `Arc` and never mutated after publication;
/// holding one pins a consistent model state for as long as needed
/// (e.g. across a fan-out batch), regardless of concurrent retraining.
#[derive(Debug)]
pub struct ModelSnapshot {
    epoch: Epoch,
    lineage: SnapshotLineage,
    models: HashMap<ModelKey, Arc<LogicalOpCosting>>,
    /// Fused-inference forms of `models`, derived deterministically at
    /// publication time (same key set, always). Pinned reads serve NN
    /// predictions through these; training/mutation only ever touches
    /// the legacy layout in `models`.
    packed: HashMap<ModelKey, Arc<PackedOpModel>>,
    profiles: BTreeMap<SystemId, Arc<CostingProfile>>,
}

impl ModelSnapshot {
    /// The empty epoch-0 snapshot.
    fn genesis() -> Self {
        ModelSnapshot {
            epoch: Epoch::ZERO,
            lineage: SnapshotLineage::genesis(),
            models: HashMap::new(),
            packed: HashMap::new(),
            profiles: BTreeMap::new(),
        }
    }

    /// Reassembles a snapshot from persisted parts (see
    /// [`crate::hybrid::persist`]). The packed inference forms are
    /// re-derived from the models — they are never persisted.
    pub fn from_parts(
        epoch: Epoch,
        lineage: SnapshotLineage,
        models: Vec<(ModelKey, LogicalOpCosting)>,
        profiles: Vec<CostingProfile>,
    ) -> Self {
        let models: HashMap<ModelKey, Arc<LogicalOpCosting>> = models
            .into_iter()
            .map(|(k, flow)| (k, Arc::new(flow)))
            .collect();
        let packed = models
            .iter()
            .map(|(k, flow)| (k.clone(), Arc::new(flow.model.pack())))
            .collect();
        ModelSnapshot {
            epoch,
            lineage,
            models,
            packed,
            profiles: profiles
                .into_iter()
                .map(|p| (p.system.clone(), Arc::new(p)))
                .collect(),
        }
    }

    /// The epoch that published this snapshot.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Provenance of this snapshot.
    pub fn lineage(&self) -> &SnapshotLineage {
        &self.lineage
    }

    /// The costing flow for one `(system, operator)` pair. The lookup
    /// borrows `system` (no `SystemId` clone — see
    /// [`crate::observability::ModelKeyQuery`]).
    pub fn model(&self, system: &SystemId, op: OperatorKind) -> Option<&Arc<LogicalOpCosting>> {
        self.models
            .get(&ModelKeyRef { system, op } as &dyn ModelKeyQuery)
    }

    /// The fused packed-inference form of the model for
    /// `(system, operator)` — present exactly when
    /// [`ModelSnapshot::model`] is. Allocation-free borrowed-key lookup.
    pub fn packed(&self, system: &SystemId, op: OperatorKind) -> Option<&Arc<PackedOpModel>> {
        self.packed
            .get(&ModelKeyRef { system, op } as &dyn ModelKeyQuery)
    }

    /// All registered models, in unspecified order.
    pub fn models(&self) -> impl Iterator<Item = (&ModelKey, &Arc<LogicalOpCosting>)> {
        self.models.iter()
    }

    /// The hybrid costing profile for `system`, when one is attached.
    pub fn profile(&self, system: &SystemId) -> Option<&Arc<CostingProfile>> {
        self.profiles.get(system)
    }

    /// All attached costing profiles, ordered by system.
    pub fn profiles(&self) -> impl Iterator<Item = (&SystemId, &Arc<CostingProfile>)> {
        self.profiles.iter()
    }

    /// Sorted list of registered model keys.
    pub fn keys(&self) -> Vec<ModelKey> {
        let mut keys: Vec<ModelKey> = self.models.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// Mutable staging area of an in-flight transaction.
///
/// The builder starts as a cheap clone of the current snapshot (the
/// maps clone `Arc`s, not models); mutation helpers copy-on-write the
/// individual entries they touch. Nothing is visible to readers until
/// the transaction publishes.
pub struct SnapshotBuilder {
    models: HashMap<ModelKey, Arc<LogicalOpCosting>>,
    /// Packed forms inherited from the base snapshot. Mutation helpers
    /// evict the entries they touch; [`SnapshotBuilder::build`] repacks
    /// whatever is missing, so untouched models share their parent's
    /// `Arc<PackedOpModel>` and only dirty keys pay the repack — all of
    /// it off the estimate hot path, inside the commit lock.
    packed: HashMap<ModelKey, Arc<PackedOpModel>>,
    profiles: BTreeMap<SystemId, Arc<CostingProfile>>,
    lineage: SnapshotLineage,
}

impl SnapshotBuilder {
    fn from_snapshot(base: &ModelSnapshot, label: &str) -> Self {
        SnapshotBuilder {
            models: base.models.clone(),
            packed: base.packed.clone(),
            profiles: base.profiles.clone(),
            lineage: SnapshotLineage {
                parent: Some(base.epoch.get()),
                label: label.to_string(),
                entries_trained: 0,
                models_retrained: 0,
                rmse_pct_after: None,
                restores: None,
            },
        }
    }

    fn build(mut self, epoch: Epoch) -> ModelSnapshot {
        // Re-derive packed forms for every key the transaction dirtied
        // (or newly inserted); drop any stragglers whose model was
        // removed. Publication-time invariant: same key set, and each
        // packed entry derived from exactly the model it sits next to.
        let models = &self.models;
        self.packed.retain(|k, _| models.contains_key(k));
        for (key, flow) in &self.models {
            if !self.packed.contains_key(key) {
                self.packed.insert(key.clone(), Arc::new(flow.model.pack()));
            }
        }
        ModelSnapshot {
            epoch,
            lineage: self.lineage,
            models: self.models,
            packed: self.packed,
            profiles: self.profiles,
        }
    }

    /// Inserts (or replaces) the model for `(system, op)`.
    pub fn insert_model(&mut self, system: SystemId, op: OperatorKind, flow: LogicalOpCosting) {
        let key = (system, op);
        self.packed.remove(&key);
        self.models.insert(key, Arc::new(flow));
    }

    /// Removes the model for `(system, op)`; true when one was present.
    pub fn remove_model(&mut self, system: &SystemId, op: OperatorKind) -> bool {
        let q = ModelKeyRef { system, op };
        self.packed.remove(&q as &dyn ModelKeyQuery);
        self.models.remove(&q as &dyn ModelKeyQuery).is_some()
    }

    /// Read access to a staged model.
    pub fn model(&self, system: &SystemId, op: OperatorKind) -> Option<&Arc<LogicalOpCosting>> {
        self.models
            .get(&ModelKeyRef { system, op } as &dyn ModelKeyQuery)
    }

    /// Copy-on-write update of one staged model: the entry is cloned
    /// out of the shared snapshot (if still shared), mutated in place,
    /// and re-staged. Returns `None` when the model is not registered.
    /// The key's packed form is evicted and re-derived at build time.
    pub fn update_model<R>(
        &mut self,
        system: &SystemId,
        op: OperatorKind,
        f: impl FnOnce(&mut LogicalOpCosting) -> R,
    ) -> Option<R> {
        let q = ModelKeyRef { system, op };
        let entry = self.models.get_mut(&q as &dyn ModelKeyQuery)?;
        self.packed.remove(&q as &dyn ModelKeyQuery);
        Some(f(Arc::make_mut(entry)))
    }

    /// Attaches (or replaces) a hybrid costing profile.
    pub fn insert_profile(&mut self, profile: CostingProfile) {
        self.profiles
            .insert(profile.system.clone(), Arc::new(profile));
    }

    /// Copy-on-write update of one staged profile.
    pub fn update_profile<R>(
        &mut self,
        system: &SystemId,
        f: impl FnOnce(&mut CostingProfile) -> R,
    ) -> Option<R> {
        let entry = self.profiles.get_mut(system)?;
        Some(f(Arc::make_mut(entry)))
    }

    /// Replaces the staged content wholesale with `snapshot`'s,
    /// recording the restored epoch in the lineage (rollback). The
    /// restored snapshot's packed forms are reused as-is.
    pub fn restore_from(&mut self, snapshot: &ModelSnapshot) {
        self.models = snapshot.models.clone();
        self.packed = snapshot.packed.clone();
        self.profiles = snapshot.profiles.clone();
        self.lineage.restores = Some(snapshot.epoch.get());
    }

    /// Accumulates tuning stats into the lineage of the snapshot being
    /// built (`rmse_pct_after` keeps the last reported value).
    pub fn note_training(&mut self, entries_used: usize, rmse_pct_after: f64) {
        self.lineage.entries_trained += entries_used;
        self.lineage.models_retrained += 1;
        if rmse_pct_after.is_finite() {
            self.lineage.rmse_pct_after = Some(rmse_pct_after);
        }
    }
}

/// The snapshot publication point: lock-free reads, serialised writes.
///
/// Readers call [`EpochStore::load`] — an atomic pointer load through
/// the `arc-swap` cell, never a lock. Writers take the `commit` mutex
/// (rank [`parking_lot::rank::EPOCH_COMMIT`]), stage changes on a
/// [`SnapshotBuilder`], and publish a new snapshot with the epoch
/// bumped by one. Retraining inside a transaction blocks other
/// *writers*, never readers.
pub struct EpochStore {
    cell: ArcSwap<ModelSnapshot>,
    commit: Mutex<()>,
}

impl EpochStore {
    /// A store holding the empty genesis snapshot (epoch 0).
    pub fn new() -> Self {
        let store = EpochStore {
            cell: ArcSwap::new(Arc::new(ModelSnapshot::genesis())),
            commit: Mutex::new(()),
        };
        store.commit.set_rank(parking_lot::rank::EPOCH_COMMIT);
        store.cell.set_rank(parking_lot::rank::EPOCH_RETIRED);
        store
    }

    /// Pins the current snapshot. Lock-free; the returned `Arc` stays
    /// valid (and immutable) for as long as it is held.
    pub fn load(&self) -> Arc<ModelSnapshot> {
        self.cell.load_full()
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.load().epoch
    }

    /// Runs a clone-modify-publish transaction: `f` stages changes on a
    /// builder seeded from the current snapshot, and the result is
    /// published as the next epoch. Returns `f`'s result and the
    /// published snapshot.
    pub fn transaction<R>(
        &self,
        label: &str,
        f: impl FnOnce(&mut SnapshotBuilder) -> R,
    ) -> (R, Arc<ModelSnapshot>) {
        match self.try_transaction::<R, std::convert::Infallible>(label, |tx| Ok(f(tx))) {
            Ok(pair) => pair,
            Err(never) => match never {},
        }
    }

    /// [`EpochStore::transaction`] for fallible staging: when `f`
    /// returns `Err` the transaction aborts and **nothing is
    /// published** — the current snapshot and epoch are unchanged.
    pub fn try_transaction<R, E>(
        &self,
        label: &str,
        f: impl FnOnce(&mut SnapshotBuilder) -> Result<R, E>,
    ) -> Result<(R, Arc<ModelSnapshot>), E> {
        let _commit = self.commit.lock();
        let current = self.cell.load_full();
        let mut tx = SnapshotBuilder::from_snapshot(&current, label);
        let out = f(&mut tx)?;
        let next = Arc::new(tx.build(current.epoch.next()));
        self.cell.store(Arc::clone(&next));
        Ok((out, next))
    }

    /// Publishes a content-identical snapshot under a new epoch (used
    /// by cache-invalidation tests and churn benchmarks; estimates must
    /// be bit-identical across a republish).
    pub fn republish(&self, label: &str) -> Arc<ModelSnapshot> {
        self.transaction(label, |_| ()).1
    }

    /// Publishes a new epoch whose content is `snapshot`'s — rollback
    /// to (or restore of) a previously persisted model state. The
    /// lineage records both the current parent and the restored epoch.
    pub fn rollback_to(&self, snapshot: &ModelSnapshot) -> Arc<ModelSnapshot> {
        self.transaction("rollback", |tx| tx.restore_from(snapshot))
            .1
    }
}

impl Default for EpochStore {
    fn default() -> Self {
        EpochStore::new()
    }
}

impl std::fmt::Debug for EpochStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochStore")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// What one [`TuningPipeline`] pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Epoch published by the pass, `None` when no model was due (no
    /// epoch bump happens for an empty pass).
    pub epoch: Option<Epoch>,
    /// Per-model tuning reports, sorted by model key.
    pub reports: Vec<(ModelKey, TuneReport)>,
    /// Total log entries drained across all retrained models.
    pub entries_drained: usize,
}

/// The offline-tuning worker (§3 "periodically, this log is fed to the
/// neural network model"): drains execution logs, retrains every model
/// with enough pending observations, and publishes all results in one
/// epoch bump.
#[derive(Debug, Clone)]
pub struct TuningPipeline {
    config: FitConfig,
    min_entries: usize,
}

impl TuningPipeline {
    /// A pipeline retraining with `config`; by default any model with
    /// at least one pending log entry is due.
    pub fn new(config: FitConfig) -> Self {
        TuningPipeline {
            config,
            min_entries: 1,
        }
    }

    /// Only retrain models with at least `n` pending log entries.
    pub fn with_min_entries(mut self, n: usize) -> Self {
        self.min_entries = n.max(1);
        self
    }

    /// Runs one pass over `store`: every due model is retrained inside
    /// a single transaction and the results are swapped in as one epoch
    /// bump. Readers keep serving the previous snapshot throughout.
    pub fn run_once(&self, store: &EpochStore) -> PipelineReport {
        let (reports, published) = store.transaction("tuning-pipeline", |tx| {
            let mut due: Vec<ModelKey> = Vec::new();
            for (key, flow) in tx.models.iter() {
                if flow.log.len() >= self.min_entries {
                    due.push(key.clone());
                }
            }
            due.sort();
            let mut reports: Vec<(ModelKey, TuneReport)> = Vec::new();
            for key in due {
                let Some(report) =
                    tx.update_model(&key.0, key.1, |flow| flow.offline_tune(&self.config))
                else {
                    continue;
                };
                tx.note_training(report.entries_used, report.rmse_pct_after);
                reports.push((key, report));
            }
            reports
        });
        if reports.is_empty() {
            // The no-op transaction above still published an epoch; that
            // is harmless (content-identical republish) but we report
            // `None` so callers can tell nothing was retrained.
            return PipelineReport {
                epoch: None,
                reports,
                entries_drained: 0,
            };
        }
        let entries_drained = reports.iter().map(|(_, r)| r.entries_used).sum();
        PipelineReport {
            epoch: Some(published.epoch()),
            reports,
            entries_drained,
        }
    }

    /// [`TuningPipeline::run_once`] with the decision trail: emits one
    /// [`Event::TuningPass`] per retrained model.
    pub fn run_once_traced(&self, store: &EpochStore, tracer: &Tracer) -> PipelineReport {
        let report = self.run_once(store);
        for (key, tune) in &report.reports {
            tracer.emit(|| Event::TuningPass {
                system: key.0.to_string(),
                operator: key.1.to_string(),
                entries_used: tune.entries_used,
                dims_expanded: tune.dims_expanded.len(),
                rmse_pct_after: tune.rmse_pct_after,
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical_op::model::LogicalOpModel;
    use neuro::Dataset;

    fn agg_flow() -> LogicalOpCosting {
        let mut inputs = vec![];
        let mut targets = vec![];
        for r in 1..=15 {
            for s in 1..=4 {
                let rows = r as f64 * 1e5;
                let size = s as f64 * 100.0;
                inputs.push(vec![rows, size]);
                targets.push(1.0 + 2e-6 * rows + 0.01 * size);
            }
        }
        let (model, _) = LogicalOpModel::fit(
            OperatorKind::Aggregation,
            &["rows", "size"],
            &Dataset::new(inputs, targets),
            &FitConfig::fast(),
        );
        LogicalOpCosting::new(model)
    }

    fn hive() -> SystemId {
        SystemId::new("hive-a")
    }

    #[test]
    fn genesis_store_is_empty_at_epoch_zero() {
        let store = EpochStore::new();
        let snap = store.load();
        assert_eq!(snap.epoch(), Epoch::ZERO);
        assert!(snap.is_empty());
        assert_eq!(snap.lineage().parent, None);
        assert_eq!(snap.lineage().label, "genesis");
    }

    #[test]
    fn transactions_bump_the_epoch_and_record_lineage() {
        let store = EpochStore::new();
        let (_, snap) = store.transaction("register", |tx| {
            tx.insert_model(hive(), OperatorKind::Aggregation, agg_flow());
        });
        assert_eq!(snap.epoch(), Epoch::new(1));
        assert_eq!(snap.lineage().parent, Some(0));
        assert_eq!(snap.lineage().label, "register");
        assert_eq!(store.load().len(), 1);
    }

    #[test]
    fn aborted_transactions_publish_nothing() {
        let store = EpochStore::new();
        let result: Result<((), _), &str> = store.try_transaction("doomed", |tx| {
            tx.insert_model(hive(), OperatorKind::Aggregation, agg_flow());
            Err("abort")
        });
        assert_eq!(result.unwrap_err(), "abort");
        assert_eq!(store.epoch(), Epoch::ZERO);
        assert!(store.load().is_empty());
    }

    #[test]
    fn pinned_snapshots_survive_later_publications() {
        let store = EpochStore::new();
        store.transaction("register", |tx| {
            tx.insert_model(hive(), OperatorKind::Aggregation, agg_flow());
        });
        let pinned = store.load();
        store.transaction("remove", |tx| {
            assert!(tx.remove_model(&hive(), OperatorKind::Aggregation));
        });
        // The pinned snapshot still serves the removed model; the live
        // snapshot does not.
        assert!(pinned.model(&hive(), OperatorKind::Aggregation).is_some());
        assert!(store.load().is_empty());
        assert!(pinned.epoch() < store.epoch());
    }

    #[test]
    fn update_model_is_copy_on_write() {
        let store = EpochStore::new();
        store.transaction("register", |tx| {
            tx.insert_model(hive(), OperatorKind::Aggregation, agg_flow());
        });
        let before = store.load();
        let before_len = before
            .model(&hive(), OperatorKind::Aggregation)
            .map(|m| m.log.len());
        store.transaction("observe", |tx| {
            let touched = tx.update_model(&hive(), OperatorKind::Aggregation, |flow| {
                flow.observe_detached(&[5e5, 200.0], 2.0);
            });
            assert!(touched.is_some());
        });
        // The old snapshot's model is untouched; the new one logged it.
        assert_eq!(
            before
                .model(&hive(), OperatorKind::Aggregation)
                .map(|m| m.log.len()),
            before_len
        );
        assert_eq!(
            store
                .load()
                .model(&hive(), OperatorKind::Aggregation)
                .map(|m| m.log.len()),
            Some(1)
        );
    }

    #[test]
    fn snapshots_carry_packed_forms_for_every_model() {
        let store = EpochStore::new();
        store.transaction("register", |tx| {
            tx.insert_model(hive(), OperatorKind::Aggregation, agg_flow());
        });
        let snap = store.load();
        let flow = snap.model(&hive(), OperatorKind::Aggregation).unwrap();
        let packed = snap.packed(&hive(), OperatorKind::Aggregation).unwrap();
        let mut scratch = crate::logical_op::packed::PackedOpScratch::new();
        let x = [7e5, 250.0];
        assert_eq!(
            flow.model.predict_nn(&x).to_bits(),
            packed.predict_one(&x, &mut scratch).to_bits()
        );
        // Removed models lose their packed form with them.
        store.transaction("remove", |tx| {
            tx.remove_model(&hive(), OperatorKind::Aggregation);
        });
        assert!(store
            .load()
            .packed(&hive(), OperatorKind::Aggregation)
            .is_none());
    }

    #[test]
    fn republish_reuses_packed_forms_and_cow_update_rederives_them() {
        let store = EpochStore::new();
        store.transaction("register", |tx| {
            tx.insert_model(hive(), OperatorKind::Aggregation, agg_flow());
        });
        let before = store.load();
        let republished = store.republish("republish");
        // Content-identical republish: the packed Arc is shared, not
        // re-derived.
        assert!(Arc::ptr_eq(
            before.packed(&hive(), OperatorKind::Aggregation).unwrap(),
            republished
                .packed(&hive(), OperatorKind::Aggregation)
                .unwrap()
        ));
        // A COW update dirties the key: the new snapshot repacks from
        // the mutated model and stays bit-consistent with it.
        store.transaction("observe", |tx| {
            tx.update_model(&hive(), OperatorKind::Aggregation, |flow| {
                flow.observe_detached(&[5e5, 200.0], 2.0);
            });
        });
        let after = store.load();
        let flow = after.model(&hive(), OperatorKind::Aggregation).unwrap();
        let packed = after.packed(&hive(), OperatorKind::Aggregation).unwrap();
        let mut scratch = crate::logical_op::packed::PackedOpScratch::new();
        let x = [9e5, 150.0];
        assert_eq!(
            flow.model.predict_nn(&x).to_bits(),
            packed.predict_one(&x, &mut scratch).to_bits()
        );
    }

    #[test]
    fn rollback_restores_content_under_a_new_epoch() {
        let store = EpochStore::new();
        store.transaction("register", |tx| {
            tx.insert_model(hive(), OperatorKind::Aggregation, agg_flow());
        });
        let good = store.load();
        store.transaction("remove", |tx| {
            tx.remove_model(&hive(), OperatorKind::Aggregation);
        });
        assert!(store.load().is_empty());
        let restored = store.rollback_to(&good);
        // New epoch, old content, lineage remembers both.
        assert!(restored.epoch() > good.epoch());
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.lineage().restores, Some(good.epoch().get()));
        assert_eq!(restored.lineage().label, "rollback");
    }

    #[test]
    fn tuning_pipeline_retrains_due_models_in_one_epoch_bump() {
        let store = EpochStore::new();
        store.transaction("register", |tx| {
            let mut flow = agg_flow();
            let mut rows = 1.6e6;
            while rows <= 2.6e6 {
                flow.observe_detached(&[rows, 200.0], 1.0 + 2e-6 * rows + 2.0);
                rows += 1e5;
            }
            tx.insert_model(hive(), OperatorKind::Aggregation, flow);
            tx.insert_model(
                SystemId::new("presto-b"),
                OperatorKind::Aggregation,
                agg_flow(),
            );
        });
        let before = store.epoch();
        let pipeline = TuningPipeline::new(FitConfig::fast());
        let report = pipeline.run_once(&store);
        // Only the model with pending log entries was retrained, and
        // exactly one epoch was published for the whole pass.
        assert_eq!(report.reports.len(), 1);
        assert!(report.entries_drained > 0);
        assert_eq!(report.epoch, Some(store.epoch()));
        assert_eq!(store.epoch().get(), before.get() + 1);
        let snap = store.load();
        let tuned = snap
            .model(&hive(), OperatorKind::Aggregation)
            .expect("model");
        assert!(tuned.log.is_empty(), "tuning must drain the log");
        assert_eq!(snap.lineage().models_retrained, 1);
        assert!(snap.lineage().entries_trained > 0);
    }

    #[test]
    fn idle_pipeline_pass_reports_nothing_retrained() {
        let store = EpochStore::new();
        store.transaction("register", |tx| {
            tx.insert_model(hive(), OperatorKind::Aggregation, agg_flow());
        });
        let pipeline = TuningPipeline::new(FitConfig::fast()).with_min_entries(4);
        let report = pipeline.run_once(&store);
        assert_eq!(report.epoch, None);
        assert!(report.reports.is_empty());
        assert_eq!(report.entries_drained, 0);
    }
}
