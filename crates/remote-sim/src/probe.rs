//! Probe (primitive) queries.
//!
//! Fig. 5 of the paper describes how each sub-operator is measured
//! *without instrumenting the remote system*: submit primitive queries
//! whose only variable work is the target sub-op (plus a DFS read, which
//! is measured first and subtracted). [`ProbeSpec`] is the simulator-side
//! representation of those primitive queries; the costing crate submits
//! them through [`crate::engine::RemoteSystem::submit_probe`] and only
//! ever sees elapsed times.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of primitive query, mirroring the numbered footnotes of
/// Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeKind {
    /// ¹ "Query that reads from HDFS and does not produce any output."
    ReadDfs,
    /// ² "Query that reads from HDFS and writes back to HDFS."
    ReadWriteDfs,
    /// ³ "Query that reads from HDFS and writes content to local file."
    ReadDfsWriteLocal,
    /// Reads from HDFS and re-reads the data from the local file system
    /// (isolates ReadLocal).
    ReadDfsReadLocal,
    /// ⁴ "Query that reads from HDFS, produces no output, and broadcasts a
    /// file (distributed cache) to all nodes (without reading it)."
    ReadDfsBroadcast,
    /// ⁵ "Query that reads from HDFS, builds a hash table for each HDFS
    /// block, and does not produce any output."
    ReadDfsHashBuild,
    /// Reads from HDFS and probes a pre-built hash table per record.
    ReadDfsHashProbe,
    /// Reads from HDFS and sorts each block in memory.
    ReadDfsSort,
    /// Reads from HDFS and scans each block in memory a second time.
    ReadDfsScan,
    /// Reads from HDFS and merges record pairs.
    ReadDfsMerge,
    /// Reads from HDFS and shuffles every record across machines.
    ReadDfsShuffle,
}

impl ProbeKind {
    /// All probe kinds, in a stable order.
    pub const ALL: [ProbeKind; 11] = [
        ProbeKind::ReadDfs,
        ProbeKind::ReadWriteDfs,
        ProbeKind::ReadDfsWriteLocal,
        ProbeKind::ReadDfsReadLocal,
        ProbeKind::ReadDfsBroadcast,
        ProbeKind::ReadDfsHashBuild,
        ProbeKind::ReadDfsHashProbe,
        ProbeKind::ReadDfsSort,
        ProbeKind::ReadDfsScan,
        ProbeKind::ReadDfsMerge,
        ProbeKind::ReadDfsShuffle,
    ];
}

impl fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProbeKind::ReadDfs => "read-dfs",
            ProbeKind::ReadWriteDfs => "read-write-dfs",
            ProbeKind::ReadDfsWriteLocal => "read-dfs-write-local",
            ProbeKind::ReadDfsReadLocal => "read-dfs-read-local",
            ProbeKind::ReadDfsBroadcast => "read-dfs-broadcast",
            ProbeKind::ReadDfsHashBuild => "read-dfs-hash-build",
            ProbeKind::ReadDfsHashProbe => "read-dfs-hash-probe",
            ProbeKind::ReadDfsSort => "read-dfs-sort",
            ProbeKind::ReadDfsScan => "read-dfs-scan",
            ProbeKind::ReadDfsMerge => "read-dfs-merge",
            ProbeKind::ReadDfsShuffle => "read-dfs-shuffle",
        };
        f.write_str(s)
    }
}

/// A fully-specified probe query: what to do, over how many records of
/// what size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeSpec {
    /// The primitive operation.
    pub kind: ProbeKind,
    /// Number of records processed.
    pub rows: u64,
    /// Record size in bytes.
    pub record_bytes: u64,
    /// For [`ProbeKind::ReadDfsHashBuild`]: force the spill regime even if
    /// the data would fit (lets the costing module measure both regimes of
    /// Fig. 13f on one cluster, as the paper does: "We experimented with
    /// both cases and constructed a model for each case").
    pub force_spill: bool,
}

impl ProbeSpec {
    /// Creates a probe.
    pub fn new(kind: ProbeKind, rows: u64, record_bytes: u64) -> Self {
        ProbeSpec {
            kind,
            rows,
            record_bytes,
            force_spill: false,
        }
    }

    /// Marks a hash-build probe as spilling.
    pub fn spilling(mut self) -> Self {
        self.force_spill = true;
        self
    }

    /// Total data volume of the probe.
    pub fn total_bytes(&self) -> u64 {
        self.rows * self.record_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_volume() {
        let p = ProbeSpec::new(ProbeKind::ReadDfs, 1_000_000, 1_000);
        assert_eq!(p.total_bytes(), 1_000_000_000);
        assert!(!p.force_spill);
        assert!(
            ProbeSpec::new(ProbeKind::ReadDfsHashBuild, 1, 1)
                .spilling()
                .force_spill
        );
    }

    #[test]
    fn all_kinds_have_distinct_names() {
        let names: std::collections::HashSet<String> =
            ProbeKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names.len(), ProbeKind::ALL.len());
    }
}
