//! Deterministic execution-time noise.
//!
//! Real clusters never produce identical elapsed times twice; the paper's
//! scatter plots (Figs. 11c, 12c, 13g) show visible spread around the
//! fitted lines. The simulator reproduces that with multiplicative
//! Gaussian noise drawn from a seeded RNG, so runs remain bit-for-bit
//! reproducible while individual queries still jitter.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// A seeded multiplicative-noise source.
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: StdRng,
    /// Relative standard deviation (e.g. 0.04 = 4 %).
    sigma: f64,
}

impl NoiseSource {
    /// Creates a source with the given relative sigma.
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        NoiseSource {
            rng: StdRng::seed_from_u64(seed),
            sigma,
        }
    }

    /// A noiseless source (useful for tests that need exact values).
    pub fn disabled(seed: u64) -> Self {
        NoiseSource::new(seed, 0.0)
    }

    /// Restarts the stream from an explicit seed, keeping sigma. Two
    /// sources reseeded identically produce identical factor sequences
    /// regardless of how many draws either has already made.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// The relative standard deviation this source applies.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns a multiplicative factor `max(0.5, 1 + sigma·N(0,1))`.
    ///
    /// The floor prevents pathological near-zero elapsed times for large
    /// sigma; with the sigmas used here (≤ 8 %) it never triggers in
    /// practice.
    pub fn factor(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        // Box–Muller transform on two uniform draws.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (1.0 + self.sigma * gauss).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_noise_is_exactly_one() {
        let mut n = NoiseSource::disabled(1);
        for _ in 0..10 {
            assert_eq!(n.factor(), 1.0);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = NoiseSource::new(7, 0.05);
        let mut b = NoiseSource::new(7, 0.05);
        for _ in 0..20 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn reseeding_restarts_the_stream() {
        let mut a = NoiseSource::new(1, 0.05);
        let mut b = NoiseSource::new(2, 0.05);
        // Desynchronise b, then reseed both to the same point.
        for _ in 0..13 {
            b.factor();
        }
        a.reseed(99);
        b.reseed(99);
        for _ in 0..20 {
            assert_eq!(a.factor(), b.factor());
        }
        assert_eq!(a.sigma(), 0.05);
    }

    #[test]
    fn noise_has_expected_scale() {
        let mut n = NoiseSource::new(42, 0.05);
        let samples: Vec<f64> = (0..10_000).map(|_| n.factor()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.01, "sd {}", var.sqrt());
    }

    #[test]
    fn factor_never_below_floor() {
        let mut n = NoiseSource::new(3, 0.5);
        for _ in 0..10_000 {
            assert!(n.factor() >= 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn sigma_must_be_sane() {
        NoiseSource::new(1, 1.5);
    }
}
