//! Simulated time.
//!
//! All simulator durations are [`SimDuration`] — a newtype over f64
//! microseconds — so they can never be confused with host wall-clock
//! `std::time::Duration` values.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A simulated duration in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// From microseconds.
    pub fn from_micros(us: f64) -> Self {
        SimDuration(us)
    }

    /// From milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimDuration(ms * 1_000.0)
    }

    /// From seconds.
    pub fn from_secs(s: f64) -> Self {
        SimDuration(s * 1_000_000.0)
    }

    /// As microseconds.
    pub fn as_micros(self) -> f64 {
        self.0
    }

    /// As milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1_000.0
    }

    /// As seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// As minutes.
    pub fn as_mins(self) -> f64 {
        self.0 / 60_000_000.0
    }

    /// As hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3_600_000_000.0
    }

    /// Clamps negative durations (which can arise from noise or model
    /// arithmetic) to zero.
    pub fn max_zero(self) -> Self {
        SimDuration(self.0.max(0.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: f64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: f64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 60_000_000.0 {
            write!(f, "{:.2}min", self.as_mins())
        } else if us >= 1_000_000.0 {
            write!(f, "{:.2}s", self.as_secs())
        } else if us >= 1_000.0 {
            write!(f, "{:.2}ms", self.as_millis())
        } else {
            write!(f, "{us:.2}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let d = SimDuration::from_secs(2.5);
        assert_eq!(d.as_micros(), 2_500_000.0);
        assert_eq!(d.as_millis(), 2_500.0);
        assert_eq!(d.as_secs(), 2.5);
        assert_eq!(SimDuration::from_millis(1.0).as_micros(), 1_000.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_micros(100.0);
        let b = SimDuration::from_micros(50.0);
        assert_eq!((a + b).as_micros(), 150.0);
        assert_eq!((a - b).as_micros(), 50.0);
        assert_eq!((a * 2.0).as_micros(), 200.0);
        assert_eq!((a / 4.0).as_micros(), 25.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_micros(i as f64)).sum();
        assert_eq!(total.as_micros(), 10.0);
    }

    #[test]
    fn max_zero_clamps() {
        let neg = SimDuration::from_micros(-5.0);
        assert_eq!(neg.max_zero(), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros(5.0).max_zero().as_micros(), 5.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(12.0).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12.0).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12.0).to_string(), "12.00s");
        assert_eq!(SimDuration::from_secs(120.0).to_string(), "2.00min");
    }
}
