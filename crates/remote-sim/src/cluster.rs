//! Cluster configuration for a simulated shared-nothing engine.

use serde::{Deserialize, Serialize};

/// Physical layout of a simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Worker (data) nodes.
    pub nodes: u32,
    /// CPU cores per node; `nodes × cores_per_node` is the total task
    /// parallelism — the denominator of the paper's `NumTaskWaves`.
    pub cores_per_node: u32,
    /// Memory per node in bytes.
    pub memory_per_node_bytes: u64,
    /// Distributed-filesystem block size in bytes (one map task per block).
    pub dfs_block_bytes: u64,
    /// Fraction of node memory one task may use for hash tables before the
    /// simulator switches the HashBuild sub-op into its spill regime
    /// (Fig. 13f's "fits in memory" boundary).
    pub task_memory_fraction: f64,
}

impl ClusterConfig {
    /// The paper's evaluation cluster (§7): 3 data nodes, 2 cores and 8 GB
    /// each, with a 32 MB block size chosen so the Fig. 10 tables split
    /// into enough tasks to exercise multi-wave scheduling.
    pub fn paper_hive() -> Self {
        ClusterConfig {
            nodes: 3,
            cores_per_node: 2,
            memory_per_node_bytes: 8 * 1024 * 1024 * 1024,
            dfs_block_bytes: 32 * 1024 * 1024,
            task_memory_fraction: 0.10,
        }
    }

    /// A single-node RDBMS host.
    pub fn single_node(cores: u32, memory_bytes: u64) -> Self {
        ClusterConfig {
            nodes: 1,
            cores_per_node: cores,
            memory_per_node_bytes: memory_bytes,
            dfs_block_bytes: 1024 * 1024 * 1024, // irrelevant: no DFS
            task_memory_fraction: 0.25,
        }
    }

    /// Total parallel task slots.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Number of DFS blocks (and hence map tasks) for a dataset.
    pub fn blocks_for(&self, total_bytes: u64) -> u64 {
        total_bytes.div_ceil(self.dfs_block_bytes).max(1)
    }

    /// Per-task hash-table memory budget in bytes.
    pub fn task_hash_budget_bytes(&self) -> u64 {
        ((self.memory_per_node_bytes as f64 * self.task_memory_fraction)
            / self.cores_per_node as f64) as u64
    }

    /// The paper's `NumTaskWaves`: "total number of tasks … divided by the
    /// total number of parallelism in the system" (§4), rounded up.
    pub fn task_waves(&self, tasks: u64) -> u64 {
        tasks.div_ceil(self.total_cores() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_has_six_slots() {
        let c = ClusterConfig::paper_hive();
        assert_eq!(c.total_cores(), 6);
    }

    #[test]
    fn blocks_round_up_and_floor_at_one() {
        let c = ClusterConfig::paper_hive();
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(32 * 1024 * 1024), 1);
        assert_eq!(c.blocks_for(32 * 1024 * 1024 + 1), 2);
        assert_eq!(c.blocks_for(0), 1);
    }

    #[test]
    fn waves_follow_paper_definition() {
        let c = ClusterConfig::paper_hive(); // 6 slots
        assert_eq!(c.task_waves(1), 1);
        assert_eq!(c.task_waves(6), 1);
        assert_eq!(c.task_waves(7), 2);
        assert_eq!(c.task_waves(13), 3);
        assert_eq!(c.task_waves(0), 1);
    }

    #[test]
    fn hash_budget_divides_by_cores() {
        let c = ClusterConfig::paper_hive();
        let expect = (8.0 * 1024.0 * 1024.0 * 1024.0 * 0.10 / 2.0) as u64;
        assert_eq!(c.task_hash_budget_bytes(), expect);
    }

    #[test]
    fn single_node_shape() {
        let c = ClusterConfig::single_node(8, 1 << 34);
        assert_eq!(c.nodes, 1);
        assert_eq!(c.total_cores(), 8);
    }
}
