//! The remote-system boundary.
//!
//! [`RemoteSystem`] is the only interface the costing crate may use — the
//! same contract the paper has with a real remote system: register tables,
//! submit a SQL query (or a Fig. 5 probe), observe an elapsed time.
//! [`ClusterEngine`] implements it by compiling logical plans to jobs via
//! the persona's hidden cost model.

use crate::{
    cardinality::{CardError, NodeEstimate},
    cluster::ClusterConfig,
    exec::{ExecModel, Job},
    noise::NoiseSource,
    personas::Persona,
    physical::{AggAlgorithm, JoinAlgorithm},
    probe::ProbeSpec,
    remote_opt::{choose_agg, choose_join},
    time::SimDuration,
};
use catalog::{Capability, Catalog, RemoteSystemProfile, SystemId, SystemKind, TableDef};
use sqlkit::logical::{LogicalOp, LogicalPlan};
use telemetry::{Counter, Event, Gauge, Histogram, Telemetry, Tracer};

/// Histogram bounds (seconds) for simulated remote executions.
const EXECUTION_SECS_BOUNDS: [f64; 7] = [0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3600.0];

/// Pre-created telemetry handles for one engine, labelled by system id.
struct EngineTelemetry {
    tracer: Tracer,
    queries: Counter,
    execution_secs: Histogram,
    busy_secs: Gauge,
}

impl EngineTelemetry {
    fn new(id: &SystemId, telemetry: &Telemetry) -> Self {
        let reg = &telemetry.metrics;
        reg.set_help(
            "remote_queries_total",
            "Queries and probes executed on a simulated remote system.",
        );
        reg.set_help(
            "remote_execution_secs",
            "Distribution of simulated remote execution times, seconds.",
        );
        reg.set_help(
            "remote_busy_secs",
            "Cumulative busy time of a simulated remote system, seconds.",
        );
        let system = id.to_string();
        let labels = [("system", system.as_str())];
        EngineTelemetry {
            tracer: telemetry.tracer.clone(),
            queries: reg.counter("remote_queries_total", &labels),
            execution_secs: reg.histogram("remote_execution_secs", &labels, &EXECUTION_SECS_BOUNDS),
            busy_secs: reg.gauge("remote_busy_secs", &labels),
        }
    }
}

/// The observable result of one remote execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Elapsed wall-clock time inside the remote system.
    pub elapsed: SimDuration,
    /// Rows produced.
    pub output_rows: u64,
    /// Average output row width in bytes.
    pub output_row_bytes: u64,
    /// The join algorithm the remote optimizer chose, if the query joined.
    pub join_algorithm: Option<JoinAlgorithm>,
    /// The aggregation algorithm chosen, if the query aggregated.
    pub agg_algorithm: Option<AggAlgorithm>,
}

/// Errors surfaced by a remote engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL failed to parse or plan.
    Sql(String),
    /// The plan references tables this system does not store.
    Cardinality(CardError),
    /// The system does not support an operation in the plan (§2: "a remote
    /// system may not have the capability to perform a join operation").
    CapabilityMissing(Capability),
    /// A plan shape the simulator does not model.
    Unsupported(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Sql(m) => write!(f, "sql error: {m}"),
            EngineError::Cardinality(e) => write!(f, "{e}"),
            EngineError::CapabilityMissing(c) => {
                write!(f, "remote system does not support {c:?}")
            }
            EngineError::Unsupported(m) => write!(f, "unsupported plan shape: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CardError> for EngineError {
    fn from(e: CardError) -> Self {
        EngineError::Cardinality(e)
    }
}

/// The interface a remote system exposes to IntelliSphere.
pub trait RemoteSystem {
    /// This system's id.
    fn id(&self) -> &SystemId;

    /// The registration profile (§2).
    fn profile(&self) -> &RemoteSystemProfile;

    /// The tables this system stores.
    fn catalog(&self) -> &Catalog;

    /// Executes a SQL query and reports the observed execution.
    fn submit_sql(&mut self, sql: &str) -> Result<Execution, EngineError>;

    /// Executes an already-planned query.
    fn submit_plan(&mut self, plan: &LogicalPlan) -> Result<Execution, EngineError>;

    /// Executes a Fig. 5 primitive probe query.
    fn submit_probe(&mut self, probe: &ProbeSpec) -> Result<Execution, EngineError>;

    /// Cumulative busy time across everything submitted so far — the
    /// "total training time" axis of Figs. 11a/12a/13a.
    fn total_busy(&self) -> SimDuration;

    /// Number of queries/probes executed.
    fn queries_executed(&self) -> u64;
}

/// A simulated cluster engine (Hive, Spark, or RDBMS persona).
pub struct ClusterEngine {
    id: SystemId,
    persona: Persona,
    cluster: ClusterConfig,
    profile: RemoteSystemProfile,
    catalog: Catalog,
    noise: NoiseSource,
    busy: SimDuration,
    queries: u64,
    telemetry: Option<EngineTelemetry>,
}

impl ClusterEngine {
    /// Creates an engine. `seed` drives the execution-time noise.
    pub fn new(id: &str, persona: Persona, cluster: ClusterConfig, seed: u64) -> Self {
        let sys_id = SystemId::new(id);
        let profile = RemoteSystemProfile::new(
            sys_id.clone(),
            persona.kind,
            cluster.nodes,
            cluster.cores_per_node,
            cluster.memory_per_node_bytes,
            vec![
                Capability::Filter,
                Capability::Project,
                Capability::Join,
                Capability::Aggregate,
            ],
        );
        let mut catalog = Catalog::new();
        catalog
            .register_system(profile.clone())
            .expect("fresh catalog");
        let noise = NoiseSource::new(seed, persona.noise_sigma);
        ClusterEngine {
            id: sys_id,
            persona,
            cluster,
            profile,
            catalog,
            noise,
            busy: SimDuration::ZERO,
            queries: 0,
            telemetry: None,
        }
    }

    /// Publishes this engine's activity into a telemetry handle:
    /// per-system `remote_queries_total`, `remote_execution_secs`, and
    /// `remote_busy_secs` metrics, plus one
    /// [`Event::RemoteExecution`] per finished query when a tracing
    /// subscriber is attached. Handles are created once, so the
    /// per-execution cost is a few atomic updates.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = Some(EngineTelemetry::new(&self.id, telemetry));
        self
    }

    /// The paper's evaluation target: a Hive persona on the §7 cluster.
    pub fn paper_hive(id: &str, seed: u64) -> Self {
        ClusterEngine::new(
            id,
            crate::personas::hive_persona(),
            ClusterConfig::paper_hive(),
            seed,
        )
    }

    /// Disables execution noise (tests and calibration baselines).
    pub fn without_noise(mut self) -> Self {
        self.noise = NoiseSource::disabled(0);
        self
    }

    /// Reseeds the execution-noise stream explicitly, keeping the
    /// persona's sigma. Two engines driven through identical query
    /// sequences after identical reseeds report identical elapsed times —
    /// the determinism contract the evaluation experiments rely on.
    pub fn with_noise_seed(mut self, seed: u64) -> Self {
        self.noise = NoiseSource::new(seed, self.persona.noise_sigma);
        self
    }

    /// Registers a table as stored on this system.
    pub fn register_table(&mut self, mut table: TableDef) -> Result<(), EngineError> {
        table.location = self.id.clone();
        self.catalog
            .register_table(table)
            .map_err(|e| EngineError::Sql(e.to_string()))
    }

    /// Restricts the advertised capabilities (to model remotes that e.g.
    /// cannot join).
    pub fn restrict_capabilities(&mut self, caps: Vec<Capability>) {
        self.profile.capabilities = caps;
    }

    fn exec_model(&self) -> ExecModel<'_> {
        ExecModel {
            micro: &self.persona.micro,
            cluster: &self.cluster,
        }
    }

    /// Runs jobs through the clock: sums elapsed, applies noise, accrues
    /// busy time.
    fn finish(
        &mut self,
        jobs: &[Job],
        out: NodeEstimate,
        join_algorithm: Option<JoinAlgorithm>,
        agg_algorithm: Option<AggAlgorithm>,
    ) -> Execution {
        let raw: SimDuration = jobs
            .iter()
            .map(|j| j.elapsed(&self.cluster, &self.persona.overheads))
            .sum();
        let elapsed = (raw * self.noise.factor()).max_zero();
        self.busy += elapsed;
        self.queries += 1;
        // Attribute the engine-side *simulated* elapsed time to any
        // request span sampled on this thread. RemoteExec is simulated
        // seconds, not wall time, so the span layer keeps it out of the
        // wall-clock stage identities.
        telemetry::span::attribute(telemetry::span::Stage::RemoteExec, elapsed.as_secs() * 1e6);
        if let Some(t) = &self.telemetry {
            t.queries.inc();
            t.execution_secs.observe(elapsed.as_secs());
            t.busy_secs.set(self.busy.as_secs());
            let queries = self.queries;
            t.tracer.emit(|| Event::RemoteExecution {
                system: self.id.to_string(),
                secs: elapsed.as_secs(),
                queries_done: queries,
            });
        }
        Execution {
            elapsed,
            output_rows: out.rows.round().max(0.0) as u64,
            output_row_bytes: out.row_bytes.round().max(1.0) as u64,
            join_algorithm,
            agg_algorithm,
        }
    }

    /// Explains how this engine would execute a query, without running it
    /// (no clock advance, no noise).
    pub fn explain(&self, sql: &str) -> Result<Explain, EngineError> {
        let plan = sqlkit::sql_to_plan(sql).map_err(|e| EngineError::Sql(e.to_string()))?;
        let compiled = compile(
            &self.catalog,
            &self.profile,
            &self.persona,
            &self.cluster,
            &self.exec_model(),
            &plan,
        )?;
        let estimated: SimDuration = compiled
            .jobs
            .iter()
            .map(|j| j.elapsed(&self.cluster, &self.persona.overheads))
            .sum();
        Ok(Explain {
            logical: plan.root.describe(),
            join_algorithm: compiled.join_algorithm,
            agg_algorithm: compiled.agg_algorithm,
            stages: compiled
                .jobs
                .iter()
                .flat_map(|j| &j.stages)
                .map(|s| (s.tasks, s.io_us / 1e6, s.cpu_us / 1e6))
                .collect(),
            estimated_rows: compiled.out.rows.round().max(0.0) as u64,
            estimated_secs: estimated.as_secs(),
        })
    }

    /// Compiles and costs a plan.
    fn run_plan(&mut self, plan: &LogicalPlan) -> Result<Execution, EngineError> {
        let compiled = compile(
            &self.catalog,
            &self.profile,
            &self.persona,
            &self.cluster,
            &self.exec_model(),
            plan,
        )?;
        Ok(self.finish(
            &compiled.jobs,
            compiled.out,
            compiled.join_algorithm,
            compiled.agg_algorithm,
        ))
    }
}

impl RemoteSystem for ClusterEngine {
    fn id(&self) -> &SystemId {
        &self.id
    }

    fn profile(&self) -> &RemoteSystemProfile {
        &self.profile
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn submit_sql(&mut self, sql: &str) -> Result<Execution, EngineError> {
        let plan = sqlkit::sql_to_plan(sql).map_err(|e| EngineError::Sql(e.to_string()))?;
        self.run_plan(&plan)
    }

    fn submit_plan(&mut self, plan: &LogicalPlan) -> Result<Execution, EngineError> {
        self.run_plan(plan)
    }

    fn submit_probe(&mut self, probe: &ProbeSpec) -> Result<Execution, EngineError> {
        let job = self.exec_model().probe_job(probe);
        let out = NodeEstimate {
            rows: 0.0,
            row_bytes: 1.0,
        };
        Ok(self.finish(&[job], out, None, None))
    }

    fn total_busy(&self) -> SimDuration {
        self.busy
    }

    fn queries_executed(&self) -> u64 {
        self.queries
    }
}

/// A compiled query: the jobs to run plus bookkeeping.
/// A human-readable physical-plan explanation (the engine's `EXPLAIN`).
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// The logical plan, one-line form.
    pub logical: String,
    /// The chosen join algorithm, if any.
    pub join_algorithm: Option<JoinAlgorithm>,
    /// The chosen aggregation algorithm, if any.
    pub agg_algorithm: Option<AggAlgorithm>,
    /// Per-job stage summaries: (tasks, io work s, cpu work s).
    pub stages: Vec<(u64, f64, f64)>,
    /// Estimated output rows.
    pub estimated_rows: u64,
    /// Estimated elapsed time (noise-free), seconds.
    pub estimated_secs: f64,
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "plan: {}", self.logical)?;
        if let Some(a) = self.join_algorithm {
            writeln!(f, "join algorithm: {a}")?;
        }
        if let Some(a) = self.agg_algorithm {
            writeln!(f, "aggregation algorithm: {a}")?;
        }
        for (i, (tasks, io, cpu)) in self.stages.iter().enumerate() {
            writeln!(
                f,
                "stage {i}: {tasks} task(s), io work {io:.2}s, cpu work {cpu:.2}s"
            )?;
        }
        write!(
            f,
            "estimated: {} rows in {:.2}s",
            self.estimated_rows, self.estimated_secs
        )
    }
}

/// A compiled query: the jobs to run plus bookkeeping.
struct Compiled {
    jobs: Vec<Job>,
    out: NodeEstimate,
    join_algorithm: Option<JoinAlgorithm>,
    agg_algorithm: Option<AggAlgorithm>,
}

/// Compiles a logical plan into jobs using the persona's optimizer and the
/// shared query analysis of [`crate::analyze`].
fn compile(
    catalog: &Catalog,
    profile: &RemoteSystemProfile,
    persona: &Persona,
    cluster: &ClusterConfig,
    em: &ExecModel<'_>,
    plan: &LogicalPlan,
) -> Result<Compiled, EngineError> {
    let analysis = crate::analyze::analyze(catalog, plan)?;
    let mut jobs = Vec::new();
    let mut join_algorithm = None;
    let mut agg_algorithm = None;
    let distributed = !matches!(persona.kind, SystemKind::Rdbms | SystemKind::Teradata);

    match analysis.core {
        crate::analyze::CoreKind::Join => {
            if !profile.supports(Capability::Join) {
                return Err(EngineError::CapabilityMissing(Capability::Join));
            }
            // Nested joins on the left compile recursively as upstream jobs.
            if analysis.nested_join {
                if let Some(left_plan) = nested_left_join_plan(plan) {
                    let inner = compile(catalog, profile, persona, cluster, em, &left_plan)?;
                    jobs.extend(inner.jobs);
                }
            }
            let (info, ctx) = analysis.join.expect("join analysis present");
            let algo = choose_join(persona.kind, &persona.rules, cluster, &info, &ctx);
            join_algorithm = Some(algo);
            jobs.push(em.join_job(algo, &info));
        }
        crate::analyze::CoreKind::Scan => {
            if analysis.agg.is_none() {
                let scan_in = analysis.scan_in.expect("scan analysis present");
                jobs.push(em.scan_job(
                    scan_in.rows,
                    scan_in.row_bytes,
                    analysis.root.rows,
                    analysis.root.row_bytes,
                    distributed,
                ));
            }
        }
    }

    if let Some(a) = analysis.agg {
        if !profile.supports(Capability::Aggregate) {
            return Err(EngineError::CapabilityMissing(Capability::Aggregate));
        }
        let algo = choose_agg(cluster, &a);
        agg_algorithm = Some(algo);
        jobs.push(em.agg_job(algo, &a, distributed));
    }

    // An ORDER BY adds a final sort pass over its input (the paper's sort
    // sub-op applied to the result stream). LIMIT itself is free — it only
    // reduces what is returned (already reflected in `analysis.root`).
    if let Some(sort_in) = analysis.sort_in {
        jobs.push(em.sort_job(sort_in.rows, sort_in.row_bytes, distributed));
    }

    Ok(Compiled {
        jobs,
        out: analysis.root,
        join_algorithm,
        agg_algorithm,
    })
}

/// Extracts the left input of the topmost join as a standalone plan (for
/// recursive compilation of multi-join queries).
fn nested_left_join_plan(plan: &LogicalPlan) -> Option<LogicalPlan> {
    fn find_join(op: &LogicalOp) -> Option<&LogicalOp> {
        match op {
            LogicalOp::Join { .. } => Some(op),
            LogicalOp::Filter { input, .. }
            | LogicalOp::Project { input, .. }
            | LogicalOp::Sort { input, .. }
            | LogicalOp::Limit { input, .. }
            | LogicalOp::Aggregate { input, .. } => find_join(input),
            LogicalOp::Scan { .. } => None,
        }
    }
    if let Some(LogicalOp::Join { left, .. }) = find_join(&plan.root) {
        if left.join_count() > 0 {
            return Some(LogicalPlan {
                root: left.as_ref().clone(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::{ColumnDef, ColumnStats, TableStats};

    /// Registers a Fig. 10-style table `name` with `rows` rows of `size`
    /// bytes on the engine.
    fn add_table(e: &mut ClusterEngine, name: &str, rows: u64, size: u64) {
        let mut stats = TableStats::new(rows, size);
        let mut schema = Vec::new();
        for dup in [1u64, 2, 5, 10, 20, 50, 100] {
            let col = format!("a{dup}");
            stats = stats.with_column(&col, ColumnStats::duplicated_range(rows, dup));
            schema.push(ColumnDef::int(&col));
        }
        stats = stats.with_column("z", ColumnStats::constant(0));
        schema.push(ColumnDef::int("z"));
        schema.push(ColumnDef::chars(
            "dummy",
            size.saturating_sub(32).max(1) as u32,
        ));
        let t = TableDef::new(name, schema, stats, SystemId::new("ignored"));
        e.register_table(t).unwrap();
    }

    fn hive_engine() -> ClusterEngine {
        let mut e = ClusterEngine::paper_hive("hive-a", 7).without_noise();
        add_table(&mut e, "t_big", 1_000_000, 250);
        add_table(&mut e, "t_small", 100_000, 100);
        add_table(&mut e, "t_tiny", 10_000, 40);
        e
    }

    /// The same query mix every determinism test drives.
    fn run_mix(e: &mut ClusterEngine) -> Vec<SimDuration> {
        [
            "SELECT a1 FROM t_small WHERE a1 < 50000",
            "SELECT r.a1, s.a1 FROM t_big r JOIN t_small s ON r.a1 = s.a1",
            "SELECT a5, SUM(a1) AS s FROM t_big GROUP BY a5",
            "SELECT r.a1, s.a1 FROM t_big r JOIN t_tiny s ON r.a1 = s.a1",
            "SELECT a10, SUM(a2) AS s FROM t_small GROUP BY a10",
        ]
        .iter()
        .map(|sql| e.submit_sql(sql).unwrap().elapsed)
        .collect()
    }

    fn noisy_engine(seed: u64) -> ClusterEngine {
        let mut e = ClusterEngine::paper_hive("hive-a", seed);
        add_table(&mut e, "t_big", 1_000_000, 250);
        add_table(&mut e, "t_small", 100_000, 100);
        add_table(&mut e, "t_tiny", 10_000, 40);
        e
    }

    #[test]
    fn same_seed_runs_report_identical_elapsed_times() {
        let mut a = noisy_engine(42);
        let mut b = noisy_engine(42);
        assert_eq!(run_mix(&mut a), run_mix(&mut b));
        assert_eq!(a.total_busy(), b.total_busy());
        // Different seeds jitter differently (noise is actually applied).
        let mut c = noisy_engine(43);
        assert_ne!(run_mix(&mut a), run_mix(&mut c));
    }

    #[test]
    fn explicit_noise_reseed_overrides_the_construction_seed() {
        let mut a = noisy_engine(1).with_noise_seed(777);
        let mut b = noisy_engine(2).with_noise_seed(777);
        assert_eq!(run_mix(&mut a), run_mix(&mut b));
    }

    #[test]
    fn scan_query_runs_and_reports_output() {
        let mut e = hive_engine();
        let x = e
            .submit_sql("SELECT a1 FROM t_small WHERE a1 < 50000")
            .unwrap();
        assert!(x.elapsed > SimDuration::ZERO);
        assert!((x.output_rows as f64 - 50_000.0).abs() < 1_000.0);
        assert_eq!(e.queries_executed(), 1);
        assert_eq!(e.total_busy(), x.elapsed);
    }

    #[test]
    fn small_build_side_triggers_broadcast_join() {
        let mut e = hive_engine();
        let x = e
            .submit_sql("SELECT r.a1, s.a1 FROM t_big r JOIN t_tiny s ON r.a1 = s.a1")
            .unwrap();
        assert_eq!(x.join_algorithm, Some(JoinAlgorithm::HiveBroadcastJoin));
        assert!((x.output_rows as f64 - 10_000.0).abs() < 100.0);
    }

    #[test]
    fn large_sides_trigger_shuffle_join() {
        let mut e = ClusterEngine::paper_hive("hive-a", 7).without_noise();
        add_table(&mut e, "r_big", 10_000_000, 500);
        add_table(&mut e, "s_big", 8_000_000, 500);
        let x = e
            .submit_sql("SELECT r.a1, s.a1 FROM r_big r JOIN s_big s ON r.a1 = s.a1")
            .unwrap();
        assert_eq!(x.join_algorithm, Some(JoinAlgorithm::HiveShuffleJoin));
    }

    #[test]
    fn aggregation_query_reports_algorithm_and_groups() {
        let mut e = hive_engine();
        let x = e
            .submit_sql("SELECT a5, SUM(a1) AS s FROM t_big GROUP BY a5")
            .unwrap();
        assert_eq!(x.agg_algorithm, Some(AggAlgorithm::HashAggregate));
        assert!((x.output_rows as f64 - 200_000.0).abs() < 10.0);
    }

    #[test]
    fn more_aggregates_cost_more() {
        let mut e = hive_engine();
        let one = e
            .submit_sql("SELECT a5, SUM(a1) AS s1 FROM t_big GROUP BY a5")
            .unwrap();
        let five = e
            .submit_sql(
                "SELECT a5, SUM(a1) AS s1, SUM(a2) AS s2, SUM(a10) AS s3, \
                 SUM(a20) AS s4, SUM(a50) AS s5 FROM t_big GROUP BY a5",
            )
            .unwrap();
        assert!(five.elapsed > one.elapsed);
    }

    #[test]
    fn fig10_threshold_predicate_reduces_cost_and_output() {
        let mut e = hive_engine();
        let full = e
            .submit_sql("SELECT r.a1, s.a1 FROM t_big r JOIN t_small s ON r.a1 = s.a1")
            .unwrap();
        let one_pct = e
            .submit_sql(
                "SELECT r.a1, s.a1 FROM t_big r JOIN t_small s ON r.a1 = s.a1 \
                 WHERE r.a1 + s.z < 10000",
            )
            .unwrap();
        assert!(one_pct.output_rows < full.output_rows / 50);
        assert!(one_pct.elapsed < full.elapsed);
    }

    #[test]
    fn probes_run_and_accrue_busy_time() {
        let mut e = hive_engine();
        use crate::probe::{ProbeKind, ProbeSpec};
        let a = e
            .submit_probe(&ProbeSpec::new(ProbeKind::ReadDfs, 1_000_000, 1_000))
            .unwrap();
        let b = e
            .submit_probe(&ProbeSpec::new(ProbeKind::ReadWriteDfs, 1_000_000, 1_000))
            .unwrap();
        assert!(b.elapsed > a.elapsed);
        assert_eq!(e.queries_executed(), 2);
    }

    #[test]
    fn capability_restriction_is_enforced() {
        let mut e = hive_engine();
        e.restrict_capabilities(vec![Capability::Filter, Capability::Project]);
        let err = e
            .submit_sql("SELECT r.a1, s.a1 FROM t_big r JOIN t_small s ON r.a1 = s.a1")
            .unwrap_err();
        assert_eq!(err, EngineError::CapabilityMissing(Capability::Join));
    }

    #[test]
    fn unknown_table_surfaces_cardinality_error() {
        let mut e = hive_engine();
        assert!(matches!(
            e.submit_sql("SELECT * FROM ghost"),
            Err(EngineError::Cardinality(_))
        ));
    }

    #[test]
    fn bucketed_tables_get_smb_join() {
        let mut e = ClusterEngine::paper_hive("hive-a", 7).without_noise();
        // Large enough that broadcast is ruled out; both bucketed on a1.
        for name in ["r_b", "s_b"] {
            let rows = 8_000_000u64;
            let size = 500u64;
            let mut stats = TableStats::new(rows, size);
            stats = stats.with_column("a1", ColumnStats::duplicated_range(rows, 1));
            let schema = vec![ColumnDef::int("a1"), ColumnDef::chars("dummy", 496)];
            let t = TableDef::new(name, schema, stats, SystemId::new("x")).partitioned_by("a1");
            e.register_table(t).unwrap();
        }
        let x = e
            .submit_sql("SELECT r.a1, s.a1 FROM r_b r JOIN s_b s ON r.a1 = s.a1")
            .unwrap();
        assert_eq!(
            x.join_algorithm,
            Some(JoinAlgorithm::HiveSortMergeBucketJoin)
        );
    }

    #[test]
    fn spark_engine_is_faster_than_hive_on_the_same_query() {
        let mk = |persona| {
            let mut e =
                ClusterEngine::new("sys", persona, ClusterConfig::paper_hive(), 3).without_noise();
            add_table(&mut e, "t_big", 1_000_000, 250);
            add_table(&mut e, "t_small", 100_000, 100);
            e
        };
        let mut hive = mk(crate::personas::hive_persona());
        let mut spark = mk(crate::personas::spark_persona());
        let sql = "SELECT r.a1, s.a1 FROM t_big r JOIN t_small s ON r.a1 = s.a1";
        let h = hive.submit_sql(sql).unwrap();
        let s = spark.submit_sql(sql).unwrap();
        assert!(
            s.elapsed < h.elapsed,
            "spark {} vs hive {}",
            s.elapsed,
            h.elapsed
        );
    }

    #[test]
    fn aggregation_over_a_join_runs_both_operators() {
        let mut e = hive_engine();
        let join_only = e
            .submit_sql("SELECT r.a1, s.a1 FROM t_big r JOIN t_small s ON r.a1 = s.a1")
            .unwrap();
        let joined_agg = e
            .submit_sql(
                "SELECT r.a5, SUM(s.a1) AS s FROM t_big r JOIN t_small s                  ON r.a1 = s.a1 GROUP BY r.a5",
            )
            .unwrap();
        assert!(joined_agg.join_algorithm.is_some());
        assert!(joined_agg.agg_algorithm.is_some());
        assert!(
            joined_agg.elapsed > join_only.elapsed,
            "extra agg stage costs time"
        );
        // Groups over a5 of the 100k-row join output (dup 5 on t_big's
        // 1M-row domain, containment-limited): bounded by the join size.
        assert!(joined_agg.output_rows <= join_only.output_rows);
    }

    #[test]
    fn order_by_adds_a_sort_pass_and_limit_caps_output() {
        let mut e = hive_engine();
        let plain = e
            .submit_sql("SELECT a1 FROM t_big WHERE a1 < 500000")
            .unwrap();
        let sorted = e
            .submit_sql("SELECT a1 FROM t_big WHERE a1 < 500000 ORDER BY a1")
            .unwrap();
        assert!(sorted.elapsed > plain.elapsed, "sort must cost extra");
        assert_eq!(plain.output_rows, sorted.output_rows);

        let limited = e
            .submit_sql("SELECT a1 FROM t_big WHERE a1 < 500000 ORDER BY a1 LIMIT 100")
            .unwrap();
        assert_eq!(limited.output_rows, 100);
    }

    #[test]
    fn explain_reports_plan_without_executing() {
        let mut e = hive_engine();
        let before = e.total_busy();
        let ex = e
            .explain("SELECT r.a1, s.a1 FROM t_big r JOIN t_tiny s ON r.a1 = s.a1")
            .unwrap();
        assert_eq!(e.total_busy(), before, "explain must not advance the clock");
        assert_eq!(ex.join_algorithm, Some(JoinAlgorithm::HiveBroadcastJoin));
        assert!(ex.logical.contains("Join"));
        assert!(!ex.stages.is_empty());
        assert!(ex.estimated_secs > 0.0);
        // And the noise-free execution matches the explain estimate.
        let exec = e
            .submit_sql("SELECT r.a1, s.a1 FROM t_big r JOIN t_tiny s ON r.a1 = s.a1")
            .unwrap();
        assert!((exec.elapsed.as_secs() - ex.estimated_secs).abs() < 1e-9);
        let rendered = ex.to_string();
        assert!(rendered.contains("Broadcast Join"), "{rendered}");
    }

    #[test]
    fn telemetry_tracks_queries_busy_time_and_emits_executions() {
        use std::sync::Arc;
        use telemetry::VecSubscriber;

        let sub = Arc::new(VecSubscriber::new());
        let telemetry = Telemetry::with_subscriber(sub.clone());
        let mut e = hive_engine().with_telemetry(&telemetry);
        let x1 = e
            .submit_sql("SELECT a1 FROM t_small WHERE a1 < 50000")
            .unwrap();
        let x2 = e
            .submit_sql("SELECT a5, SUM(a1) AS s FROM t_big GROUP BY a5")
            .unwrap();
        let snap = telemetry.metrics.snapshot();
        let labels = [("system", "hive-a")];
        assert_eq!(snap.counter("remote_queries_total", &labels), Some(2));
        let hist = snap.histogram("remote_execution_secs", &labels).unwrap();
        assert_eq!(hist.count, 2);
        assert!((hist.sum - e.total_busy().as_secs()).abs() < 1e-9);
        assert_eq!(
            snap.gauge("remote_busy_secs", &labels),
            Some(e.total_busy().as_secs())
        );
        let events = sub.snapshot();
        assert_eq!(events.len(), 2);
        match (&events[0], &events[1]) {
            (
                Event::RemoteExecution {
                    system: s1,
                    secs: e1,
                    queries_done: q1,
                },
                Event::RemoteExecution {
                    secs: e2,
                    queries_done: q2,
                    ..
                },
            ) => {
                assert_eq!(s1, "hive-a");
                assert_eq!(*e1, x1.elapsed.as_secs());
                assert_eq!(*e2, x2.elapsed.as_secs());
                assert_eq!((*q1, *q2), (1, 2));
            }
            other => panic!("unexpected events {other:?}"),
        }
        // Explain stays invisible to telemetry (no execution happened).
        let _ = e.explain("SELECT a1 FROM t_small").unwrap();
        assert_eq!(
            telemetry
                .metrics
                .snapshot()
                .counter("remote_queries_total", &labels),
            Some(2)
        );
    }

    #[test]
    fn noise_changes_repeated_timings_but_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut e = ClusterEngine::paper_hive("hive-a", seed);
            add_table(&mut e, "t_small", 100_000, 100);
            let a = e.submit_sql("SELECT a1 FROM t_small").unwrap().elapsed;
            let b = e.submit_sql("SELECT a1 FROM t_small").unwrap().elapsed;
            (a, b)
        };
        let (a1, b1) = run(9);
        let (a2, b2) = run(9);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1, b1, "noise should vary across submissions");
    }
}
