//! Physical algorithm inventory.
//!
//! §4 of the paper enumerates the algorithm menus this module mirrors:
//! "Hive supports five types of join algorithms, which are: Shuffle Join,
//! Broadcast Join, Bucket Map Join, Sort Merge Bucket Join, and Skew Join.
//! Similarly, Spark supports five join algorithms, which are: Broadcast
//! Hash Join, Shuffle Hash Join, SortMerge Join, Broadcast NestedLoop
//! Join, and Cartesian Product Join."

use serde::{Deserialize, Serialize};
use std::fmt;

/// Every physical join algorithm across the simulated engine personas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinAlgorithm {
    // --- Hive ---
    /// Hive's common (reduce-side) join: both inputs shuffled by key.
    HiveShuffleJoin,
    /// Hive's map join: the small side is broadcast and hash-built per task.
    HiveBroadcastJoin,
    /// Joins matching buckets when the small side is bucketed by the key.
    HiveBucketMapJoin,
    /// Merge of pre-sorted, co-bucketed inputs.
    HiveSortMergeBucketJoin,
    /// Shuffle join with special handling of heavily skewed keys.
    HiveSkewJoin,
    // --- Spark ---
    /// Broadcast the small side, hash-join per partition.
    SparkBroadcastHashJoin,
    /// Shuffle both sides, hash-join each partition.
    SparkShuffleHashJoin,
    /// Shuffle both sides, sort, merge.
    SparkSortMergeJoin,
    /// Broadcast the small side, nested-loop against each partition.
    SparkBroadcastNestedLoopJoin,
    /// Full Cartesian product.
    SparkCartesianProductJoin,
    // --- RDBMS ---
    /// Classic in-memory/grace hash join.
    RdbmsHashJoin,
    /// Sort-merge join.
    RdbmsSortMergeJoin,
    /// Nested-loop join (only sensible for tiny inputs or non-equi joins).
    RdbmsNestedLoopJoin,
}

impl JoinAlgorithm {
    /// Whether the algorithm requires an equi-join condition.
    pub fn requires_equi_keys(self) -> bool {
        !matches!(
            self,
            JoinAlgorithm::SparkBroadcastNestedLoopJoin
                | JoinAlgorithm::SparkCartesianProductJoin
                | JoinAlgorithm::RdbmsNestedLoopJoin
        )
    }

    /// Whether the algorithm broadcasts its build side to every node.
    pub fn broadcasts(self) -> bool {
        matches!(
            self,
            JoinAlgorithm::HiveBroadcastJoin
                | JoinAlgorithm::SparkBroadcastHashJoin
                | JoinAlgorithm::SparkBroadcastNestedLoopJoin
        )
    }

    /// Whether the algorithm depends on both inputs being bucketed or
    /// partitioned by the join key.
    pub fn requires_bucketing(self) -> bool {
        matches!(
            self,
            JoinAlgorithm::HiveBucketMapJoin | JoinAlgorithm::HiveSortMergeBucketJoin
        )
    }
}

impl fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinAlgorithm::HiveShuffleJoin => "Shuffle Join",
            JoinAlgorithm::HiveBroadcastJoin => "Broadcast Join",
            JoinAlgorithm::HiveBucketMapJoin => "Bucket Map Join",
            JoinAlgorithm::HiveSortMergeBucketJoin => "Sort Merge Bucket Join",
            JoinAlgorithm::HiveSkewJoin => "Skew Join",
            JoinAlgorithm::SparkBroadcastHashJoin => "Broadcast Hash Join",
            JoinAlgorithm::SparkShuffleHashJoin => "Shuffle Hash Join",
            JoinAlgorithm::SparkSortMergeJoin => "SortMerge Join",
            JoinAlgorithm::SparkBroadcastNestedLoopJoin => "Broadcast NestedLoop Join",
            JoinAlgorithm::SparkCartesianProductJoin => "Cartesian Product Join",
            JoinAlgorithm::RdbmsHashJoin => "Hash Join",
            JoinAlgorithm::RdbmsSortMergeJoin => "Sort-Merge Join",
            JoinAlgorithm::RdbmsNestedLoopJoin => "Nested-Loop Join",
        })
    }
}

/// Physical aggregation algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggAlgorithm {
    /// Hash-based grouping with map-side partial aggregation.
    HashAggregate,
    /// Sort-based grouping (chosen when the hash table would spill badly).
    SortAggregate,
}

impl fmt::Display for AggAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggAlgorithm::HashAggregate => "Hash Aggregate",
            AggAlgorithm::SortAggregate => "Sort Aggregate",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        assert_eq!(JoinAlgorithm::HiveShuffleJoin.to_string(), "Shuffle Join");
        assert_eq!(
            JoinAlgorithm::SparkSortMergeJoin.to_string(),
            "SortMerge Join"
        );
        assert_eq!(
            JoinAlgorithm::SparkBroadcastNestedLoopJoin.to_string(),
            "Broadcast NestedLoop Join"
        );
    }

    #[test]
    fn classification_flags() {
        assert!(JoinAlgorithm::HiveBroadcastJoin.broadcasts());
        assert!(!JoinAlgorithm::HiveShuffleJoin.broadcasts());
        assert!(JoinAlgorithm::HiveSortMergeBucketJoin.requires_bucketing());
        assert!(!JoinAlgorithm::SparkCartesianProductJoin.requires_equi_keys());
        assert!(JoinAlgorithm::RdbmsHashJoin.requires_equi_keys());
    }
}
