#![warn(missing_docs)]

//! Analytical remote-system simulator.
//!
//! The paper evaluates its cost-estimation module against a real 4-node
//! Hive/Hadoop cluster. This crate is the substitute substrate (see
//! DESIGN.md §2): a deterministic, analytically-evaluated simulator of
//! shared-nothing SQL engines that
//!
//! * stores tables as catalog statistics (rows, row size, per-column
//!   duplication) rather than physical data,
//! * computes **true** operator cardinalities from those statistics
//!   ([`cardinality`]),
//! * runs an internal rule-based optimizer choosing among the physical
//!   algorithms the paper lists for Hive and Spark (§4: Shuffle Join,
//!   Broadcast Join, Bucket Map Join, Sort-Merge Bucket Join, Skew Join,
//!   …) ([`remote_opt`]),
//! * and evaluates elapsed wall-clock time for the chosen physical plan
//!   from hidden per-record micro-costs ([`subop_cost`]), a task-wave
//!   scheduling model with per-stage and per-task startup latencies, I/O ↔
//!   CPU overlap within a task, memory-pressure regime switches for hash
//!   builds, and multiplicative noise ([`exec`], [`noise`]).
//!
//! The costing crate must treat engines as the paper treats remote
//! systems: the only interface is [`engine::RemoteSystem`] — submit a
//! query (or a Fig. 5 probe query), observe an elapsed time. All
//! micro-cost parameters stay private to this crate.

pub mod analyze;
pub mod cardinality;
pub mod cluster;
pub mod engine;
pub mod exec;
pub mod noise;
pub mod personas;
pub mod physical;
pub mod probe;
pub mod remote_opt;
pub mod subop_cost;
pub mod time;

pub use analyze::{analyze, QueryAnalysis};
pub use cardinality::{CardinalityModel, NodeEstimate};
pub use cluster::ClusterConfig;
pub use engine::{ClusterEngine, EngineError, Execution, Explain, RemoteSystem};
pub use personas::{hive_persona, presto_persona, rdbms_persona, spark_persona, Persona};
pub use physical::{AggAlgorithm, JoinAlgorithm};
pub use probe::ProbeSpec;
pub use time::SimDuration;
