//! The execution model: jobs, stages, task waves, and elapsed time.
//!
//! A query compiles to a [`Job`] — an ordered list of [`Stage`]s, each with
//! a task count and aggregate single-core work split into I/O and CPU
//! components. Elapsed time for a stage is
//!
//! ```text
//! stage_startup
//!   + serial_prelude                          (driver-side work, e.g.
//!                                              reading + broadcasting the
//!                                              small join side)
//!   + task_waves(tasks) · task_startup        (paper §4: NumTaskWaves)
//!   + effective_work / total_cores
//! ```
//!
//! where `effective_work = max(io, cpu) + overlap · min(io, cpu)` models
//! the partial I/O↔CPU pipelining inside a task. This overlap is exactly
//! the effect the paper's analytic sub-op formulas ignore, which is why
//! the sub-op approach "slightly tends to overestimate the cost … a
//! typical trend even within RDBMSs" (§7, Fig. 13g); the simulator
//! reproduces that bias mechanically rather than by fiat.
//!
//! The builder functions translate each physical algorithm of §4 into a
//! job. All work quantities are in single-core microseconds.

use crate::{
    cluster::ClusterConfig,
    physical::{AggAlgorithm, JoinAlgorithm},
    subop_cost::MicroCosts,
    time::SimDuration,
};

/// One stage of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Parallel tasks in this stage.
    pub tasks: u64,
    /// Aggregate I/O work across all tasks, in single-core µs.
    pub io_us: f64,
    /// Aggregate CPU work across all tasks, in single-core µs.
    pub cpu_us: f64,
    /// Driver-side serial work executed before the tasks launch, µs.
    pub serial_prelude_us: f64,
}

impl Stage {
    /// A stage with no serial prelude.
    pub fn parallel(tasks: u64, io_us: f64, cpu_us: f64) -> Self {
        Stage {
            tasks: tasks.max(1),
            io_us,
            cpu_us,
            serial_prelude_us: 0.0,
        }
    }

    /// Adds driver-side serial work.
    pub fn with_prelude(mut self, us: f64) -> Self {
        self.serial_prelude_us = us;
        self
    }
}

/// A compiled query: one or more stages executed back to back.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The stages, in execution order.
    pub stages: Vec<Stage>,
}

/// Scheduling overheads of an engine persona.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overheads {
    /// Fixed latency to launch one stage (job setup, scheduling), µs.
    pub stage_startup_us: f64,
    /// Latency to launch one wave of tasks, µs.
    pub task_startup_us: f64,
    /// Fraction of the smaller of (io, cpu) that does *not* overlap with
    /// the larger; 0 = perfect pipelining, 1 = fully serial.
    pub overlap_residual: f64,
}

impl Job {
    /// Total elapsed time of the job on a cluster.
    ///
    /// Work is modelled as perfectly balanced across all task slots —
    /// even a single-task stage divides its work by the full
    /// parallelism. This is a deliberate simplification (it keeps the
    /// probe-derived per-record costs size-independent); its cost is that
    /// tiny jobs run faster here than a real scheduler would allow, which
    /// widens the sub-op formulas' overestimation at the small end
    /// (their `NumTaskWaves` semantics charge whole task quanta).
    pub fn elapsed(&self, cluster: &ClusterConfig, ov: &Overheads) -> SimDuration {
        let cores = cluster.total_cores() as f64;
        let mut total = 0.0;
        for s in &self.stages {
            let waves = cluster.task_waves(s.tasks) as f64;
            let effective = s.io_us.max(s.cpu_us) + ov.overlap_residual * s.io_us.min(s.cpu_us);
            total += ov.stage_startup_us
                + s.serial_prelude_us
                + waves * ov.task_startup_us
                + effective / cores;
        }
        SimDuration::from_micros(total)
    }

    /// Total single-core work across all stages (io + cpu + preludes).
    pub fn total_work_us(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.io_us + s.cpu_us + s.serial_prelude_us)
            .sum()
    }
}

/// Size profile of one join input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideInfo {
    /// Rows.
    pub rows: f64,
    /// Stored row width in bytes (what scans read).
    pub row_bytes: f64,
    /// Width shuffled/kept after projection (join key + projected
    /// attributes), bytes.
    pub proj_bytes: f64,
}

impl SideInfo {
    /// Total stored bytes.
    pub fn total_bytes(&self) -> f64 {
        self.rows * self.row_bytes
    }

    /// Total projected bytes.
    pub fn total_proj_bytes(&self) -> f64 {
        self.rows * self.proj_bytes
    }
}

/// Everything the execution model needs to cost a join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinInfo {
    /// The probe (usually larger) side.
    pub big: SideInfo,
    /// The build (usually smaller) side — broadcast/hash-built.
    pub small: SideInfo,
    /// Output rows.
    pub out_rows: f64,
    /// Output row width in bytes.
    pub out_bytes: f64,
    /// Rows carried by the most frequent join-key value (drives skew).
    pub heavy_key_rows: f64,
}

/// Everything needed to cost an aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggInfo {
    /// Input rows.
    pub in_rows: f64,
    /// Input row width, bytes.
    pub in_bytes: f64,
    /// Output groups.
    pub groups: f64,
    /// Output row width, bytes.
    pub out_bytes: f64,
    /// Number of aggregate functions computed (Fig. 10 varies 1–5).
    pub n_aggs: u32,
}

/// Builds jobs for an engine persona's algorithms.
pub struct ExecModel<'a> {
    /// Micro-cost table (hidden ground truth).
    pub micro: &'a MicroCosts,
    /// Cluster layout.
    pub cluster: &'a ClusterConfig,
}

/// Joins merge records sequentially out of sorted runs / hash buckets,
/// which is markedly cheaper per record than the random-pair merging the
/// Fig. 5 probe query measures. The probe-calibrated `m` therefore
/// overestimates in-join merge work — the single largest contributor to
/// the sub-op approach's consistent overestimation in Fig. 13g.
const SEQUENTIAL_MERGE_DISCOUNT: f64 = 0.62;

impl ExecModel<'_> {
    fn blocks(&self, bytes: f64) -> u64 {
        self.cluster.blocks_for(bytes.max(0.0) as u64)
    }

    fn join_merge_total(&self, rows: f64, bytes: f64) -> f64 {
        self.micro.rec_merge.total(rows, bytes) * SEQUENTIAL_MERGE_DISCOUNT
    }

    /// In-memory sorts are O(n log n); the per-record sort micro-cost is
    /// calibrated at 64 Ki records per task, so larger runs cost a
    /// logarithmic factor more and smaller runs less. This is one of the
    /// non-linearities that defeats the linear-regression baseline on the
    /// join operator (Fig. 12d) while the NN absorbs it.
    fn sort_total(&self, rows: f64, bytes: f64, tasks: u64) -> f64 {
        let per_task_rows = (rows / tasks.max(1) as f64).max(16.0);
        let factor = per_task_rows.log2() / 16.0;
        self.micro.sort.total(rows, bytes) * factor
    }

    fn fits_hash_budget(&self, bytes: f64) -> bool {
        bytes <= self.cluster.task_hash_budget_bytes() as f64
    }

    /// Pure scan-filter-project job (map-only). `distributed` selects DFS
    /// I/O rates (Hive/Spark) vs local-disk rates (single-node RDBMS) —
    /// the same distinction the join and aggregation builders make.
    pub fn scan_job(
        &self,
        in_rows: f64,
        in_bytes: f64,
        out_rows: f64,
        out_bytes: f64,
        distributed: bool,
    ) -> Job {
        let m = self.micro;
        let tasks = self.blocks(in_rows * in_bytes);
        let io = if distributed {
            m.read_dfs.total(in_rows, in_bytes) + m.write_dfs.total(out_rows, out_bytes)
        } else {
            m.read_local.total(in_rows, in_bytes) + m.write_local.total(out_rows, out_bytes)
        };
        let cpu = m.scan.total(in_rows, in_bytes);
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        }
    }

    /// A final ORDER BY pass: read the intermediate result locally, sort
    /// it, and write it back.
    pub fn sort_job(&self, rows: f64, row_bytes: f64, distributed: bool) -> Job {
        let m = self.micro;
        let tasks = self.blocks(rows * row_bytes);
        let write = if distributed {
            m.write_dfs.total(rows, row_bytes)
        } else {
            m.write_local.total(rows, row_bytes)
        };
        let io = m.read_local.total(rows, row_bytes) + write;
        let cpu = self.sort_total(rows, row_bytes, tasks);
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        }
    }

    /// Builds the job for one join algorithm.
    pub fn join_job(&self, algo: JoinAlgorithm, j: &JoinInfo) -> Job {
        match algo {
            JoinAlgorithm::HiveShuffleJoin => self.shuffle_sort_merge_join(j, 1.0),
            JoinAlgorithm::HiveSkewJoin => self.skew_join(j),
            JoinAlgorithm::HiveBroadcastJoin => self.broadcast_hash_join(j, true),
            JoinAlgorithm::HiveBucketMapJoin => self.bucket_map_join(j),
            JoinAlgorithm::HiveSortMergeBucketJoin => self.sort_merge_bucket_join(j),
            JoinAlgorithm::SparkBroadcastHashJoin => self.broadcast_hash_join(j, false),
            JoinAlgorithm::SparkShuffleHashJoin => self.shuffle_hash_join(j),
            JoinAlgorithm::SparkSortMergeJoin => self.shuffle_sort_merge_join(j, 1.0),
            JoinAlgorithm::SparkBroadcastNestedLoopJoin => self.broadcast_nested_loop(j),
            JoinAlgorithm::SparkCartesianProductJoin => self.cartesian(j),
            JoinAlgorithm::RdbmsHashJoin => self.rdbms_hash_join(j),
            JoinAlgorithm::RdbmsSortMergeJoin => self.rdbms_sort_merge_join(j),
            JoinAlgorithm::RdbmsNestedLoopJoin => self.rdbms_nested_loop(j),
        }
    }

    /// Hive's common join / Spark's sort-merge join: map-side read + sort
    /// spill, shuffle, reduce-side merge, write.
    fn shuffle_sort_merge_join(&self, j: &JoinInfo, skew_factor: f64) -> Job {
        let m = self.micro;
        let map_tasks = self.blocks(j.big.total_bytes()) + self.blocks(j.small.total_bytes());
        let map_io = m.read_dfs.total(j.big.rows, j.big.row_bytes)
            + m.read_dfs.total(j.small.rows, j.small.row_bytes)
            + (m.write_local.total(j.big.rows, j.big.proj_bytes)
                + m.write_local.total(j.small.rows, j.small.proj_bytes))
                * 0.45;
        let map_cpu = m.scan.total(j.big.rows, j.big.row_bytes)
            + m.scan.total(j.small.rows, j.small.row_bytes)
            + self.sort_total(j.big.rows, j.big.proj_bytes, map_tasks)
            + self.sort_total(j.small.rows, j.small.proj_bytes, map_tasks);

        let shuffled_bytes = j.big.total_proj_bytes() + j.small.total_proj_bytes();
        // Reducer counts are bounded (Hive defaults cap reducers near the
        // slot count), so per-reducer volume grows with the input; past
        // the in-memory sort budget the reducer runs an external merge
        // with extra local-disk passes — a super-linear regime a linear
        // model cannot track.
        let reduce_tasks = self
            .blocks(shuffled_bytes)
            .min(4 * self.cluster.total_cores() as u64)
            .max(1);
        let per_reducer_bytes = shuffled_bytes / reduce_tasks as f64;
        let budget = self.cluster.task_hash_budget_bytes() as f64;
        let merge_passes = if per_reducer_bytes > budget {
            (per_reducer_bytes / budget).log2().ceil().max(1.0)
        } else {
            0.0
        };
        let spill_io = merge_passes
            * (m.write_local.total(j.big.rows, j.big.proj_bytes)
                + m.write_local.total(j.small.rows, j.small.proj_bytes)
                + m.read_local.total(j.big.rows, j.big.proj_bytes)
                + m.read_local.total(j.small.rows, j.small.proj_bytes));
        // Map outputs are combined and compressed before the shuffle
        // (mapreduce.map.output.compress); the primitive shuffle probe
        // has no combiner, so learned shuffle rates overestimate the
        // in-join shuffle — part of the sub-op approach's systematic
        // overestimation (Fig. 13g).
        const INTERMEDIATE_COMPRESSION: f64 = 0.45;
        let reduce_io = (m.shuffle.total(j.big.rows, j.big.proj_bytes)
            + m.shuffle.total(j.small.rows, j.small.proj_bytes))
            * INTERMEDIATE_COMPRESSION
            + spill_io
            + m.write_dfs.total(j.out_rows, j.out_bytes);
        let reduce_cpu = (m.scan.total(j.big.rows, j.big.proj_bytes)
            + m.scan.total(j.small.rows, j.small.proj_bytes)
            + self.join_merge_total(j.out_rows, j.out_bytes))
            * skew_factor;
        Job {
            stages: vec![
                Stage::parallel(map_tasks, map_io, map_cpu),
                Stage::parallel(reduce_tasks, reduce_io, reduce_cpu),
            ],
        }
    }

    /// Skew join: shuffle join where the heaviest key serialises one
    /// reducer; modelled as a serial prelude of the heavy key's merge work.
    fn skew_join(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let mut job = self.shuffle_sort_merge_join(j, 1.0);
        let heavy = m.rec_merge.total(j.heavy_key_rows, j.out_bytes)
            + m.sort.total(j.heavy_key_rows, j.big.proj_bytes);
        if let Some(last) = job.stages.last_mut() {
            last.serial_prelude_us += heavy;
        }
        job
    }

    /// The Fig. 6 broadcast join. `from_disk` distinguishes Hive (each
    /// task re-reads the broadcast file from local disk) from Spark (the
    /// build side stays cached in memory).
    fn broadcast_hash_join(&self, j: &JoinInfo, from_disk: bool) -> Job {
        let m = self.micro;
        let tasks = self.blocks(j.big.total_bytes());
        // Performed once: read S from DFS and broadcast it (Fig. 6's
        // `rD·|S| + b·|S|`).
        let prelude = m.read_dfs.total(j.small.rows, j.small.row_bytes)
            + m.broadcast(j.small.row_bytes, self.cluster.nodes) * j.small.rows;
        // Performed by every task: (re)load S, build its hash table, read
        // its own block of R, probe, write its share of the output.
        let fits = self.fits_hash_budget(j.small.total_bytes());
        let t = tasks as f64;
        let reload = if from_disk {
            m.read_local.total(j.small.rows, j.small.row_bytes) * t
        } else {
            m.scan.total(j.small.rows, j.small.row_bytes) * t
        };
        let io = reload
            + m.read_local.total(j.big.rows, j.big.row_bytes)
            + m.write_dfs.total(j.out_rows, j.out_bytes);
        let cpu = m.hash_insert(j.small.row_bytes, fits) * j.small.rows * t
            + m.hash_probe.total(j.big.rows, j.big.row_bytes);
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu).with_prelude(prelude)],
        }
    }

    /// Bucket map join: like broadcast, but each task loads only its own
    /// bucket of the small side (1/tasks of it).
    fn bucket_map_join(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let tasks = self.blocks(j.big.total_bytes());
        let fits = self.fits_hash_budget(j.small.total_bytes() / tasks as f64);
        let io = m.read_local.total(j.small.rows, j.small.row_bytes)
            + m.read_local.total(j.big.rows, j.big.row_bytes)
            + m.write_dfs.total(j.out_rows, j.out_bytes);
        let cpu = m.hash_insert(j.small.row_bytes, fits) * j.small.rows
            + m.hash_probe.total(j.big.rows, j.big.row_bytes);
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        }
    }

    /// Sort-merge bucket join: co-bucketed pre-sorted inputs are merged
    /// directly, no shuffle and no sort.
    fn sort_merge_bucket_join(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let tasks = self
            .blocks(j.big.total_bytes())
            .max(self.blocks(j.small.total_bytes()));
        let io = m.read_local.total(j.big.rows, j.big.row_bytes)
            + m.read_local.total(j.small.rows, j.small.row_bytes)
            + m.write_dfs.total(j.out_rows, j.out_bytes);
        let cpu = m.scan.total(j.big.rows, j.big.proj_bytes)
            + m.scan.total(j.small.rows, j.small.proj_bytes)
            + self.join_merge_total(j.out_rows, j.out_bytes);
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        }
    }

    /// Spark shuffle-hash join: shuffle both sides, hash-build the small
    /// partition, probe the big one.
    fn shuffle_hash_join(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let map_tasks = self.blocks(j.big.total_bytes()) + self.blocks(j.small.total_bytes());
        let map_io = m.read_dfs.total(j.big.rows, j.big.row_bytes)
            + m.read_dfs.total(j.small.rows, j.small.row_bytes);
        let map_cpu = m.scan.total(j.big.rows, j.big.row_bytes)
            + m.scan.total(j.small.rows, j.small.row_bytes);

        let reduce_tasks = self.blocks(j.big.total_proj_bytes() + j.small.total_proj_bytes());
        let fits = self.fits_hash_budget(j.small.total_proj_bytes() / reduce_tasks as f64);
        let reduce_io = m.shuffle.total(j.big.rows, j.big.proj_bytes)
            + m.shuffle.total(j.small.rows, j.small.proj_bytes)
            + m.write_dfs.total(j.out_rows, j.out_bytes);
        let reduce_cpu = m.hash_insert(j.small.proj_bytes, fits) * j.small.rows
            + m.hash_probe.total(j.big.rows, j.big.proj_bytes)
            + self.join_merge_total(j.out_rows, j.out_bytes);
        Job {
            stages: vec![
                Stage::parallel(map_tasks, map_io, map_cpu),
                Stage::parallel(reduce_tasks, reduce_io, reduce_cpu),
            ],
        }
    }

    /// Spark broadcast nested-loop join: every (big-row, small-row) pair is
    /// compared.
    fn broadcast_nested_loop(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let tasks = self.blocks(j.big.total_bytes());
        let prelude = m.read_dfs.total(j.small.rows, j.small.row_bytes)
            + m.broadcast(j.small.row_bytes, self.cluster.nodes) * j.small.rows;
        let pairs = j.big.rows * j.small.rows;
        let io = m.read_local.total(j.big.rows, j.big.row_bytes)
            + m.write_dfs.total(j.out_rows, j.out_bytes);
        let cpu = m.scan.per_record(j.small.proj_bytes) * pairs;
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu).with_prelude(prelude)],
        }
    }

    /// Spark Cartesian product: shuffles both sides everywhere, then pairs.
    fn cartesian(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let tasks = (self.blocks(j.big.total_bytes()) * self.blocks(j.small.total_bytes())).max(1);
        let io = m.shuffle.total(j.big.rows, j.big.proj_bytes)
            + m.shuffle.total(j.small.rows, j.small.proj_bytes)
            + m.write_dfs.total(j.out_rows, j.out_bytes);
        let pairs = j.big.rows * j.small.rows;
        let cpu = m.scan.per_record(j.small.proj_bytes) * pairs;
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        }
    }

    /// Single-node RDBMS hash join.
    fn rdbms_hash_join(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let tasks = self.cluster.total_cores() as u64;
        let fits = self.fits_hash_budget(j.small.total_bytes());
        let io = m.read_local.total(j.big.rows, j.big.row_bytes)
            + m.read_local.total(j.small.rows, j.small.row_bytes)
            + m.write_local.total(j.out_rows, j.out_bytes);
        let cpu = m.hash_insert(j.small.row_bytes, fits) * j.small.rows
            + m.hash_probe.total(j.big.rows, j.big.row_bytes)
            + self.join_merge_total(j.out_rows, j.out_bytes);
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        }
    }

    /// Single-node sort-merge join.
    fn rdbms_sort_merge_join(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let tasks = self.cluster.total_cores() as u64;
        let io = m.read_local.total(j.big.rows, j.big.row_bytes)
            + m.read_local.total(j.small.rows, j.small.row_bytes)
            + m.write_local.total(j.out_rows, j.out_bytes);
        let cpu = self.sort_total(j.big.rows, j.big.proj_bytes, tasks)
            + self.sort_total(j.small.rows, j.small.proj_bytes, tasks)
            + self.join_merge_total(j.out_rows, j.out_bytes);
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        }
    }

    /// Single-node nested loop (quadratic).
    fn rdbms_nested_loop(&self, j: &JoinInfo) -> Job {
        let m = self.micro;
        let tasks = self.cluster.total_cores() as u64;
        let io = m.read_local.total(j.big.rows, j.big.row_bytes)
            + m.read_local.total(j.small.rows, j.small.row_bytes)
            + m.write_local.total(j.out_rows, j.out_bytes);
        let cpu = m.scan.per_record(j.small.proj_bytes) * j.big.rows * j.small.rows;
        Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        }
    }

    /// Builds the job for an aggregation algorithm. `distributed` selects
    /// the two-stage map/reduce shape (Hive/Spark) vs single-node RDBMS.
    pub fn agg_job(&self, algo: AggAlgorithm, a: &AggInfo, distributed: bool) -> Job {
        let m = self.micro;
        if !distributed {
            let tasks = self.cluster.total_cores() as u64;
            let io = m.read_local.total(a.in_rows, a.in_bytes)
                + m.write_local.total(a.groups, a.out_bytes);
            let cpu = match algo {
                AggAlgorithm::HashAggregate => {
                    let fits = self.fits_hash_budget(a.groups * a.out_bytes);
                    m.hash_probe.total(a.in_rows, a.in_bytes)
                        + m.hash_insert(a.out_bytes, fits) * a.groups
                }
                AggAlgorithm::SortAggregate => {
                    self.sort_total(a.in_rows, a.in_bytes, self.cluster.total_cores() as u64)
                }
            } + m.agg_eval.total(a.in_rows, a.in_bytes) * a.n_aggs as f64;
            return Job {
                stages: vec![Stage::parallel(tasks, io, cpu)],
            };
        }

        let map_tasks = self.blocks(a.in_rows * a.in_bytes);
        // Map-side partial aggregation caps each task's output at the
        // group count.
        let partial_rows = a.in_rows.min(a.groups * map_tasks as f64);
        let map_io = m.read_dfs.total(a.in_rows, a.in_bytes);
        let eval = m.agg_eval.total(a.in_rows, a.in_bytes) * a.n_aggs as f64;
        let map_cpu = match algo {
            AggAlgorithm::HashAggregate => {
                let fits = self.fits_hash_budget(a.groups * a.out_bytes);
                m.scan.total(a.in_rows, a.in_bytes)
                    + m.hash_probe.total(a.in_rows, a.in_bytes)
                    + m.hash_insert(a.out_bytes, fits) * partial_rows
            }
            AggAlgorithm::SortAggregate => {
                m.scan.total(a.in_rows, a.in_bytes)
                    + self.sort_total(a.in_rows, a.in_bytes, map_tasks)
            }
        } + eval;

        let reduce_tasks = self.blocks(partial_rows * a.out_bytes);
        let reduce_io =
            m.shuffle.total(partial_rows, a.out_bytes) + m.write_dfs.total(a.groups, a.out_bytes);
        let reduce_cpu = m.rec_merge.total(partial_rows - a.groups, a.out_bytes)
            + m.scan.total(partial_rows, a.out_bytes);
        Job {
            stages: vec![
                Stage::parallel(map_tasks, map_io, map_cpu),
                Stage::parallel(reduce_tasks, reduce_io, reduce_cpu),
            ],
        }
    }

    /// Builds the job for one Fig. 5 probe query.
    pub fn probe_job(&self, spec: &crate::probe::ProbeSpec) -> Job {
        use crate::probe::ProbeKind as K;
        let m = self.micro;
        let rows = spec.rows as f64;
        let bytes = spec.record_bytes as f64;
        let tasks = self.blocks(rows * bytes);
        let read = m.read_dfs.total(rows, bytes);
        let job_one = |io: f64, cpu: f64| Job {
            stages: vec![Stage::parallel(tasks, io, cpu)],
        };
        match spec.kind {
            K::ReadDfs => job_one(read, 0.0),
            K::ReadWriteDfs => job_one(read + m.write_dfs.total(rows, bytes), 0.0),
            K::ReadDfsWriteLocal => job_one(read + m.write_local.total(rows, bytes), 0.0),
            K::ReadDfsReadLocal => job_one(read + m.read_local.total(rows, bytes), 0.0),
            K::ReadDfsBroadcast => {
                // The broadcast happens once, driver-side (Fig. 5 footnote 4).
                let prelude = m.broadcast(bytes, self.cluster.nodes) * rows;
                Job {
                    stages: vec![Stage::parallel(tasks, read, 0.0).with_prelude(prelude)],
                }
            }
            K::ReadDfsHashBuild => {
                let fits = if spec.force_spill {
                    false
                } else {
                    self.fits_hash_budget(self.cluster.dfs_block_bytes as f64)
                };
                job_one(read, m.hash_insert(bytes, fits) * rows)
            }
            K::ReadDfsHashProbe => job_one(read, m.hash_probe.total(rows, bytes)),
            K::ReadDfsSort => job_one(read, m.sort.total(rows, bytes)),
            K::ReadDfsScan => job_one(read, m.scan.total(rows, bytes)),
            K::ReadDfsMerge => job_one(read, m.rec_merge.total(rows, bytes)),
            K::ReadDfsShuffle => job_one(read + m.shuffle.total(rows, bytes), 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeKind, ProbeSpec};
    use crate::subop_cost::MicroCosts;

    fn model_parts() -> (MicroCosts, ClusterConfig) {
        (MicroCosts::hive_baseline(), ClusterConfig::paper_hive())
    }

    fn overheads() -> Overheads {
        Overheads {
            stage_startup_us: 2.0e6,
            task_startup_us: 5.0e4,
            overlap_residual: 0.55,
        }
    }

    fn join_info(big_rows: f64, small_rows: f64) -> JoinInfo {
        JoinInfo {
            big: SideInfo {
                rows: big_rows,
                row_bytes: 250.0,
                proj_bytes: 12.0,
            },
            small: SideInfo {
                rows: small_rows,
                row_bytes: 100.0,
                proj_bytes: 12.0,
            },
            out_rows: small_rows,
            out_bytes: 24.0,
            heavy_key_rows: 1.0,
        }
    }

    #[test]
    fn stage_elapsed_accounts_for_waves_and_overlap() {
        let (_, cluster) = model_parts();
        let ov = overheads();
        // 7 tasks on 6 cores -> 2 waves; io 600, cpu 60 -> effective 633.
        let job = Job {
            stages: vec![Stage::parallel(7, 600.0, 60.0)],
        };
        let e = job.elapsed(&cluster, &ov).as_micros();
        let expect = 2.0e6 + 2.0 * 5.0e4 + (600.0 + 0.55 * 60.0) / 6.0;
        assert!((e - expect).abs() < 1e-6, "elapsed {e} expect {expect}");
    }

    #[test]
    fn pure_io_stage_has_no_overlap_discount() {
        let (_, cluster) = model_parts();
        let ov = overheads();
        let job = Job {
            stages: vec![Stage::parallel(1, 600.0, 0.0)],
        };
        let e = job.elapsed(&cluster, &ov).as_micros();
        assert!((e - (2.0e6 + 5.0e4 + 100.0)).abs() < 1e-6);
    }

    #[test]
    fn probe_read_dfs_work_matches_micro_cost() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let job = em.probe_job(&ProbeSpec::new(ProbeKind::ReadDfs, 1_000_000, 1_000));
        let expect = micro.read_dfs.total(1e6, 1000.0);
        assert!((job.total_work_us() - expect).abs() < 1e-6);
    }

    #[test]
    fn probe_write_includes_read_component() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let rd = em
            .probe_job(&ProbeSpec::new(ProbeKind::ReadDfs, 1000, 500))
            .total_work_us();
        let rw = em
            .probe_job(&ProbeSpec::new(ProbeKind::ReadWriteDfs, 1000, 500))
            .total_work_us();
        let diff_per_rec = (rw - rd) / 1000.0;
        assert!((diff_per_rec - micro.write_dfs.per_record(500.0)).abs() < 1e-9);
    }

    #[test]
    fn forced_spill_probe_costs_more() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let mem = em.probe_job(&ProbeSpec::new(ProbeKind::ReadDfsHashBuild, 10_000, 1_000));
        let spill =
            em.probe_job(&ProbeSpec::new(ProbeKind::ReadDfsHashBuild, 10_000, 1_000).spilling());
        assert!(spill.total_work_us() > mem.total_work_us());
    }

    #[test]
    fn broadcast_join_repeats_build_per_task() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        // Big side: 10M rows × 250B = 2.5GB -> many blocks/tasks.
        let big = join_info(10_000_000.0, 10_000.0);
        let small_big_side = join_info(1_000_000.0, 10_000.0);
        let j_many = em.join_job(JoinAlgorithm::HiveBroadcastJoin, &big);
        let j_few = em.join_job(JoinAlgorithm::HiveBroadcastJoin, &small_big_side);
        // Build work scales with the number of probe-side tasks, so the
        // per-big-row work is higher with more tasks.
        let per_row_many = j_many.total_work_us() / big.big.rows;
        let per_row_few = j_few.total_work_us() / small_big_side.big.rows;
        assert!(per_row_many > 0.0 && per_row_few > 0.0);
        let tasks_many = cluster.blocks_for(big.big.total_bytes() as u64);
        let tasks_few = cluster.blocks_for(small_big_side.big.total_bytes() as u64);
        assert!(tasks_many > tasks_few);
    }

    #[test]
    fn shuffle_join_has_two_stages() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let j = em.join_job(JoinAlgorithm::HiveShuffleJoin, &join_info(1e6, 1e5));
        assert_eq!(j.stages.len(), 2);
    }

    #[test]
    fn skew_join_is_costlier_than_shuffle_join_under_skew() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let mut info = join_info(1e6, 1e5);
        info.heavy_key_rows = 200_000.0;
        let ov = overheads();
        let skew = em
            .join_job(JoinAlgorithm::HiveSkewJoin, &info)
            .elapsed(&cluster, &ov);
        let plain = em
            .join_job(JoinAlgorithm::HiveShuffleJoin, &info)
            .elapsed(&cluster, &ov);
        assert!(skew > plain);
    }

    #[test]
    fn nested_loop_is_quadratic() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let small = em.join_job(JoinAlgorithm::RdbmsNestedLoopJoin, &join_info(1e3, 1e3));
        let big = em.join_job(JoinAlgorithm::RdbmsNestedLoopJoin, &join_info(1e4, 1e4));
        // 10x inputs -> ~100x work.
        let ratio = big.total_work_us() / small.total_work_us();
        assert!(ratio > 50.0, "ratio {ratio}");
    }

    #[test]
    fn sort_job_adds_cpu_over_a_plain_rewrite() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let job = em.sort_job(1e6, 100.0, true);
        assert_eq!(job.stages.len(), 1);
        let stage = job.stages[0];
        assert!(stage.cpu_us > 0.0, "sorting is CPU work");
        // The CPU share reflects the n·log n sort of ~1M-row runs: more
        // than the plain scan cost of the same data.
        let scan_cpu = micro.scan.total(1e6, 100.0);
        assert!(
            stage.cpu_us > scan_cpu,
            "sort {} vs scan {scan_cpu}",
            stage.cpu_us
        );
        // Larger runs per task sort disproportionately: one mega-task
        // (single block) vs many blocks.
        let single_block = ClusterConfig {
            dfs_block_bytes: 1 << 40,
            ..cluster
        };
        let em_one = ExecModel {
            micro: &micro,
            cluster: &single_block,
        };
        let one_task = em_one.sort_job(8e6, 100.0, true).stages[0].cpu_us;
        let many_tasks = em.sort_job(8e6, 100.0, true).stages[0].cpu_us;
        assert!(one_task > many_tasks, "{one_task} vs {many_tasks}");
    }

    #[test]
    fn agg_job_scales_with_aggregate_count() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let base = AggInfo {
            in_rows: 1e6,
            in_bytes: 250.0,
            groups: 1e4,
            out_bytes: 12.0,
            n_aggs: 1,
        };
        let five = AggInfo { n_aggs: 5, ..base };
        let w1 = em
            .agg_job(AggAlgorithm::HashAggregate, &base, true)
            .total_work_us();
        let w5 = em
            .agg_job(AggAlgorithm::HashAggregate, &five, true)
            .total_work_us();
        assert!(w5 > w1);
    }

    #[test]
    fn distributed_agg_has_two_stages_rdbms_one() {
        let (micro, cluster) = model_parts();
        let em = ExecModel {
            micro: &micro,
            cluster: &cluster,
        };
        let a = AggInfo {
            in_rows: 1e5,
            in_bytes: 100.0,
            groups: 100.0,
            out_bytes: 12.0,
            n_aggs: 1,
        };
        assert_eq!(
            em.agg_job(AggAlgorithm::HashAggregate, &a, true)
                .stages
                .len(),
            2
        );
        assert_eq!(
            em.agg_job(AggAlgorithm::HashAggregate, &a, false)
                .stages
                .len(),
            1
        );
    }
}
