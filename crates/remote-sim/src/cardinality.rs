//! Analytic cardinality evaluation of logical plans against catalog
//! statistics.
//!
//! The paper explicitly scopes cardinality estimation out of the costing
//! module (§4: "the values for factors such as NumTaskWaves, |Block(R)|,
//! and |TaskOutput| are calculated and/or estimated by another module in
//! the IntelliSphere system"). This module is that other module. Both the
//! simulator (as ground truth) and the master engine (as its estimate) use
//! it; the Fig. 10 workload is constructed so the uniform/containment
//! assumptions below are exact for every training and test query.
//!
//! Rules:
//! * **Scan** — rows and average row size from the catalog.
//! * **Filter** — uniform-range selectivity via interval arithmetic over
//!   the predicate (which handles Fig. 10's `R.a1 + S.z < threshold`
//!   trick exactly, because `z` is the constant-zero column).
//! * **Join** — `|R ⋈ S| = |R|·|S| / max(ndv(R.k), ndv(S.k))`, the classic
//!   containment assumption; extra non-equi conjuncts multiply in their
//!   selectivity.
//! * **Aggregate** — output groups = min(input rows, ∏ ndv(group cols)).
//! * **Project** — row count unchanged; width recomputed from the
//!   projected columns.

use catalog::{Catalog, ColumnStats, TableDef};
use sqlkit::ast::{BinOp, Expr, SelectItem};
use sqlkit::logical::LogicalOp;
use std::collections::HashMap;

/// Estimated size of an operator's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEstimate {
    /// Output rows.
    pub rows: f64,
    /// Average output row width in bytes.
    pub row_bytes: f64,
}

impl NodeEstimate {
    /// Total output volume in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.rows * self.row_bytes
    }
}

/// Cardinality-evaluation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CardError {
    /// A scan references a table the catalog does not know.
    UnknownTable(String),
}

impl std::fmt::Display for CardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CardError::UnknownTable(t) => write!(f, "unknown table `{t}` in plan"),
        }
    }
}

impl std::error::Error for CardError {}

/// One side of an equi-join conjunct: `(binding, column)`.
pub type ColRef = (String, String);

/// Evaluates cardinalities for plans over one catalog.
pub struct CardinalityModel<'a> {
    catalog: &'a Catalog,
}

impl<'a> CardinalityModel<'a> {
    /// Creates a model over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        CardinalityModel { catalog }
    }

    /// Builds the binding → table map for a plan subtree.
    pub fn bindings(&self, op: &LogicalOp) -> Result<HashMap<String, &'a TableDef>, CardError> {
        let mut map = HashMap::new();
        for (table, binding) in op.tables() {
            let def = self
                .catalog
                .table(&table)
                .map_err(|_| CardError::UnknownTable(table.clone()))?;
            map.insert(binding, def);
        }
        Ok(map)
    }

    /// Estimates the output of an operator subtree.
    pub fn estimate(&self, op: &LogicalOp) -> Result<NodeEstimate, CardError> {
        let bindings = self.bindings(op)?;
        self.estimate_with(op, &bindings)
    }

    fn estimate_with(
        &self,
        op: &LogicalOp,
        bindings: &HashMap<String, &'a TableDef>,
    ) -> Result<NodeEstimate, CardError> {
        match op {
            LogicalOp::Scan { table, .. } => {
                let def = self
                    .catalog
                    .table(table)
                    .map_err(|_| CardError::UnknownTable(table.clone()))?;
                Ok(NodeEstimate {
                    rows: def.rows() as f64,
                    row_bytes: def.row_bytes() as f64,
                })
            }
            LogicalOp::Filter { input, predicate } => {
                let base = self.estimate_with(input, bindings)?;
                let sel = self.selectivity(predicate, bindings);
                Ok(NodeEstimate {
                    rows: base.rows * sel,
                    row_bytes: base.row_bytes,
                })
            }
            LogicalOp::Join { left, right, on } => {
                let l = self.estimate_with(left, bindings)?;
                let r = self.estimate_with(right, bindings)?;
                let (equi, residual) = split_join_condition(on);
                let mut rows = l.rows * r.rows;
                for (lk, rk) in &equi {
                    let ndv_l = self
                        .column_stats(lk, bindings)
                        .map_or(l.rows, |s| s.distinct_values as f64);
                    let ndv_r = self
                        .column_stats(rk, bindings)
                        .map_or(r.rows, |s| s.distinct_values as f64);
                    rows /= ndv_l.max(ndv_r).max(1.0);
                }
                if equi.is_empty() {
                    // Pure cross product: rows already l*r.
                }
                for pred in &residual {
                    rows *= self.selectivity(pred, bindings);
                }
                Ok(NodeEstimate {
                    rows: rows.max(0.0),
                    row_bytes: l.row_bytes + r.row_bytes,
                })
            }
            LogicalOp::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let base = self.estimate_with(input, bindings)?;
                let mut groups = 1.0f64;
                for g in group_by {
                    groups *= self.expr_ndv(g, bindings, base.rows);
                }
                let groups = groups.min(base.rows).max(1.0);
                let width = agg_output_width(group_by, aggregates, bindings);
                Ok(NodeEstimate {
                    rows: groups,
                    row_bytes: width,
                })
            }
            LogicalOp::Project { input, items } => {
                let base = self.estimate_with(input, bindings)?;
                if items.is_empty() || input_is_aggregate(input) {
                    // `*` keeps the width; aggregate output is already sized.
                    return Ok(base);
                }
                let width: f64 = items.iter().map(|i| expr_width(&i.expr, bindings)).sum();
                Ok(NodeEstimate {
                    rows: base.rows,
                    row_bytes: width.max(4.0),
                })
            }
            LogicalOp::Sort { input, .. } => self.estimate_with(input, bindings),
            LogicalOp::Limit { input, n } => {
                let base = self.estimate_with(input, bindings)?;
                Ok(NodeEstimate {
                    rows: base.rows.min(*n as f64),
                    row_bytes: base.row_bytes,
                })
            }
        }
    }

    /// Selectivity of a boolean predicate under uniform/independence
    /// assumptions.
    pub fn selectivity(&self, pred: &Expr, bindings: &HashMap<String, &'a TableDef>) -> f64 {
        match pred {
            Expr::Binary { op, left, right } if op.is_logical() => {
                let a = self.selectivity(left, bindings);
                let b = self.selectivity(right, bindings);
                // `is_logical` admits exactly And/Or, so the guard fully
                // determines the arm — no unreachable fallthrough needed.
                if matches!(op, BinOp::And) {
                    a * b
                } else {
                    a + b - a * b
                }
            }
            Expr::Not(inner) => 1.0 - self.selectivity(inner, bindings),
            Expr::Binary { op, left, right } if op.is_comparison() => {
                self.comparison_selectivity(*op, left, right, bindings)
            }
            // Anything else (bare column, literal) — neutral.
            _ => 1.0,
        }
    }

    fn comparison_selectivity(
        &self,
        op: BinOp,
        left: &Expr,
        right: &Expr,
        bindings: &HashMap<String, &'a TableDef>,
    ) -> f64 {
        // Equality on a single column against a constant: use ndv.
        if op == BinOp::Eq {
            if let (Expr::Column { .. }, Expr::Number(n)) = (left, right) {
                if let Some(stats) = self.expr_column_stats(left, bindings) {
                    return stats.eq_selectivity(*n);
                }
            }
            if let (Expr::Number(n), Expr::Column { .. }) = (left, right) {
                if let Some(stats) = self.expr_column_stats(right, bindings) {
                    return stats.eq_selectivity(*n);
                }
            }
        }
        // General range handling: selectivity of (left - right) vs 0.
        let lr = self.expr_range(left, bindings);
        let rr = self.expr_range(right, bindings);
        let (Some((llo, lhi)), Some((rlo, rhi))) = (lr, rr) else {
            return default_comparison_selectivity(op);
        };
        let lo = llo - rhi;
        let hi = lhi - rlo;
        let frac_lt = if hi <= lo {
            if lo < 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            ((0.0 - lo) / (hi - lo)).clamp(0.0, 1.0)
        };
        match op {
            BinOp::Lt | BinOp::LtEq => frac_lt,
            BinOp::Gt | BinOp::GtEq => 1.0 - frac_lt,
            BinOp::Eq => default_comparison_selectivity(BinOp::Eq),
            BinOp::NotEq => 1.0 - default_comparison_selectivity(BinOp::Eq),
            _ => 1.0,
        }
    }

    /// Interval of possible values of a scalar expression, when derivable.
    fn expr_range(&self, e: &Expr, bindings: &HashMap<String, &'a TableDef>) -> Option<(f64, f64)> {
        match e {
            Expr::Number(n) => Some((*n, *n)),
            Expr::Column { .. } => {
                let s = self.expr_column_stats(e, bindings)?;
                Some((s.min? as f64, s.max? as f64))
            }
            Expr::Binary { op, left, right } => {
                let (llo, lhi) = self.expr_range(left, bindings)?;
                let (rlo, rhi) = self.expr_range(right, bindings)?;
                match op {
                    BinOp::Add => Some((llo + rlo, lhi + rhi)),
                    BinOp::Sub => Some((llo - rhi, lhi - rlo)),
                    BinOp::Mul => {
                        let cands = [llo * rlo, llo * rhi, lhi * rlo, lhi * rhi];
                        Some((
                            cands.iter().copied().fold(f64::INFINITY, f64::min),
                            cands.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        ))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Column stats for a bare column expression.
    fn expr_column_stats(
        &self,
        e: &Expr,
        bindings: &HashMap<String, &'a TableDef>,
    ) -> Option<&'a ColumnStats> {
        if let Expr::Column { qualifier, name } = e {
            self.lookup_column(qualifier.as_deref(), name, bindings)
        } else {
            None
        }
    }

    /// Stats for a `(binding, column)` reference.
    pub fn column_stats(
        &self,
        col: &ColRef,
        bindings: &HashMap<String, &'a TableDef>,
    ) -> Option<&'a ColumnStats> {
        self.lookup_column(Some(&col.0), &col.1, bindings)
    }

    fn lookup_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
        bindings: &HashMap<String, &'a TableDef>,
    ) -> Option<&'a ColumnStats> {
        match qualifier {
            Some(q) => bindings.get(q).and_then(|t| t.stats.column(name)),
            None => bindings.values().find_map(|t| t.stats.column(name)),
        }
    }

    /// Distinct values of a grouping expression (falls back to √rows for
    /// opaque expressions, a common optimizer default).
    fn expr_ndv(&self, e: &Expr, bindings: &HashMap<String, &'a TableDef>, input_rows: f64) -> f64 {
        match self.expr_column_stats(e, bindings) {
            Some(s) => s.distinct_values as f64,
            None => input_rows.sqrt().max(1.0),
        }
    }
}

fn input_is_aggregate(op: &LogicalOp) -> bool {
    matches!(op, LogicalOp::Aggregate { .. })
}

fn default_comparison_selectivity(op: BinOp) -> f64 {
    match op {
        BinOp::Eq => 0.1,
        BinOp::NotEq => 0.9,
        _ => 1.0 / 3.0,
    }
}

/// Splits a join condition into equi-join column pairs and residual
/// predicates. A conjunct `l.c1 = r.c2` with two distinct qualifiers is an
/// equi-join key; everything else is residual.
pub fn split_join_condition(on: &Expr) -> (Vec<(ColRef, ColRef)>, Vec<Expr>) {
    let mut equi = Vec::new();
    let mut residual = Vec::new();
    collect_conjuncts(on, &mut |conj| {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = conj
        {
            if let (
                Expr::Column {
                    qualifier: Some(lq),
                    name: ln,
                },
                Expr::Column {
                    qualifier: Some(rq),
                    name: rn,
                },
            ) = (left.as_ref(), right.as_ref())
            {
                if lq != rq {
                    equi.push(((lq.clone(), ln.clone()), (rq.clone(), rn.clone())));
                    return;
                }
            }
        }
        residual.push(conj.clone());
    });
    (equi, residual)
}

fn collect_conjuncts(e: &Expr, f: &mut impl FnMut(&Expr)) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        collect_conjuncts(left, f);
        collect_conjuncts(right, f);
    } else {
        f(e);
    }
}

/// Width of an expression's output in bytes.
fn expr_width(e: &Expr, bindings: &HashMap<String, &TableDef>) -> f64 {
    match e {
        Expr::Column { qualifier, name } => {
            let def = match qualifier {
                Some(q) => bindings.get(q.as_str()).and_then(|t| t.column(name)),
                None => bindings.values().find_map(|t| t.column(name)),
            };
            def.map_or(4.0, |c| c.ty.width() as f64)
        }
        Expr::Number(_) => 4.0,
        Expr::StringLit(s) => s.len() as f64,
        Expr::Agg { .. } => 8.0,
        Expr::Binary { left, right, .. } => {
            expr_width(left, bindings).max(expr_width(right, bindings))
        }
        Expr::Not(_) => 1.0,
    }
}

/// Output row width of an aggregation: group keys + 8 bytes per aggregate.
fn agg_output_width(
    group_by: &[Expr],
    aggregates: &[SelectItem],
    bindings: &HashMap<String, &TableDef>,
) -> f64 {
    let keys: f64 = group_by.iter().map(|g| expr_width(g, bindings)).sum();
    keys + 8.0 * aggregates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::{ColumnDef, RemoteSystemProfile, SystemId, TableStats};
    use sqlkit::sql_to_plan;

    /// Builds a catalog holding two Fig. 10-style tables on one Hive system.
    fn fig10_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_system(RemoteSystemProfile::paper_hive_cluster("hive-a"))
            .unwrap();
        for (name, rows, size) in [
            ("t_big", 1_000_000u64, 250u64),
            ("t_small", 100_000u64, 100u64),
        ] {
            let mut stats = TableStats::new(rows, size);
            for dup in [1u64, 2, 5, 10, 20, 50, 100] {
                stats =
                    stats.with_column(&format!("a{dup}"), ColumnStats::duplicated_range(rows, dup));
            }
            stats = stats.with_column("z", ColumnStats::constant(0));
            let mut schema: Vec<ColumnDef> = [1u64, 2, 5, 10, 20, 50, 100]
                .iter()
                .map(|d| ColumnDef::int(&format!("a{d}")))
                .collect();
            schema.push(ColumnDef::int("z"));
            schema.push(ColumnDef::chars("dummy", (size - 32) as u32));
            c.register_table(catalog::TableDef::new(
                name,
                schema,
                stats,
                SystemId::new("hive-a"),
            ))
            .unwrap();
        }
        c
    }

    fn estimate(sql: &str) -> NodeEstimate {
        let cat = fig10_catalog();
        let model = CardinalityModel::new(&cat);
        let plan = sql_to_plan(sql).unwrap();
        model.estimate(&plan.root).unwrap()
    }

    #[test]
    fn scan_uses_catalog_stats() {
        let e = estimate("SELECT * FROM t_big");
        assert_eq!(e.rows, 1_000_000.0);
        assert_eq!(e.row_bytes, 250.0);
    }

    #[test]
    fn projection_narrows_width() {
        let e = estimate("SELECT a1, a5 FROM t_big");
        assert_eq!(e.rows, 1_000_000.0);
        assert_eq!(e.row_bytes, 8.0);
    }

    #[test]
    fn unique_key_join_outputs_smaller_table() {
        // a1 unique in both; containment -> min(|R|,|S|) = 100 000.
        let e = estimate("SELECT * FROM t_big r JOIN t_small s ON r.a1 = s.a1");
        assert!((e.rows - 100_000.0).abs() < 1.0, "rows {}", e.rows);
        assert_eq!(e.row_bytes, 350.0);
    }

    #[test]
    fn fig10_selectivity_trick_controls_join_output() {
        // WHERE r.a1 + s.z < threshold: z is constant zero, a1 of t_big
        // ranges 1..=1_000_000, so threshold 500_000 halves the output.
        let full = estimate("SELECT * FROM t_big r JOIN t_small s ON r.a1 = s.a1");
        let half = estimate(
            "SELECT * FROM t_big r JOIN t_small s ON r.a1 = s.a1 \
             WHERE r.a1 + s.z < 500000",
        );
        let ratio = half.rows / full.rows;
        assert!((ratio - 0.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn aggregation_groups_follow_duplication_factor() {
        let e = estimate("SELECT a5, SUM(a1) AS s FROM t_big GROUP BY a5");
        // duplication 5 over 1M rows -> 200k groups.
        assert!((e.rows - 200_000.0).abs() < 1.0);
        // width = 4 (key) + 8 (one aggregate).
        assert_eq!(e.row_bytes, 12.0);
    }

    #[test]
    fn aggregation_output_capped_by_input_rows() {
        let e = estimate("SELECT a1, SUM(a2) AS s FROM t_small WHERE a1 < 10 GROUP BY a1");
        assert!(e.rows <= 10.0 + 1.0, "rows {}", e.rows);
    }

    #[test]
    fn filter_on_plain_column_uses_uniform_range() {
        // a1 of t_big is 1..=1e6; a1 < 250000 keeps ~25%.
        let e = estimate("SELECT * FROM t_big WHERE a1 < 250000");
        assert!((e.rows - 250_000.0).abs() < 1_000.0, "rows {}", e.rows);
    }

    #[test]
    fn equality_filter_uses_ndv() {
        let e = estimate("SELECT * FROM t_big WHERE a5 = 7");
        // ndv(a5) = 200k -> 1M / 200k = 5 rows.
        assert!((e.rows - 5.0).abs() < 0.01, "rows {}", e.rows);
    }

    #[test]
    fn and_multiplies_or_unions() {
        let both = estimate("SELECT * FROM t_big WHERE a1 < 500000 AND a2 < 250000");
        assert!(
            (both.rows - 250_000.0).abs() < 2_000.0,
            "rows {}",
            both.rows
        );
        // OR combines under independence: 0.5 + 0.5 - 0.25 = 0.75 (the
        // model does not know both disjuncts reference the same column).
        let either = estimate("SELECT * FROM t_big WHERE a1 < 500000 OR a1 >= 500000");
        assert!(
            (either.rows - 750_000.0).abs() < 2_000.0,
            "rows {}",
            either.rows
        );
    }

    #[test]
    fn split_join_condition_extracts_keys_and_residual() {
        let plan =
            sql_to_plan("SELECT * FROM t_big r JOIN t_small s ON r.a1 = s.a1 AND r.a2 < 100")
                .unwrap();
        // Find the join node.
        fn find_join(op: &LogicalOp) -> Option<&Expr> {
            match op {
                LogicalOp::Join { on, .. } => Some(on),
                LogicalOp::Filter { input, .. }
                | LogicalOp::Project { input, .. }
                | LogicalOp::Sort { input, .. }
                | LogicalOp::Limit { input, .. }
                | LogicalOp::Aggregate { input, .. } => find_join(input),
                LogicalOp::Scan { .. } => None,
            }
        }
        let on = find_join(&plan.root).unwrap();
        let (equi, residual) = split_join_condition(on);
        assert_eq!(equi.len(), 1);
        assert_eq!(equi[0].0, ("r".to_string(), "a1".to_string()));
        assert_eq!(residual.len(), 1);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let cat = fig10_catalog();
        let model = CardinalityModel::new(&cat);
        let plan = sql_to_plan("SELECT * FROM ghost").unwrap();
        assert!(matches!(
            model.estimate(&plan.root),
            Err(CardError::UnknownTable(_))
        ));
    }

    #[test]
    fn not_inverts_selectivity() {
        let e = estimate("SELECT * FROM t_big WHERE NOT a1 < 250000");
        assert!((e.rows - 750_000.0).abs() < 2_000.0, "rows {}", e.rows);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any threshold predicate keeps the estimate within
            /// [0, unfiltered rows].
            #[test]
            fn prop_filter_never_exceeds_input(threshold in 0i64..2_000_000) {
                let e = estimate(&format!(
                    "SELECT * FROM t_big WHERE a1 < {threshold}"
                ));
                prop_assert!(e.rows >= 0.0);
                prop_assert!(e.rows <= 1_000_000.0 + 1.0);
            }

            /// Join output never exceeds the cross product, and equals the
            /// containment bound for the unique key.
            #[test]
            fn prop_join_bounded_by_smaller_side(threshold in 1i64..100_000) {
                let e = estimate(&format!(
                    "SELECT * FROM t_big r JOIN t_small s ON r.a1 = s.a1                      WHERE s.a1 + r.z < {threshold}"
                ));
                prop_assert!(e.rows <= 100_000.0 + 1.0, "rows {}", e.rows);
                // Selectivity model: ~threshold rows survive.
                prop_assert!(
                    (e.rows - threshold as f64).abs() < threshold as f64 * 0.05 + 5.0,
                    "rows {} vs threshold {threshold}", e.rows
                );
            }

            /// Conjunction can only shrink an estimate.
            #[test]
            fn prop_and_is_monotone(a in 1i64..1_000_000, b in 1i64..1_000_000) {
                let single = estimate(&format!("SELECT * FROM t_big WHERE a1 < {a}"));
                let both = estimate(&format!(
                    "SELECT * FROM t_big WHERE a1 < {a} AND a2 < {b}"
                ));
                prop_assert!(both.rows <= single.rows + 1e-6);
            }

            /// Grouping never yields more groups than input rows, and the
            /// duplication columns yield exactly rows/i groups.
            #[test]
            fn prop_group_counts(dup in prop::sample::select(vec![1u64, 2, 5, 10, 20, 50, 100])) {
                let e = estimate(&format!(
                    "SELECT a{dup}, SUM(a1) AS s FROM t_small GROUP BY a{dup}"
                ));
                let expect = (100_000u64).div_ceil(dup) as f64;
                prop_assert!((e.rows - expect).abs() < 1.0, "groups {} vs {expect}", e.rows);
            }
        }
    }
}
