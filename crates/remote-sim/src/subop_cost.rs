//! Hidden ground-truth micro-costs.
//!
//! Each sub-operator of Fig. 5 has a true per-record cost that is linear in
//! record size (the paper's measurements, e.g. Fig. 7b's
//! `ReadDFS = 0.0041·s + 0.6323` µs/record), except HashBuild which
//! follows two regimes (Fig. 13f). These constants are the *simulated
//! hardware*: the costing crate never sees them — it has to rediscover
//! them through probe queries, exactly as the paper rediscovers Hive's
//! behaviour through primitive queries.
//!
//! Costs are expressed as **single-core work per record** in microseconds;
//! the execution model divides aggregate work by the cluster's parallelism
//! and adds scheduling overheads.

use serde::{Deserialize, Serialize};

/// Slope/intercept of a per-record cost that is linear in record size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCost {
    /// µs per byte of record size.
    pub per_byte: f64,
    /// Fixed µs per record.
    pub base: f64,
}

impl LinearCost {
    /// Cost in µs for one record of `bytes` size.
    pub fn per_record(&self, bytes: f64) -> f64 {
        (self.per_byte * bytes + self.base).max(0.0)
    }

    /// Total µs for `rows` records of `bytes` size.
    pub fn total(&self, rows: f64, bytes: f64) -> f64 {
        self.per_record(bytes) * rows
    }

    /// Scales both coefficients (used to derive engine personas from the
    /// Hive baseline).
    pub fn scaled(&self, k: f64) -> LinearCost {
        LinearCost {
            per_byte: self.per_byte * k,
            base: self.base * k,
        }
    }
}

/// The full micro-cost table for one engine persona.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroCosts {
    /// Reading a record from the distributed file system (`rD`).
    pub read_dfs: LinearCost,
    /// Writing a record to the distributed file system (`wD`).
    pub write_dfs: LinearCost,
    /// Reading a record from a local file system (`rL`).
    pub read_local: LinearCost,
    /// Writing a record to a local file system (`wL`).
    pub write_local: LinearCost,
    /// Shuffling a record between machines (`f`).
    pub shuffle: LinearCost,
    /// Broadcasting a record to one machine (`b` is this times the node
    /// count).
    pub broadcast_per_node: LinearCost,
    /// Main-memory sort cost per record (`o`).
    pub sort: LinearCost,
    /// Main-memory scan cost per record (`c`).
    pub scan: LinearCost,
    /// Hash-table insert per record, table fits in memory (`hI`, low
    /// regime of Fig. 13f).
    pub hash_insert_mem: LinearCost,
    /// Hash-table insert per record when the table spills (`hI`, high
    /// regime of Fig. 13f).
    pub hash_insert_spill: LinearCost,
    /// Hash-table probe per record (`hP`).
    pub hash_probe: LinearCost,
    /// Merging two records (`m`).
    pub rec_merge: LinearCost,
    /// Per-aggregate-function evaluation cost per record (drives the
    /// Fig. 10 "1 to 5 SUM()" dimension).
    pub agg_eval: LinearCost,
}

impl MicroCosts {
    /// The Hive/Hadoop baseline, anchored to the per-record measurements
    /// the paper reports in Figs. 7 and 13.
    pub fn hive_baseline() -> Self {
        MicroCosts {
            read_dfs: LinearCost {
                per_byte: 0.0041,
                base: 0.6323,
            },
            write_dfs: LinearCost {
                per_byte: 0.0314,
                base: 0.7403,
            },
            read_local: LinearCost {
                per_byte: 0.0016,
                base: 0.2500,
            },
            write_local: LinearCost {
                per_byte: 0.0100,
                base: 0.4000,
            },
            shuffle: LinearCost {
                per_byte: 0.0126,
                base: 5.2551,
            },
            broadcast_per_node: LinearCost {
                per_byte: 0.0105,
                base: 4.2000,
            },
            sort: LinearCost {
                per_byte: 0.0040,
                base: 1.2000,
            },
            scan: LinearCost {
                per_byte: 0.0008,
                base: 0.1500,
            },
            hash_insert_mem: LinearCost {
                per_byte: 0.0248,
                base: 18.241,
            },
            hash_insert_spill: LinearCost {
                per_byte: 0.1821,
                base: -51.614,
            },
            hash_probe: LinearCost {
                per_byte: 0.0100,
                base: 2.0000,
            },
            rec_merge: LinearCost {
                per_byte: 0.0344,
                base: 36.701,
            },
            agg_eval: LinearCost {
                per_byte: 0.0002,
                base: 0.8000,
            },
        }
    }

    /// Hash-insert cost per record given the record size and whether the
    /// table fits in the per-task memory budget. The spill line crosses
    /// below the in-memory line for small records (the paper's fitted
    /// intercept is negative), so the spill cost is floored at the
    /// in-memory cost.
    pub fn hash_insert(&self, bytes: f64, fits_in_memory: bool) -> f64 {
        let mem = self.hash_insert_mem.per_record(bytes);
        if fits_in_memory {
            mem
        } else {
            self.hash_insert_spill.per_record(bytes).max(mem)
        }
    }

    /// Broadcast cost per record to `nodes` machines.
    pub fn broadcast(&self, bytes: f64, nodes: u32) -> f64 {
        self.broadcast_per_node.per_record(bytes) * nodes as f64
    }

    /// Uniformly scales every cost (used to derive faster personas).
    pub fn scaled(&self, k: f64) -> MicroCosts {
        MicroCosts {
            read_dfs: self.read_dfs.scaled(k),
            write_dfs: self.write_dfs.scaled(k),
            read_local: self.read_local.scaled(k),
            write_local: self.write_local.scaled(k),
            shuffle: self.shuffle.scaled(k),
            broadcast_per_node: self.broadcast_per_node.scaled(k),
            sort: self.sort.scaled(k),
            scan: self.scan.scaled(k),
            hash_insert_mem: self.hash_insert_mem.scaled(k),
            hash_insert_spill: self.hash_insert_spill.scaled(k),
            hash_probe: self.hash_probe.scaled(k),
            rec_merge: self.rec_merge.scaled(k),
            agg_eval: self.agg_eval.scaled(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cost_matches_paper_read_dfs_line() {
        let c = MicroCosts::hive_baseline().read_dfs;
        // Fig. 7b: y = 0.0041x + 0.6323; at 1000 bytes ≈ 4.73 µs.
        assert!((c.per_record(1000.0) - 4.7323).abs() < 1e-9);
        assert!((c.total(2.0, 1000.0) - 9.4646).abs() < 1e-9);
    }

    #[test]
    fn spill_regime_floored_at_memory_cost() {
        let m = MicroCosts::hive_baseline();
        // At small record sizes the spill line (negative intercept) would be
        // below the in-memory line; the floor keeps spill >= in-memory.
        let small = m.hash_insert(100.0, false);
        assert!(small >= m.hash_insert(100.0, true));
        // At 1000 bytes the spill regime is distinctly more expensive
        // (Fig. 13f: 0.1821·1000 − 51.6 ≈ 130 vs 0.0248·1000 + 18.2 ≈ 43).
        let spill = m.hash_insert(1000.0, false);
        let mem = m.hash_insert(1000.0, true);
        assert!(spill > 2.0 * mem, "spill {spill} vs mem {mem}");
    }

    #[test]
    fn broadcast_scales_with_nodes() {
        let m = MicroCosts::hive_baseline();
        assert!(
            (m.broadcast(100.0, 3) - 3.0 * m.broadcast_per_node.per_record(100.0)).abs() < 1e-12
        );
    }

    #[test]
    fn negative_costs_clamped() {
        let c = LinearCost {
            per_byte: 0.1,
            base: -100.0,
        };
        assert_eq!(c.per_record(10.0), 0.0);
    }

    #[test]
    fn scaled_scales_everything() {
        let m = MicroCosts::hive_baseline().scaled(0.5);
        let base = MicroCosts::hive_baseline();
        assert!(
            (m.read_dfs.per_record(500.0) - 0.5 * base.read_dfs.per_record(500.0)).abs() < 1e-12
        );
        assert!(
            (m.rec_merge.per_record(40.0) - 0.5 * base.rec_merge.per_record(40.0)).abs() < 1e-12
        );
    }
}
