//! Engine personas: parameter bundles that turn the generic execution
//! model into a Hive-like, Spark-like, or RDBMS-like remote system.

use crate::{exec::Overheads, remote_opt::OptimizerRules, subop_cost::MicroCosts};
use catalog::SystemKind;

/// A complete persona: engine family, hidden micro-costs, scheduling
/// overheads, optimizer rules, and noise level.
#[derive(Debug, Clone)]
pub struct Persona {
    /// Engine family.
    pub kind: SystemKind,
    /// Hidden per-record costs.
    pub micro: MicroCosts,
    /// Scheduling overheads.
    pub overheads: Overheads,
    /// Internal optimizer thresholds.
    pub rules: OptimizerRules,
    /// Relative execution-time noise (std-dev).
    pub noise_sigma: f64,
}

/// The Hive/Hadoop persona matching the paper's evaluation cluster:
/// heavyweight per-stage startup (YARN job launch), disk-based shuffle.
pub fn hive_persona() -> Persona {
    Persona {
        kind: SystemKind::Hive,
        micro: MicroCosts::hive_baseline(),
        overheads: Overheads {
            stage_startup_us: 2.0e6, // ~2 s per MR stage
            task_startup_us: 5.0e3,  // ~5 ms per task wave
            overlap_residual: 0.55,
        },
        rules: OptimizerRules::hive(),
        noise_sigma: 0.04,
    }
}

/// A Spark-SQL persona: the same cluster runs everything roughly 40 %
/// faster per record (in-memory exchange), with far cheaper scheduling.
pub fn spark_persona() -> Persona {
    let mut micro = MicroCosts::hive_baseline().scaled(0.6);
    // Spark's shuffle avoids the disk round-trip entirely.
    micro.shuffle = micro.shuffle.scaled(0.5);
    Persona {
        kind: SystemKind::Spark,
        micro,
        overheads: Overheads {
            stage_startup_us: 3.0e5, // ~0.3 s per stage
            task_startup_us: 2.0e3,  // ~2 ms per wave
            overlap_residual: 0.50,
        },
        rules: OptimizerRules::spark(),
        noise_sigma: 0.04,
    }
}

/// A Presto-like persona: an MPP SQL engine with fully pipelined,
/// memory-resident execution — no per-stage materialisation at all, so
/// scheduling overheads are minimal and shuffles are pure network
/// transfers. Presto's join menu matches Spark's hash-based family here.
pub fn presto_persona() -> Persona {
    let mut micro = MicroCosts::hive_baseline().scaled(0.45);
    micro.shuffle = micro.shuffle.scaled(0.45);
    Persona {
        kind: SystemKind::Spark, // same algorithm family and rule set
        micro,
        overheads: Overheads {
            stage_startup_us: 5.0e4, // ~50 ms per stage
            task_startup_us: 1.0e3,
            overlap_residual: 0.40,
        },
        rules: OptimizerRules::spark(),
        noise_sigma: 0.04,
    }
}

/// A single-node RDBMS persona: no DFS, no job scheduling to speak of,
/// fast local I/O.
pub fn rdbms_persona() -> Persona {
    let mut micro = MicroCosts::hive_baseline().scaled(0.5);
    micro.read_local = micro.read_local.scaled(0.6);
    micro.write_local = micro.write_local.scaled(0.6);
    Persona {
        kind: SystemKind::Rdbms,
        micro,
        overheads: Overheads {
            stage_startup_us: 5.0e3, // ~5 ms
            task_startup_us: 1.0e3,
            overlap_residual: 0.40,
        },
        rules: OptimizerRules::rdbms(),
        noise_sigma: 0.03,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn personas_have_distinct_cost_profiles() {
        let h = hive_persona();
        let s = spark_persona();
        let r = rdbms_persona();
        assert!(s.micro.read_dfs.per_record(500.0) < h.micro.read_dfs.per_record(500.0));
        assert!(s.overheads.stage_startup_us < h.overheads.stage_startup_us);
        assert!(r.overheads.stage_startup_us < s.overheads.stage_startup_us);
        assert_eq!(h.kind, SystemKind::Hive);
        assert_eq!(s.kind, SystemKind::Spark);
        assert_eq!(r.kind, SystemKind::Rdbms);
    }

    #[test]
    fn presto_is_the_fastest_distributed_persona() {
        let s = spark_persona();
        let p = presto_persona();
        assert!(p.micro.read_dfs.per_record(500.0) < s.micro.read_dfs.per_record(500.0));
        assert!(p.overheads.stage_startup_us < s.overheads.stage_startup_us);
    }

    #[test]
    fn spark_shuffle_discount_is_compounded() {
        let h = hive_persona();
        let s = spark_persona();
        let ratio = s.micro.shuffle.per_record(500.0) / h.micro.shuffle.per_record(500.0);
        assert!((ratio - 0.3).abs() < 1e-9, "ratio {ratio}");
    }
}
