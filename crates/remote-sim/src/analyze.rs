//! Query analysis: from a logical plan to operator-level size profiles.
//!
//! Both sides of the paper's contract need the same arithmetic:
//!
//! * the *remote engine* needs input/output sizes to run its internal
//!   optimizer and cost a physical plan (ground truth), and
//! * the *costing module* needs the very same quantities as the "input
//!   parameters for the operator's model" (§3) — the seven join dimensions
//!   of Fig. 2 and the four aggregation dimensions — which §4 says are
//!   "calculated and/or estimated by another module in the IntelliSphere
//!   system".
//!
//! This module is that shared arithmetic, built on [`crate::cardinality`].

use crate::{
    cardinality::{split_join_condition, CardError, CardinalityModel, ColRef, NodeEstimate},
    exec::{AggInfo, JoinInfo, SideInfo},
    remote_opt::JoinContext,
};
use catalog::{Catalog, TableDef};
use sqlkit::ast::{Expr, SelectItem};
use sqlkit::logical::{LogicalOp, LogicalPlan};
use std::collections::{HashMap, HashSet};

/// What kind of core operator a query is built around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Scan / filter / project only.
    Scan,
    /// Contains a join (possibly nested).
    Join,
}

/// The analysed shape of one query.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Estimate of the final (root) output.
    pub root: NodeEstimate,
    /// Core operator class.
    pub core: CoreKind,
    /// Estimate of the core operator output including any filter above it.
    pub core_out: NodeEstimate,
    /// Join profile for the topmost join, when present.
    pub join: Option<(JoinInfo, JoinContext)>,
    /// Aggregation profile, when the query aggregates.
    pub agg: Option<AggInfo>,
    /// Estimate of the scan input (for scan-only queries).
    pub scan_in: Option<NodeEstimate>,
    /// True when the topmost join's left input is itself a join.
    pub nested_join: bool,
    /// When the query has an `ORDER BY`: the estimate of the sort's input
    /// (rows × row bytes sorted).
    pub sort_in: Option<NodeEstimate>,
    /// The `LIMIT`, when present.
    pub limit: Option<u64>,
}

/// Analyses a plan against a catalog.
pub fn analyze(catalog: &Catalog, plan: &LogicalPlan) -> Result<QueryAnalysis, CardError> {
    let model = CardinalityModel::new(catalog);
    let root_est = model.estimate(&plan.root)?;

    // Peel Limit → Sort → Project → Aggregate → Filter → core.
    let (limit, below_limit) = match &plan.root {
        LogicalOp::Limit { input, n } => (Some(*n), input.as_ref()),
        other => (None, other),
    };
    let (sort_in, below_sort) = match below_limit {
        LogicalOp::Sort { input, .. } => (Some(model.estimate(input)?), input.as_ref()),
        other => (None, other),
    };
    let (proj_items, below_project): (&[SelectItem], &LogicalOp) = match below_sort {
        LogicalOp::Project { input, items } => (items, input.as_ref()),
        other => (&[], other),
    };
    let (agg_node, below_agg) = match below_project {
        LogicalOp::Aggregate {
            input,
            group_by,
            aggregates,
        } => (Some((group_by, aggregates)), input.as_ref()),
        other => (None, other),
    };
    let (has_filter, core_op) = match below_agg {
        LogicalOp::Filter { input, .. } => (true, input.as_ref()),
        other => (false, other),
    };

    let core_out = if has_filter {
        model.estimate(below_agg)?
    } else {
        model.estimate(core_op)?
    };

    let mut analysis = QueryAnalysis {
        root: root_est,
        core: CoreKind::Scan,
        core_out,
        join: None,
        agg: None,
        scan_in: None,
        nested_join: false,
        sort_in,
        limit,
    };

    match core_op {
        LogicalOp::Join { left, right, on } => {
            analysis.core = CoreKind::Join;
            analysis.nested_join = left.join_count() > 0;
            analysis.join = Some(join_inputs(
                &model, left, right, on, core_out, proj_items, root_est,
            )?);
        }
        LogicalOp::Scan { .. } => {
            analysis.scan_in = Some(model.estimate(core_op)?);
        }
        // Exotic shapes (filter-over-filter etc.) are treated as scans of
        // their input estimate.
        other => {
            analysis.scan_in = Some(model.estimate(other)?);
        }
    }

    if let Some((_, aggregates)) = agg_node {
        let agg_est = model.estimate(below_project)?;
        analysis.agg = Some(AggInfo {
            in_rows: core_out.rows,
            in_bytes: core_out.row_bytes,
            groups: agg_est.rows,
            out_bytes: agg_est.row_bytes,
            n_aggs: aggregates.len().max(1) as u32,
        });
    }
    Ok(analysis)
}

/// Derives the `JoinInfo`/`JoinContext` pair for a join node.
pub fn join_inputs(
    model: &CardinalityModel<'_>,
    left: &LogicalOp,
    right: &LogicalOp,
    on: &Expr,
    out: NodeEstimate,
    proj_items: &[SelectItem],
    root_est: NodeEstimate,
) -> Result<(JoinInfo, JoinContext), CardError> {
    let l_est = model.estimate(left)?;
    let r_est = model.estimate(right)?;
    let join_op = LogicalOp::Join {
        left: Box::new(left.clone()),
        right: Box::new(right.clone()),
        on: on.clone(),
    };
    let bindings = model.bindings(&join_op)?;

    let (equi, _) = split_join_condition(on);
    let has_equi_keys = !equi.is_empty();

    let l_bind: HashSet<String> = left.tables().into_iter().map(|(_, b)| b).collect();
    let r_bind: HashSet<String> = right.tables().into_iter().map(|(_, b)| b).collect();

    let l_proj = side_proj_bytes(&bindings, proj_items, &equi, &l_bind, l_est.row_bytes);
    let r_proj = side_proj_bytes(&bindings, proj_items, &equi, &r_bind, r_est.row_bytes);

    let mut heavy = 1.0f64;
    for (lk, rk) in &equi {
        if let Some(s) = model.column_stats(lk, &bindings) {
            heavy = heavy.max(s.heavy_rows(l_est.rows.max(1.0) as u64));
        }
        if let Some(s) = model.column_stats(rk, &bindings) {
            heavy = heavy.max(s.heavy_rows(r_est.rows.max(1.0) as u64));
        }
    }

    let l_side = SideInfo {
        rows: l_est.rows,
        row_bytes: l_est.row_bytes,
        proj_bytes: l_proj,
    };
    let r_side = SideInfo {
        rows: r_est.rows,
        row_bytes: r_est.row_bytes,
        proj_bytes: r_proj,
    };
    let (big, small, big_bind, small_bind) = if l_side.total_bytes() >= r_side.total_bytes() {
        (l_side, r_side, &l_bind, &r_bind)
    } else {
        (r_side, l_side, &r_bind, &l_bind)
    };

    let info = JoinInfo {
        big,
        small,
        out_rows: out.rows,
        out_bytes: root_est.row_bytes,
        heavy_key_rows: heavy,
    };
    let ctx = JoinContext {
        has_equi_keys,
        big_bucketed: side_bucketed(&bindings, &equi, big_bind),
        small_bucketed: side_bucketed(&bindings, &equi, small_bind),
    };
    Ok((info, ctx))
}

/// Projected width for one join side: referenced projection columns plus
/// the join key. Falls back to the full row for `SELECT *`.
fn side_proj_bytes(
    bindings: &HashMap<String, &TableDef>,
    proj_items: &[SelectItem],
    equi: &[(ColRef, ColRef)],
    side_bindings: &HashSet<String>,
    full_row_bytes: f64,
) -> f64 {
    if proj_items.is_empty() {
        return full_row_bytes;
    }
    let mut cols: HashSet<(String, String)> = HashSet::new();
    for item in proj_items {
        let mut refs = vec![];
        item.expr.columns(&mut refs);
        for (q, n) in refs {
            if let Some(q) = q {
                if side_bindings.contains(&q) {
                    cols.insert((q, n));
                }
            } else {
                for b in side_bindings {
                    if bindings.get(b).is_some_and(|t| t.column(&n).is_some()) {
                        cols.insert((b.clone(), n.clone()));
                        break;
                    }
                }
            }
        }
    }
    for (lk, rk) in equi {
        for key in [lk, rk] {
            if side_bindings.contains(&key.0) {
                cols.insert(key.clone());
            }
        }
    }
    let width: f64 = cols
        .iter()
        .map(|(b, n)| {
            bindings
                .get(b)
                .and_then(|t| t.column(n))
                .map_or(4.0, |c| c.ty.width() as f64)
        })
        .sum();
    width.max(4.0).min(full_row_bytes)
}

/// Whether a join side is a single base table bucketed on its join key.
fn side_bucketed(
    bindings: &HashMap<String, &TableDef>,
    equi: &[(ColRef, ColRef)],
    side_bindings: &HashSet<String>,
) -> bool {
    if side_bindings.len() != 1 {
        return false;
    }
    let Some(b) = side_bindings.iter().next() else {
        return false;
    };
    let Some(table) = bindings.get(b) else {
        return false;
    };
    let Some(part) = &table.partitioned_by else {
        return false;
    };
    equi.iter()
        .any(|(lk, rk)| (lk.0 == *b && lk.1 == *part) || (rk.0 == *b && rk.1 == *part))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::{ColumnDef, ColumnStats, RemoteSystemProfile, SystemId, TableStats};
    use sqlkit::sql_to_plan;

    fn test_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_system(RemoteSystemProfile::paper_hive_cluster("hive"))
            .unwrap();
        for (name, rows, size) in [("t_big", 1_000_000u64, 250u64), ("t_small", 100_000, 100)] {
            let mut stats = TableStats::new(rows, size);
            let mut schema = vec![];
            for dup in [1u64, 5] {
                let col = format!("a{dup}");
                stats = stats.with_column(&col, ColumnStats::duplicated_range(rows, dup));
                schema.push(ColumnDef::int(&col));
            }
            stats = stats.with_column("z", ColumnStats::constant(0));
            schema.push(ColumnDef::int("z"));
            schema.push(ColumnDef::chars("dummy", (size - 12) as u32));
            c.register_table(TableDef::new(name, schema, stats, SystemId::new("hive")))
                .unwrap();
        }
        c
    }

    #[test]
    fn scan_query_analysis() {
        let cat = test_catalog();
        let plan = sql_to_plan("SELECT a1 FROM t_small WHERE a1 < 50000").unwrap();
        let a = analyze(&cat, &plan).unwrap();
        assert_eq!(a.core, CoreKind::Scan);
        assert!(a.join.is_none());
        assert!(a.agg.is_none());
        assert_eq!(a.scan_in.unwrap().rows, 100_000.0);
        assert!((a.core_out.rows - 50_000.0).abs() < 500.0);
    }

    #[test]
    fn join_analysis_exposes_fig2_dimensions() {
        let cat = test_catalog();
        let plan =
            sql_to_plan("SELECT r.a1, s.a5 FROM t_big r JOIN t_small s ON r.a1 = s.a1").unwrap();
        let a = analyze(&cat, &plan).unwrap();
        assert_eq!(a.core, CoreKind::Join);
        let (info, ctx) = a.join.unwrap();
        assert_eq!(info.big.rows, 1_000_000.0);
        assert_eq!(info.big.row_bytes, 250.0);
        assert_eq!(info.small.rows, 100_000.0);
        // Projected width of big side: a1 (4 bytes, also the key).
        assert_eq!(info.big.proj_bytes, 4.0);
        // Small side projects a5 + join key a1 = 8 bytes.
        assert_eq!(info.small.proj_bytes, 8.0);
        assert!((info.out_rows - 100_000.0).abs() < 1.0);
        assert!(ctx.has_equi_keys);
        assert!(!ctx.small_bucketed);
    }

    #[test]
    fn aggregation_analysis_exposes_four_dimensions() {
        let cat = test_catalog();
        let plan = sql_to_plan("SELECT a5, SUM(a1) AS s FROM t_big GROUP BY a5").unwrap();
        let a = analyze(&cat, &plan).unwrap();
        let agg = a.agg.unwrap();
        assert_eq!(agg.in_rows, 1_000_000.0);
        assert_eq!(agg.in_bytes, 250.0);
        assert!((agg.groups - 200_000.0).abs() < 1.0);
        assert_eq!(agg.n_aggs, 1);
        assert_eq!(agg.out_bytes, 12.0);
    }

    #[test]
    fn order_by_and_limit_are_analysed() {
        let cat = test_catalog();
        let plan = sql_to_plan("SELECT a1 FROM t_small WHERE a1 < 50000 ORDER BY a1 DESC LIMIT 10")
            .unwrap();
        let a = analyze(&cat, &plan).unwrap();
        let sort_in = a.sort_in.expect("sort analysed");
        assert!(
            (sort_in.rows - 50_000.0).abs() < 500.0,
            "sort over {}",
            sort_in.rows
        );
        assert_eq!(a.limit, Some(10));
        assert!(
            (a.root.rows - 10.0).abs() < 1e-9,
            "limit caps root: {}",
            a.root.rows
        );
        // Plain queries have neither.
        let plain = sql_to_plan("SELECT a1 FROM t_small").unwrap();
        let pa = analyze(&cat, &plain).unwrap();
        assert!(pa.sort_in.is_none());
        assert_eq!(pa.limit, None);
    }

    #[test]
    fn filter_feeds_join_output_not_inputs() {
        let cat = test_catalog();
        let plan = sql_to_plan(
            "SELECT r.a1, s.a1 FROM t_big r JOIN t_small s ON r.a1 = s.a1 \
             WHERE s.a1 + r.z < 50000",
        )
        .unwrap();
        let a = analyze(&cat, &plan).unwrap();
        let (info, _) = a.join.unwrap();
        // Inputs are unfiltered …
        assert_eq!(info.big.rows, 1_000_000.0);
        // … but the output reflects the threshold predicate (~50 % of 100k).
        assert!(
            (info.out_rows - 50_000.0).abs() < 500.0,
            "out {}",
            info.out_rows
        );
    }
}
