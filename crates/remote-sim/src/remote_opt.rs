//! The remote system's *internal* optimizer: rule-based physical-algorithm
//! selection.
//!
//! §4 notes that "within a single remote system, it is not trivial for
//! IntelliSphere to predict which physical algorithm, possibly from
//! several candidates, will be used". This module is the thing being
//! predicted: a deterministic rule set, per engine persona, that picks a
//! join/aggregation algorithm from the input statistics. The costing
//! crate's applicability rules try to reconstruct these decisions from the
//! outside.

use crate::{
    cluster::ClusterConfig,
    exec::{AggInfo, JoinInfo},
    physical::{AggAlgorithm, JoinAlgorithm},
};
use catalog::SystemKind;

/// Inputs to the join-algorithm decision beyond raw sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinContext {
    /// The join has at least one equi-key conjunct.
    pub has_equi_keys: bool,
    /// Big (probe) side is bucketed/partitioned on the join key.
    pub big_bucketed: bool,
    /// Small (build) side is bucketed/partitioned on the join key.
    pub small_bucketed: bool,
}

/// Tunable thresholds of a persona's optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerRules {
    /// Broadcast the build side when it is at most this many bytes.
    pub broadcast_threshold_bytes: f64,
    /// Treat a key as skewed when its heaviest value carries more than
    /// this fraction of the big side's rows.
    pub skew_fraction: f64,
    /// Below this many result pairs a nested loop is acceptable (RDBMS).
    pub nested_loop_pair_limit: f64,
}

impl OptimizerRules {
    /// Hive defaults (32 MB broadcast threshold, mirroring
    /// `hive.mapjoin.smalltable.filesize`-style settings).
    pub fn hive() -> Self {
        OptimizerRules {
            broadcast_threshold_bytes: 32.0 * 1024.0 * 1024.0,
            skew_fraction: 0.20,
            nested_loop_pair_limit: 0.0,
        }
    }

    /// Spark defaults (10 MB `autoBroadcastJoinThreshold`).
    pub fn spark() -> Self {
        OptimizerRules {
            broadcast_threshold_bytes: 10.0 * 1024.0 * 1024.0,
            skew_fraction: 0.20,
            nested_loop_pair_limit: 0.0,
        }
    }

    /// RDBMS defaults.
    pub fn rdbms() -> Self {
        OptimizerRules {
            broadcast_threshold_bytes: f64::INFINITY,
            skew_fraction: 1.0,
            nested_loop_pair_limit: 1.0e6,
        }
    }
}

/// Picks the join algorithm the remote system would use.
pub fn choose_join(
    kind: SystemKind,
    rules: &OptimizerRules,
    cluster: &ClusterConfig,
    j: &JoinInfo,
    ctx: &JoinContext,
) -> JoinAlgorithm {
    match kind {
        SystemKind::Hive => {
            if !ctx.has_equi_keys {
                // Hive runs cross joins through the common shuffle join.
                return JoinAlgorithm::HiveShuffleJoin;
            }
            if j.heavy_key_rows > rules.skew_fraction * j.big.rows && j.big.rows > 1_000.0 {
                return JoinAlgorithm::HiveSkewJoin;
            }
            if ctx.big_bucketed && ctx.small_bucketed {
                return JoinAlgorithm::HiveSortMergeBucketJoin;
            }
            if j.small.total_bytes() <= rules.broadcast_threshold_bytes {
                return JoinAlgorithm::HiveBroadcastJoin;
            }
            if ctx.small_bucketed
                && j.small.total_bytes() / cluster.total_cores() as f64
                    <= cluster.task_hash_budget_bytes() as f64
            {
                return JoinAlgorithm::HiveBucketMapJoin;
            }
            JoinAlgorithm::HiveShuffleJoin
        }
        SystemKind::Spark => {
            if !ctx.has_equi_keys {
                return if j.small.total_bytes() <= rules.broadcast_threshold_bytes {
                    JoinAlgorithm::SparkBroadcastNestedLoopJoin
                } else {
                    JoinAlgorithm::SparkCartesianProductJoin
                };
            }
            if j.small.total_bytes() <= rules.broadcast_threshold_bytes {
                return JoinAlgorithm::SparkBroadcastHashJoin;
            }
            let partitions = cluster.total_cores().max(1) as f64;
            let per_partition = j.small.total_proj_bytes() / partitions;
            if per_partition <= cluster.task_hash_budget_bytes() as f64
                && j.big.rows >= 3.0 * j.small.rows
            {
                return JoinAlgorithm::SparkShuffleHashJoin;
            }
            JoinAlgorithm::SparkSortMergeJoin
        }
        SystemKind::Rdbms | SystemKind::Teradata => {
            if !ctx.has_equi_keys {
                return JoinAlgorithm::RdbmsNestedLoopJoin;
            }
            if j.big.rows * j.small.rows <= rules.nested_loop_pair_limit {
                return JoinAlgorithm::RdbmsNestedLoopJoin;
            }
            let mem = cluster.memory_per_node_bytes as f64 * 0.5;
            if j.small.total_bytes() <= mem {
                JoinAlgorithm::RdbmsHashJoin
            } else {
                JoinAlgorithm::RdbmsSortMergeJoin
            }
        }
    }
}

/// Picks the aggregation algorithm.
pub fn choose_agg(cluster: &ClusterConfig, a: &AggInfo) -> AggAlgorithm {
    // Spill the hash table badly (> 4× budget) and sorting wins.
    let hash_bytes = a.groups * a.out_bytes;
    if hash_bytes > 4.0 * cluster.task_hash_budget_bytes() as f64 {
        AggAlgorithm::SortAggregate
    } else {
        AggAlgorithm::HashAggregate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SideInfo;

    fn ctx() -> JoinContext {
        JoinContext {
            has_equi_keys: true,
            big_bucketed: false,
            small_bucketed: false,
        }
    }

    fn info(big_rows: f64, small_rows: f64, small_bytes: f64) -> JoinInfo {
        JoinInfo {
            big: SideInfo {
                rows: big_rows,
                row_bytes: 250.0,
                proj_bytes: 12.0,
            },
            small: SideInfo {
                rows: small_rows,
                row_bytes: small_bytes,
                proj_bytes: 12.0,
            },
            out_rows: small_rows,
            out_bytes: 24.0,
            heavy_key_rows: 1.0,
        }
    }

    #[test]
    fn hive_broadcasts_small_tables() {
        let cluster = ClusterConfig::paper_hive();
        // 10k rows × 100 B = 1 MB < 32 MB threshold.
        let a = choose_join(
            SystemKind::Hive,
            &OptimizerRules::hive(),
            &cluster,
            &info(1e7, 1e4, 100.0),
            &ctx(),
        );
        assert_eq!(a, JoinAlgorithm::HiveBroadcastJoin);
    }

    #[test]
    fn hive_shuffles_two_large_tables() {
        let cluster = ClusterConfig::paper_hive();
        // 10M × 100 B = 1 GB build side.
        let a = choose_join(
            SystemKind::Hive,
            &OptimizerRules::hive(),
            &cluster,
            &info(1e7, 1e7, 100.0),
            &ctx(),
        );
        assert_eq!(a, JoinAlgorithm::HiveShuffleJoin);
    }

    #[test]
    fn hive_uses_smb_when_both_bucketed() {
        let cluster = ClusterConfig::paper_hive();
        let c = JoinContext {
            has_equi_keys: true,
            big_bucketed: true,
            small_bucketed: true,
        };
        let a = choose_join(
            SystemKind::Hive,
            &OptimizerRules::hive(),
            &cluster,
            &info(1e7, 1e7, 100.0),
            &c,
        );
        assert_eq!(a, JoinAlgorithm::HiveSortMergeBucketJoin);
    }

    #[test]
    fn hive_detects_skew() {
        let cluster = ClusterConfig::paper_hive();
        let mut j = info(1e6, 1e6, 100.0);
        j.heavy_key_rows = 0.5 * 1e6;
        let a = choose_join(
            SystemKind::Hive,
            &OptimizerRules::hive(),
            &cluster,
            &j,
            &ctx(),
        );
        assert_eq!(a, JoinAlgorithm::HiveSkewJoin);
    }

    #[test]
    fn spark_cross_joins_pick_by_size() {
        let cluster = ClusterConfig::paper_hive();
        let no_keys = JoinContext {
            has_equi_keys: false,
            ..ctx()
        };
        let small = choose_join(
            SystemKind::Spark,
            &OptimizerRules::spark(),
            &cluster,
            &info(1e6, 1e3, 100.0),
            &no_keys,
        );
        assert_eq!(small, JoinAlgorithm::SparkBroadcastNestedLoopJoin);
        let large = choose_join(
            SystemKind::Spark,
            &OptimizerRules::spark(),
            &cluster,
            &info(1e6, 1e7, 100.0),
            &no_keys,
        );
        assert_eq!(large, JoinAlgorithm::SparkCartesianProductJoin);
    }

    #[test]
    fn spark_sort_merge_for_balanced_large_inputs() {
        let cluster = ClusterConfig::paper_hive();
        let a = choose_join(
            SystemKind::Spark,
            &OptimizerRules::spark(),
            &cluster,
            &info(1e7, 1e7, 1000.0),
            &ctx(),
        );
        assert_eq!(a, JoinAlgorithm::SparkSortMergeJoin);
    }

    #[test]
    fn rdbms_nested_loop_for_tiny_inputs() {
        let cluster = ClusterConfig::single_node(8, 1 << 33);
        let a = choose_join(
            SystemKind::Rdbms,
            &OptimizerRules::rdbms(),
            &cluster,
            &info(100.0, 100.0, 100.0),
            &ctx(),
        );
        assert_eq!(a, JoinAlgorithm::RdbmsNestedLoopJoin);
        let b = choose_join(
            SystemKind::Rdbms,
            &OptimizerRules::rdbms(),
            &cluster,
            &info(1e6, 1e5, 100.0),
            &ctx(),
        );
        assert_eq!(b, JoinAlgorithm::RdbmsHashJoin);
    }

    #[test]
    fn agg_switches_to_sort_for_huge_group_counts() {
        let cluster = ClusterConfig::paper_hive();
        let small = AggInfo {
            in_rows: 1e6,
            in_bytes: 100.0,
            groups: 1e3,
            out_bytes: 12.0,
            n_aggs: 1,
        };
        assert_eq!(choose_agg(&cluster, &small), AggAlgorithm::HashAggregate);
        let huge = AggInfo {
            groups: 1e9,
            out_bytes: 100.0,
            ..small
        };
        assert_eq!(choose_agg(&cluster, &huge), AggAlgorithm::SortAggregate);
    }
}
