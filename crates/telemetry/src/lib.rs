#![warn(missing_docs)]

//! Observability foundation for the IntelliSphere costing workspace.
//!
//! The paper's offline-tuning loop (§4.3) hinges on *seeing* what the
//! estimator did: which path produced each estimate (pure NN, remedy
//! blend, sub-operator formula), what the remote systems actually
//! reported back, and whether a trained model is drifting away from the
//! workload it serves. This crate provides the three layers that make
//! that visible without taxing the estimation hot path:
//!
//! * [`metrics`] — a lock-cheap [`MetricsRegistry`] of atomic counters,
//!   gauges, and fixed-bucket histograms. Handles are pre-resolvable
//!   `Arc`s, so a hot loop pays one relaxed atomic per increment.
//!   The registry renders Prometheus text exposition
//!   ([`MetricsRegistry::render_prometheus`]) and produces a
//!   [`MetricsSnapshot`] for programmatic assertions.
//! * [`trace`] — structured event tracing: typed [`Event`]s describing
//!   each estimate's full decision trail, routed through a pluggable
//!   [`Subscriber`]. With no subscriber attached ([`Tracer::disabled`]),
//!   [`Tracer::emit`] never runs its closure, so instrumented code
//!   allocates nothing.
//! * [`drift`] — a [`DriftMonitor`] computing rolling RMSE% and Q-error
//!   per model key over a sliding window, flagging models whose error
//!   exceeds a configurable threshold so the offline-tuning path knows
//!   what to retrain.
//!
//! [`Telemetry`] bundles a registry and a tracer into one cheaply
//! cloneable handle that instrumented components carry.

pub mod drift;
pub mod metrics;
pub mod slo;
pub mod span;
pub mod trace;

pub use drift::{DriftConfig, DriftMonitor, ModelHealth};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricId, MetricsRegistry, MetricsSnapshot,
};
pub use slo::{BurnAlert, SloConfig, SloEngine};
pub use span::{Exemplar, SpanConfig, SpanGuard, SpanId, SpanLayer, SpanSnapshot, Stage};
pub use trace::{AlertEvent, Event, RingSubscriber, Span, Subscriber, Tracer, VecSubscriber};

use std::sync::Arc;

/// One observability handle: a metrics registry plus an event tracer.
///
/// Cloning shares the underlying registry and subscriber, so a planner
/// thread's clone feeds the same metrics as the service that spawned it.
/// [`Telemetry::default`] carries a fresh registry and a *disabled*
/// tracer — instrumented code stays allocation-free on the hot path
/// until a subscriber is attached.
#[derive(Clone)]
pub struct Telemetry {
    /// The shared metrics registry.
    pub metrics: MetricsRegistry,
    /// Pre-resolved federation planner counters — resolved here, at
    /// construction, so the plan path never takes the registry mutex.
    pub planner: metrics::PlannerCounters,
    /// Pre-resolved workload scheduler counters (same discipline).
    pub scheduler: metrics::SchedulerCounters,
    /// The event tracer (disabled unless a subscriber was attached).
    pub tracer: Tracer,
    /// The request-span layer (sampling off by default).
    pub spans: SpanLayer,
}

impl Default for Telemetry {
    fn default() -> Self {
        let registry = MetricsRegistry::default();
        Telemetry {
            planner: metrics::PlannerCounters::register(&registry),
            scheduler: metrics::SchedulerCounters::register(&registry),
            metrics: registry,
            tracer: Tracer::default(),
            spans: SpanLayer::default(),
        }
    }
}

impl Telemetry {
    /// A fresh registry with no subscriber.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// A fresh registry with events routed to `subscriber`.
    pub fn with_subscriber(subscriber: Arc<dyn Subscriber>) -> Self {
        Telemetry {
            tracer: Tracer::new(subscriber),
            ..Telemetry::default()
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("tracing_enabled", &self.tracer.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_telemetry_is_disabled() {
        let t = Telemetry::new();
        assert!(!t.tracer.is_enabled());
        t.tracer
            .emit(|| unreachable!("disabled tracer must not build events"));
    }

    #[test]
    fn with_subscriber_enables_tracing_and_shares_on_clone() {
        let sub = Arc::new(VecSubscriber::new());
        let t = Telemetry::with_subscriber(sub.clone());
        let t2 = t.clone();
        t2.tracer.emit(|| Event::Span {
            name: "x".into(),
            micros: 1.0,
        });
        assert_eq!(sub.len(), 1);
        assert!(format!("{t:?}").contains("tracing_enabled: true"));
    }
}
