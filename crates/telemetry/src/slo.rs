//! Runtime SLO tracking: error-budget burn-rate over two windows.
//!
//! A served estimate is *good* when it succeeds within the target
//! latency. The SLO allows a budgeted fraction of bad requests; the
//! **burn rate** is how fast that budget is being consumed — a burn of
//! 1.0 spends exactly the budget, 10.0 exhausts it ten times over. The
//! classic multi-window rule alerts only when **both** a short window
//! (fast signal, noisy) and a long window (slow signal, stable) burn
//! above the threshold, which filters out blips without missing real
//! regressions.
//!
//! [`SloEngine`] is fed every response (`record`), not just sampled
//! ones — burn rates need the full population. Time is always supplied
//! by the caller (the serving clock), never read ambiently, so replays
//! under a manual clock are deterministic. State is a fixed ring of
//! good/bad buckets sized at construction; recording allocates nothing.
//!
//! Each record updates the `slo_burn_rate{window=…}` gauge family; a
//! fired alert increments `slo_alerts_total` and emits a typed
//! [`AlertEvent::SloBurn`] through the tracer.

use crate::metrics::{Counter, Gauge};
use crate::trace::{AlertEvent, Event, Tracer};
use crate::Telemetry;
use parking_lot::Mutex;

/// SLO target and alerting policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// A request slower than this (microseconds) is *bad* even when it
    /// succeeds.
    pub target_latency_us: f64,
    /// Allowed bad-request fraction (the error budget), in `(0, 1]`.
    pub error_budget: f64,
    /// Short (fast-signal) window length in microseconds.
    pub short_window_us: u64,
    /// Long (stable-signal) window length in microseconds.
    pub long_window_us: u64,
    /// Alert when both windows burn at or above this rate.
    pub burn_threshold: f64,
    /// Minimum interval between alerts, in microseconds.
    pub cooldown_us: u64,
    /// Minimum requests in the long window before alerting — keeps a
    /// cold start from paging on its first bad request.
    pub min_requests: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_latency_us: 5_000.0,
            error_budget: 0.01,
            short_window_us: 5_000_000,
            long_window_us: 60_000_000,
            burn_threshold: 10.0,
            cooldown_us: 60_000_000,
            min_requests: 20,
        }
    }
}

/// A fired burn-rate alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// Burn rate over the short window at firing time.
    pub short_burn: f64,
    /// Burn rate over the long window at firing time.
    pub long_burn: f64,
    /// The configured threshold both windows crossed.
    pub threshold: f64,
    /// Caller-supplied timestamp of the firing request (microseconds).
    pub at_us: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    good: u64,
    bad: u64,
}

/// Ring of time buckets; the head bucket covers
/// `[head_start_us, head_start_us + bucket_us)`.
#[derive(Debug)]
struct SloState {
    bucket_us: u64,
    buckets: Vec<Bucket>,
    head: usize,
    head_start_us: u64,
    started: bool,
    last_alert_us: Option<u64>,
}

impl SloState {
    fn advance(&mut self, now_us: u64) {
        if !self.started {
            self.started = true;
            self.head_start_us = now_us;
            return;
        }
        if now_us < self.head_start_us {
            return; // a manual clock rewound; keep attributing to the head
        }
        let steps = ((now_us - self.head_start_us) / self.bucket_us) as usize;
        if steps == 0 {
            return;
        }
        let len = self.buckets.len();
        for _ in 0..steps.min(len) {
            self.head = (self.head + 1) % len;
            self.buckets[self.head] = Bucket::default();
        }
        self.head_start_us += steps as u64 * self.bucket_us;
    }

    fn observe(&mut self, bad: bool) {
        let b = &mut self.buckets[self.head];
        if bad {
            b.bad += 1;
        } else {
            b.good += 1;
        }
    }

    /// `(bad, total)` over the most recent `n` buckets.
    fn window_counts(&self, n: usize) -> (u64, u64) {
        let len = self.buckets.len();
        let (mut bad, mut total) = (0u64, 0u64);
        for i in 0..n.min(len) {
            // analysis:allow(panic-freedom): the index is reduced modulo len, always in bounds
            let b = self.buckets[(self.head + len - i) % len];
            bad += b.bad;
            total += b.good + b.bad;
        }
        (bad, total)
    }
}

fn burn(bad: u64, total: u64, budget: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    (bad as f64 / total as f64) / budget
}

/// Error-budget burn tracker with multi-window alerting. Cheap to
/// record into (one short mutexed ring update plus two gauge stores);
/// cloneable via `Arc` by the embedding layer.
#[derive(Debug)]
pub struct SloEngine {
    config: SloConfig,
    short_buckets: usize,
    long_buckets: usize,
    /// Rank `SLO_STATE`: taken with nothing held; alert emission
    /// happens after release.
    slo_state: Mutex<SloState>,
    short_gauge: Gauge,
    long_gauge: Gauge,
    alerts: Counter,
    tracer: Tracer,
}

impl SloEngine {
    /// Builds an engine publishing into `telemetry`: the
    /// `slo_burn_rate{window=…}` gauge family, the `slo_alerts_total`
    /// counter, and [`AlertEvent::SloBurn`] trail events.
    pub fn new(config: SloConfig, telemetry: &Telemetry) -> Self {
        assert!(
            config.error_budget > 0.0 && config.error_budget <= 1.0,
            "error budget must be in (0, 1]"
        );
        assert!(
            config.short_window_us > 0 && config.long_window_us >= config.short_window_us,
            "windows must be positive with short <= long"
        );
        // 8 buckets across the short window bounds attribution error;
        // the long window reuses the same granularity.
        let bucket_us = (config.short_window_us / 8).max(1);
        let short_buckets = config.short_window_us.div_ceil(bucket_us) as usize;
        let long_buckets = config.long_window_us.div_ceil(bucket_us) as usize;
        let reg = &telemetry.metrics;
        reg.set_help(
            "slo_burn_rate",
            "Error-budget burn rate over the labelled alerting window.",
        );
        reg.set_help(
            "slo_alerts_total",
            "Multi-window SLO burn-rate alerts fired.",
        );
        let slo_state = Mutex::new(SloState {
            bucket_us,
            buckets: vec![Bucket::default(); long_buckets + 1],
            head: 0,
            head_start_us: 0,
            started: false,
            last_alert_us: None,
        });
        slo_state.set_rank(parking_lot::rank::SLO_STATE);
        SloEngine {
            short_buckets,
            long_buckets,
            slo_state,
            short_gauge: reg.gauge("slo_burn_rate", &[("window", "short")]),
            long_gauge: reg.gauge("slo_burn_rate", &[("window", "long")]),
            alerts: reg.counter("slo_alerts_total", &[]),
            tracer: telemetry.tracer.clone(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records one response: `ok` is whether it succeeded, `latency_us`
    /// its end-to-end latency, `now_us` the serving clock's timestamp.
    /// Returns the alert if this record fired one.
    pub fn record(&self, now_us: u64, latency_us: f64, ok: bool) -> Option<BurnAlert> {
        let bad = !ok || latency_us > self.config.target_latency_us;
        let (short_burn, long_burn, fire) = {
            let mut state = self.slo_state.lock();
            state.advance(now_us);
            state.observe(bad);
            let (short_bad, short_total) = state.window_counts(self.short_buckets);
            let (long_bad, long_total) = state.window_counts(self.long_buckets);
            let short_burn = burn(short_bad, short_total, self.config.error_budget);
            let long_burn = burn(long_bad, long_total, self.config.error_budget);
            let mut fire = false;
            if long_total >= self.config.min_requests
                && short_burn >= self.config.burn_threshold
                && long_burn >= self.config.burn_threshold
            {
                let cooled = state.last_alert_us.map_or(true, |t| {
                    now_us.saturating_sub(t) >= self.config.cooldown_us
                });
                if cooled {
                    state.last_alert_us = Some(now_us);
                    fire = true;
                }
            }
            (short_burn, long_burn, fire)
        };
        self.short_gauge.set(short_burn);
        self.long_gauge.set(long_burn);
        if !fire {
            return None;
        }
        self.alerts.inc();
        let threshold = self.config.burn_threshold;
        let target_us = self.config.target_latency_us;
        self.tracer.emit(|| {
            Event::Alert(AlertEvent::SloBurn {
                target_us,
                short_burn,
                long_burn,
                threshold,
            })
        });
        Some(BurnAlert {
            short_burn,
            long_burn,
            threshold,
            at_us: now_us,
        })
    }

    /// Current `(short, long)` burn rates as last published.
    pub fn burn_rates(&self) -> (f64, f64) {
        (self.short_gauge.get(), self.long_gauge.get())
    }

    /// Alerts fired since construction.
    pub fn alerts_total(&self) -> u64 {
        self.alerts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecSubscriber;
    use std::sync::Arc;

    fn engine(telemetry: &Telemetry) -> SloEngine {
        SloEngine::new(
            SloConfig {
                target_latency_us: 1_000.0,
                error_budget: 0.1,
                short_window_us: 1_000_000,
                long_window_us: 4_000_000,
                burn_threshold: 5.0,
                cooldown_us: 2_000_000,
                min_requests: 10,
            },
            telemetry,
        )
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let t = Telemetry::new();
        let e = engine(&t);
        for i in 0..200u64 {
            assert!(e.record(i * 10_000, 500.0, true).is_none());
        }
        let (short, long) = e.burn_rates();
        assert_eq!((short, long), (0.0, 0.0));
        assert_eq!(e.alerts_total(), 0);
        let snap = t.metrics.snapshot();
        assert_eq!(
            snap.gauge("slo_burn_rate", &[("window", "short")]),
            Some(0.0)
        );
        assert_eq!(snap.counter("slo_alerts_total", &[]), Some(0));
    }

    #[test]
    fn sustained_breach_alerts_once_per_cooldown() {
        let sub = Arc::new(VecSubscriber::new());
        let t = Telemetry::with_subscriber(sub.clone());
        let e = engine(&t);
        let mut alerts = Vec::new();
        // 100% bad traffic for 3 simulated seconds at 100 rps.
        for i in 0..300u64 {
            if let Some(a) = e.record(i * 10_000, 5_000.0, true) {
                alerts.push(a);
            }
        }
        // Burn = 1.0 / 0.1 = 10 >= 5 on both windows; the cooldown
        // (2 s) allows the initial alert plus one follow-up.
        assert_eq!(alerts.len(), 2, "cooldown must suppress repeats");
        assert!(alerts[0].short_burn >= 5.0 && alerts[0].long_burn >= 5.0);
        assert!(alerts[1].at_us - alerts[0].at_us >= 2_000_000);
        assert_eq!(e.alerts_total(), 2);
        let events = sub.snapshot();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            Event::Alert(AlertEvent::SloBurn { threshold, .. }) if *threshold == 5.0
        ));
    }

    #[test]
    fn min_requests_gates_cold_start() {
        let t = Telemetry::new();
        let e = engine(&t);
        for i in 0..9u64 {
            assert!(
                e.record(i * 1_000, 5_000.0, false).is_none(),
                "below min_requests nothing may fire"
            );
        }
        assert!(e.record(9_000, 5_000.0, false).is_some());
    }

    #[test]
    fn short_blip_does_not_alert_through_the_long_window() {
        let t = Telemetry::new();
        let e = engine(&t);
        // 4 simulated seconds of good traffic fill the long window…
        for i in 0..400u64 {
            e.record(i * 10_000, 100.0, true);
        }
        // …then a 0.3 s blip of bad responses: the short window burns
        // hot, but the long window still holds mostly good requests.
        let mut fired = false;
        for i in 0..30u64 {
            fired |= e.record(4_000_000 + i * 10_000, 9_000.0, true).is_some();
        }
        let (short, long) = e.burn_rates();
        assert!(short > 2.0, "short window must see the blip ({short})");
        assert!(long < 5.0, "long window must absorb it ({long})");
        assert!(!fired, "multi-window rule must suppress the blip");
    }

    #[test]
    fn errors_count_as_bad_regardless_of_latency() {
        let t = Telemetry::new();
        let e = engine(&t);
        for i in 0..20u64 {
            e.record(i * 1_000, 10.0, false);
        }
        let (short, _) = e.burn_rates();
        assert!(short >= 5.0);
    }

    #[test]
    fn stale_buckets_age_out() {
        let t = Telemetry::new();
        let e = engine(&t);
        for i in 0..50u64 {
            e.record(i * 1_000, 9_000.0, true);
        }
        let (short_hot, _) = e.burn_rates();
        assert!(short_hot > 0.0);
        // 10 simulated seconds later every window has rolled over.
        e.record(10_050_000, 100.0, true);
        let (short, long) = e.burn_rates();
        assert_eq!((short, long), (0.0, 0.0));
    }
}
