//! Structured event tracing for the estimation path.
//!
//! Instead of log lines, instrumented code emits typed [`Event`]s — each
//! estimate's full decision trail (features, pivots, blend weights,
//! cache outcome, chosen sub-operator algorithm) is inspectable data.
//! Events flow through a pluggable [`Subscriber`]; the crate ships two
//! collectors, [`VecSubscriber`] (unbounded, for tests) and
//! [`RingSubscriber`] (bounded, keep-latest, for long-running services).
//!
//! The hot-path contract: [`Tracer::emit`] takes a *closure* that builds
//! the event. With no subscriber attached the closure is never invoked,
//! so a disabled tracer adds no heap allocation to the estimate path.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// One entry in an estimate's decision trail.
///
/// Variants mirror the stations of the paper's estimation pipeline:
/// service-level cache handling, the logical-operator remedy path
/// (§4.2), sub-operator algorithm choice (§4.1), observation/tuning
/// feedback (§4.3), remote execution, and federation planning.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The service answered an estimate request.
    EstimateServed {
        /// Target system.
        system: String,
        /// Operator kind (display form, e.g. `"join"`).
        operator: String,
        /// The request's feature vector.
        features: Vec<f64>,
        /// Estimated execution time, seconds.
        secs: f64,
        /// Provenance of the estimate (display form of `EstimateSource`).
        source: String,
        /// Whether the service cache satisfied the request.
        cache_hit: bool,
        /// Model-state epoch the estimate was computed from (`None` for
        /// unversioned paths, e.g. a profile-based manager).
        epoch: Option<u64>,
    },
    /// The remedy path compared a query point against the training
    /// envelope and found out-of-range (pivot) dimensions.
    PivotsDetected {
        /// Target system.
        system: String,
        /// Operator kind.
        operator: String,
        /// Indices of the feature dimensions outside the trained range.
        pivots: Vec<usize>,
    },
    /// The remedy path blended the NN estimate with the local
    /// regression estimate.
    RemedyBlend {
        /// Target system.
        system: String,
        /// Operator kind.
        operator: String,
        /// Blend weight on the NN component.
        alpha: f64,
        /// The NN component, seconds.
        nn_estimate: f64,
        /// The regression component, seconds.
        regression_estimate: f64,
        /// The blended result, seconds.
        blended: f64,
    },
    /// A sub-operator costing policy chose among surviving algorithms.
    SubOpAlgorithmChosen {
        /// Target system.
        system: String,
        /// Operator kind.
        operator: String,
        /// Resolution policy name (e.g. `"worst"`).
        policy: String,
        /// Candidate algorithm costs the policy resolved over.
        candidates: Vec<f64>,
        /// The resolved cost, seconds.
        resolved: f64,
    },
    /// An actual execution time was fed back to a model.
    ActualObserved {
        /// Target system.
        system: String,
        /// Operator kind.
        operator: String,
        /// What the model had predicted, seconds.
        predicted: f64,
        /// What the remote system reported, seconds.
        actual: f64,
    },
    /// The α blend weight was retuned from accumulated observations.
    AlphaAdjusted {
        /// Target system.
        system: String,
        /// Operator kind.
        operator: String,
        /// Weight before retuning.
        old_alpha: f64,
        /// Weight after retuning.
        new_alpha: f64,
    },
    /// An offline tuning pass retrained a model from its execution log.
    TuningPass {
        /// Target system.
        system: String,
        /// Operator kind.
        operator: String,
        /// Log entries consumed.
        entries_used: usize,
        /// Feature dimensions whose trained range was expanded.
        dims_expanded: usize,
        /// RMSE% against the log after retraining.
        rmse_pct_after: f64,
    },
    /// A simulated remote system finished executing a query.
    RemoteExecution {
        /// Executing system.
        system: String,
        /// Wall-clock the execution took, simulated seconds.
        secs: f64,
        /// Queries the engine has executed so far.
        queries_done: u64,
    },
    /// The federation planner ranked candidate systems for a query.
    PlanRanked {
        /// Systems in ranked order, cheapest first.
        ranking: Vec<String>,
        /// Chosen system.
        chosen: String,
        /// Total cost of the chosen placement, seconds.
        total_secs: f64,
    },
    /// The drift monitor flagged a model as drifted.
    DriftFlagged {
        /// Model key (display form, e.g. `"hive-a/join"`).
        model: String,
        /// Rolling RMSE% over the window.
        rmse_pct: f64,
        /// Mean Q-error over the window.
        mean_q_error: f64,
    },
    /// A named span of work completed.
    Span {
        /// Span name.
        name: String,
        /// Duration in microseconds.
        micros: f64,
    },
    /// A typed alert raised by the runtime observability plane (SLO
    /// burn, drift breach). Alerts are *actionable* — downstream
    /// consumers route them to paging or automated remediation, so
    /// they carry structured payloads instead of prose.
    Alert(AlertEvent),
}

/// The payload of an [`Event::Alert`].
#[derive(Debug, Clone, PartialEq)]
pub enum AlertEvent {
    /// Both SLO burn-rate windows crossed the alerting threshold.
    SloBurn {
        /// The SLO's target latency in microseconds.
        target_us: f64,
        /// Burn rate over the short window.
        short_burn: f64,
        /// Burn rate over the long window.
        long_burn: f64,
        /// The threshold both windows crossed.
        threshold: f64,
    },
    /// A drift-monitor breach recommending a retune of one model.
    DriftBreach {
        /// Model key (display form, e.g. `"hive-a/join"`).
        model: String,
        /// Rolling RMSE% over the drift window.
        rmse_pct: f64,
        /// Mean Q-error over the drift window.
        mean_q_error: f64,
    },
}

impl Event {
    /// A short kind tag for filtering (e.g. `"remedy_blend"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EstimateServed { .. } => "estimate_served",
            Event::PivotsDetected { .. } => "pivots_detected",
            Event::RemedyBlend { .. } => "remedy_blend",
            Event::SubOpAlgorithmChosen { .. } => "sub_op_algorithm_chosen",
            Event::ActualObserved { .. } => "actual_observed",
            Event::AlphaAdjusted { .. } => "alpha_adjusted",
            Event::TuningPass { .. } => "tuning_pass",
            Event::RemoteExecution { .. } => "remote_execution",
            Event::PlanRanked { .. } => "plan_ranked",
            Event::DriftFlagged { .. } => "drift_flagged",
            Event::Span { .. } => "span",
            Event::Alert(..) => "alert",
        }
    }
}

/// A sink for traced events. Implementations must be cheap and
/// thread-safe; they are called inline from instrumented code.
pub trait Subscriber: Send + Sync {
    /// Receives one event.
    fn on_event(&self, event: Event);
}

/// The handle instrumented code holds. Disabled by default; cloning
/// shares the subscriber.
#[derive(Clone, Default)]
pub struct Tracer {
    subscriber: Option<Arc<dyn Subscriber>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer routing events to `subscriber`.
    pub fn new(subscriber: Arc<dyn Subscriber>) -> Self {
        Tracer {
            subscriber: Some(subscriber),
        }
    }

    /// A tracer that drops everything without building it.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether a subscriber is attached.
    pub fn is_enabled(&self) -> bool {
        self.subscriber.is_some()
    }

    /// Emits the event built by `f` — but only if a subscriber is
    /// attached. The closure is never invoked on a disabled tracer, so
    /// event construction (and its allocations) costs nothing when
    /// tracing is off.
    pub fn emit<F: FnOnce() -> Event>(&self, f: F) {
        if let Some(sub) = &self.subscriber {
            sub.on_event(f());
        }
    }

    /// Runs `f`, timing it, and emits an [`Event::Span`] with the given
    /// name. On a disabled tracer `f` runs untimed.
    pub fn span<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        match &self.subscriber {
            None => f(),
            Some(sub) => {
                let start = std::time::Instant::now();
                let out = f();
                sub.on_event(Event::Span {
                    name: name.to_string(),
                    micros: start.elapsed().as_secs_f64() * 1e6,
                });
                out
            }
        }
    }

    /// Opens a named [`Span`] guard that emits an [`Event::Span`] with
    /// its elapsed time when dropped. On a disabled tracer the guard is
    /// inert (no allocation, no timing). Use [`Tracer::span`] when the
    /// work fits in a closure; the guard form suits spans crossing
    /// `?`/early-return control flow.
    pub fn start_span(&self, name: &str) -> Span {
        Span {
            inner: self.subscriber.as_ref().map(|sub| SpanInner {
                name: name.to_string(),
                start: std::time::Instant::now(),
                subscriber: Arc::clone(sub),
            }),
        }
    }
}

struct SpanInner {
    name: String,
    start: std::time::Instant,
    subscriber: Arc<dyn Subscriber>,
}

/// An RAII guard for a timed region: created by [`Tracer::start_span`],
/// it emits an [`Event::Span`] carrying its elapsed time when dropped.
/// Inert (and allocation-free) when the tracer is disabled.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.subscriber.on_event(Event::Span {
                name: inner.name,
                micros: inner.start.elapsed().as_secs_f64() * 1e6,
            });
        }
    }
}

/// An unbounded collector that keeps every event. Intended for tests
/// and short diagnostic sessions.
pub struct VecSubscriber {
    events: Mutex<Vec<Event>>,
}

impl Default for VecSubscriber {
    fn default() -> Self {
        let events = Mutex::new(Vec::new());
        // Subscriber buffers are the innermost locks the estimation
        // path touches (emit under a shard guard), hence the top rank.
        events.set_rank(parking_lot::rank::TRACE_SUBSCRIBER);
        VecSubscriber { events }
    }
}

impl VecSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        VecSubscriber::default()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all collected events, in arrival order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Removes and returns all collected events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Discards all collected events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl Subscriber for VecSubscriber {
    fn on_event(&self, event: Event) {
        self.events.lock().push(event);
    }
}

/// A bounded collector that keeps only the most recent `capacity`
/// events, evicting the oldest. Suits long-running services where the
/// trail of recent decisions matters but memory must stay flat.
///
/// Eviction is **not silent**: every dropped event is counted, readable
/// via [`RingSubscriber::dropped`] and — when built with
/// [`RingSubscriber::with_registry`] — surfaced as the
/// `trace_dropped_events` counter in exposition and snapshots. A trail
/// that quietly lost its oldest entries looks identical to one that
/// never had them; the counter is what tells an operator the ring was
/// sized too small for the traffic.
pub struct RingSubscriber {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
    dropped_counter: Option<crate::metrics::Counter>,
}

impl RingSubscriber {
    /// A ring keeping at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let events = Mutex::new(VecDeque::with_capacity(capacity));
        events.set_rank(parking_lot::rank::TRACE_SUBSCRIBER);
        RingSubscriber {
            capacity,
            events,
            dropped: AtomicU64::new(0),
            dropped_counter: None,
        }
    }

    /// A ring that additionally publishes its eviction count as the
    /// `trace_dropped_events` counter in `registry`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_registry(capacity: usize, registry: &crate::metrics::MetricsRegistry) -> Self {
        registry.set_help(
            "trace_dropped_events",
            "Trail events evicted from the ring subscriber before being read.",
        );
        let mut ring = RingSubscriber::new(capacity);
        ring.dropped_counter = Some(registry.counter("trace_dropped_events", &[]));
        ring
    }

    /// Events evicted (lost) since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }
}

impl Subscriber for RingSubscriber {
    fn on_event(&self, event: Event) {
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if let Some(counter) = &self.dropped_counter {
                counter.inc();
            }
        }
        events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, micros: f64) -> Event {
        Event::Span {
            name: name.to_string(),
            micros,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(|| unreachable!("closure must not run"));
        assert_eq!(t.span("untimed", || 42), 42);
    }

    #[test]
    fn vec_subscriber_collects_in_order() {
        let sub = Arc::new(VecSubscriber::new());
        let t = Tracer::new(sub.clone());
        assert!(t.is_enabled());
        t.emit(|| span("a", 1.0));
        t.emit(|| span("b", 2.0));
        assert_eq!(sub.len(), 2);
        let events = sub.take();
        assert_eq!(events[0], span("a", 1.0));
        assert_eq!(events[1], span("b", 2.0));
        assert!(sub.is_empty());
    }

    #[test]
    fn ring_subscriber_keeps_latest() {
        let sub = Arc::new(RingSubscriber::new(2));
        let t = Tracer::new(sub.clone());
        for i in 0..5 {
            t.emit(|| span("e", i as f64));
        }
        assert_eq!(sub.len(), 2);
        let kept = sub.snapshot();
        assert_eq!(kept, vec![span("e", 3.0), span("e", 4.0)]);
        assert_eq!(sub.capacity(), 2);
    }

    #[test]
    fn span_times_the_closure() {
        let sub = Arc::new(VecSubscriber::new());
        let t = Tracer::new(sub.clone());
        let out = t.span("work", || 7);
        assert_eq!(out, 7);
        match &sub.snapshot()[0] {
            Event::Span { name, micros } => {
                assert_eq!(name, "work");
                assert!(*micros >= 0.0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn span_guard_emits_on_drop() {
        let sub = Arc::new(VecSubscriber::new());
        let t = Tracer::new(sub.clone());
        {
            let _guard = t.start_span("guarded");
            assert!(sub.is_empty(), "span must emit on drop, not on open");
        }
        match &sub.snapshot()[0] {
            Event::Span { name, micros } => {
                assert_eq!(name, "guarded");
                assert!(*micros >= 0.0);
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Disabled tracers hand out inert guards.
        let disabled = Tracer::disabled();
        drop(disabled.start_span("nothing"));
        assert_eq!(sub.len(), 1);
    }

    #[test]
    fn event_kinds_are_stable() {
        assert_eq!(span("x", 0.0).kind(), "span");
        let e = Event::RemedyBlend {
            system: "hive-a".into(),
            operator: "join".into(),
            alpha: 0.5,
            nn_estimate: 1.0,
            regression_estimate: 2.0,
            blended: 1.5,
        };
        assert_eq!(e.kind(), "remedy_blend");
    }

    #[test]
    fn subscribers_are_thread_safe() {
        let sub = Arc::new(VecSubscriber::new());
        let t = Tracer::new(sub.clone());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        t.emit(|| span("p", i as f64));
                    }
                });
            }
        });
        assert_eq!(sub.len(), 400);
    }
}
