//! The lock-cheap metrics registry.
//!
//! Metrics are identified by a name plus a sorted label set. Creation
//! (or lookup) takes the registry's mutex once; the returned handle is
//! an `Arc` over plain atomics, so the instrumented hot path — the
//! estimation service answering a planner thread — pays one relaxed
//! atomic operation per increment and allocates nothing.
//!
//! Exposition follows the Prometheus text format
//! ([`MetricsRegistry::render_prometheus`]); tests and in-process
//! consumers use [`MetricsRegistry::snapshot`] instead, which hands the
//! same numbers back as plain maps.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A metric's identity: name plus canonical (sorted) label pairs.
pub type MetricId = (String, Vec<(String, String)>);

fn metric_id(name: &str, labels: &[(&str, &str)]) -> MetricId {
    assert!(valid_metric_name(name), "invalid metric name `{name}`");
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    (name.to_string(), ls)
}

/// Prometheus metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (test/bench bookkeeping, not a Prometheus
    /// operation).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (compare-and-swap loop).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per finite bound plus the overflow (`+Inf`) bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observations, as `f64` bits.
    sum_bits: AtomicU64,
    /// Total observations.
    count: AtomicU64,
}

/// A fixed-bucket histogram with Prometheus `le` (≤) semantics: an
/// observation lands in the first bucket whose upper bound is ≥ the
/// value; anything above the last bound lands in the `+Inf` overflow
/// bucket, and anything below the first bound still counts toward the
/// first bucket (the "underflow" values are simply small).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &*self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        HistogramSnapshot {
            bounds: core.bounds.clone(),
            counts: core
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
            count: core.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the `+Inf` overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Cumulative counts in Prometheus `le` form, ending with `+Inf`.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0;
        self.counts
            .iter()
            .map(|&c| {
                total += c;
                total
            })
            .collect()
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct RegistryInner {
    metrics: Mutex<BTreeMap<MetricId, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl Default for RegistryInner {
    fn default() -> Self {
        let inner = RegistryInner {
            metrics: Mutex::new(BTreeMap::new()),
            help: Mutex::new(BTreeMap::new()),
        };
        // Ranks for `lock-order-check` builds: exposition takes
        // metrics → help (render_prometheus), never the reverse.
        inner.metrics.set_rank(parking_lot::rank::REGISTRY_METRICS);
        inner.help.set_rank(parking_lot::rank::REGISTRY_HELP);
        inner
    }
}

/// A shared registry of named metrics.
///
/// Clones share state. Handle lookup takes the registry mutex; the
/// returned handles do not, so resolve them once outside any hot loop.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.inner.metrics.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if the id already names a different metric type, or on an
    /// invalid metric name.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = metric_id(name, labels);
        let mut metrics = self.inner.metrics.lock();
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics if the id already names a different metric type, or on an
    /// invalid metric name.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = metric_id(name, labels);
        let mut metrics = self.inner.metrics.lock();
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or creates the histogram `name{labels}` with the given
    /// finite bucket bounds (an `+Inf` bucket is implicit).
    ///
    /// # Panics
    /// Panics on an invalid name, non-increasing bounds, or if the id
    /// already names a different metric type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let id = metric_id(name, labels);
        let mut metrics = self.inner.metrics.lock();
        match metrics
            .entry(id)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Attaches Prometheus `# HELP` text to a metric name.
    pub fn set_help(&self, name: &str, help: &str) {
        self.inner
            .help
            .lock()
            .insert(name.to_string(), help.to_string());
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.inner.metrics.lock();
        let mut snap = MetricsSnapshot::default();
        for (id, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(id.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(id.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(id.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per metric name,
    /// then one `name{labels} value` sample per series; histograms
    /// expand to cumulative `_bucket{le=...}` samples plus `_sum` and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.inner.metrics.lock();
        let help = self.inner.help.lock();
        let mut out = String::new();
        let mut last_name = None::<&str>;
        for ((name, labels), metric) in metrics.iter() {
            if last_name != Some(name.as_str()) {
                if let Some(h) = help.get(name) {
                    out.push_str(&format!("# HELP {name} {h}\n"));
                }
                let ty = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {name} {ty}\n"));
                last_name = Some(name.as_str());
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name}{} {}\n", render_labels(labels), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(labels),
                        render_f64(g.get())
                    ));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let cumulative = snap.cumulative();
                    for (i, cum) in cumulative.iter().enumerate() {
                        let le = if i < snap.bounds.len() {
                            render_f64(snap.bounds[i])
                        } else {
                            "+Inf".to_string()
                        };
                        let mut ls = labels.clone();
                        ls.push(("le".to_string(), le));
                        ls.sort();
                        out.push_str(&format!("{name}_bucket{} {cum}\n", render_labels(&ls)));
                    }
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        render_labels(labels),
                        render_f64(snap.sum)
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        render_labels(labels),
                        snap.count
                    ));
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    // Prometheus text format escapes backslash, double quote, and
    // line feed in label values (backslash first, or the others'
    // escapes would be re-escaped).
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// A point-in-time copy of a whole registry, keyed like the registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<MetricId, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<MetricId, f64>,
    /// Histogram states.
    pub histograms: BTreeMap<MetricId, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter `name{labels}`, if registered.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&metric_id(name, labels)).copied()
    }

    /// The gauge `name{labels}`, if registered.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&metric_id(name, labels)).copied()
    }

    /// The histogram `name{labels}`, if registered.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms.get(&metric_id(name, labels))
    }
}

/// Pre-resolved handles for the federation planner's counters.
///
/// Handle lookup takes the registry mutex, so the planning path must
/// not call [`MetricsRegistry::counter`] per plan — these are resolved
/// once at [`crate::Telemetry`] construction and incremented lock-free
/// from `plan_query_with_service_pinned`.
#[derive(Clone)]
pub struct PlannerCounters {
    /// `federation_plans_total` — plans attempted.
    pub plans: Counter,
    /// `federation_placements_costed_total` — placements costed.
    pub costed: Counter,
    /// `federation_placements_skipped_total` — placements skipped
    /// because a system could not cost the plan shape.
    pub skipped: Counter,
}

impl PlannerCounters {
    /// Resolves (registering on first use) the planner counters.
    pub fn register(registry: &MetricsRegistry) -> PlannerCounters {
        PlannerCounters {
            plans: registry.counter("federation_plans_total", &[]),
            costed: registry.counter("federation_placements_costed_total", &[]),
            skipped: registry.counter("federation_placements_skipped_total", &[]),
        }
    }
}

/// Pre-resolved handles for the workload scheduler's counters.
///
/// Same discipline as [`PlannerCounters`]: resolved once at
/// [`crate::Telemetry`] construction, incremented lock-free from the
/// federation's physical layer (`plan_workload_pinned`).
#[derive(Clone)]
pub struct SchedulerCounters {
    /// `federation_workloads_total` — workloads planned end to end.
    pub workloads: Counter,
    /// `federation_workload_queries_scheduled_total` — queries actually
    /// dispatched (executing nodes).
    pub scheduled: Counter,
    /// `federation_workload_queries_merged_total` — queries collapsed
    /// onto an equivalent node by the reuse rule.
    pub merged: Counter,
    /// `federation_workload_scans_shared_total` — scan transfers
    /// deduplicated by shared-scan mode.
    pub shared_scans: Counter,
    /// `federation_workload_waves_total` — dispatch waves executed.
    pub waves: Counter,
    /// `federation_workload_pinned_moves_total` — placement moves
    /// accepted by the pinning rule.
    pub pinned_moves: Counter,
}

impl SchedulerCounters {
    /// Resolves (registering on first use) the scheduler counters.
    pub fn register(registry: &MetricsRegistry) -> SchedulerCounters {
        SchedulerCounters {
            workloads: registry.counter("federation_workloads_total", &[]),
            scheduled: registry.counter("federation_workload_queries_scheduled_total", &[]),
            merged: registry.counter("federation_workload_queries_merged_total", &[]),
            shared_scans: registry.counter("federation_workload_scans_shared_total", &[]),
            waves: registry.counter("federation_workload_waves_total", &[]),
            pinned_moves: registry.counter("federation_workload_pinned_moves_total", &[]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_and_reset() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total", &[("system", "hive")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same id resolves to the same underlying atomic.
        let again = reg.counter("requests_total", &[("system", "hive")]);
        again.inc();
        assert_eq!(c.get(), 6);
        c.reset();
        assert_eq!(again.get(), 0);
    }

    #[test]
    fn label_order_is_canonicalised() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m_total", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("m_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauges_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("alpha", &[]);
        g.set(0.5);
        g.add(0.25);
        assert!((g.get() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x_total", &[]);
        let _ = reg.gauge("x_total", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_rejected() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("9starts_with_digit", &[]);
    }

    #[test]
    fn histogram_bucketing_underflow_overflow_and_exact_boundaries() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_secs", &[], &[1.0, 5.0, 10.0]);
        // Underflow: below the first bound still lands in bucket 0.
        h.observe(0.001);
        h.observe(-3.0);
        // Exact boundary values are inclusive (`le` semantics).
        h.observe(1.0);
        h.observe(5.0);
        h.observe(10.0);
        // Interior.
        h.observe(2.0);
        // Overflow → +Inf bucket.
        h.observe(10.000001);
        h.observe(1e12);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![3, 2, 1, 2]);
        assert_eq!(s.count, 8);
        assert_eq!(s.cumulative(), vec![3, 5, 6, 8]);
        let expect_sum = 0.001 - 3.0 + 1.0 + 5.0 + 10.0 + 2.0 + 10.000001 + 1e12;
        assert!((s.sum - expect_sum).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_bounds_must_increase() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("bad", &[], &[1.0, 1.0]);
    }

    #[test]
    fn concurrent_counter_increments_match_serial_total_exactly() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("contended_total", &[]);
        let h = reg.histogram("contended_secs", &[], &[0.5, 1.0]);
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe(((t as u64 + i) % 3) as f64 * 0.5);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        let s = h.snapshot();
        assert_eq!(s.count, THREADS as u64 * PER_THREAD);
        assert_eq!(s.counts.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn snapshot_reflects_registry_contents() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("k", "v")]).add(7);
        reg.gauge("g", &[]).set(1.5);
        reg.histogram("h_secs", &[], &[1.0]).observe(0.4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c_total", &[("k", "v")]), Some(7));
        assert_eq!(snap.gauge("g", &[]), Some(1.5));
        let h = snap.histogram("h_secs", &[]).unwrap();
        assert_eq!((h.count, h.counts[0]), (1, 1));
        assert_eq!(snap.counter("missing", &[]), None);
    }

    /// A minimal Prometheus text-format validator: every non-comment
    /// line must be `name{labels} value`, histogram buckets must be
    /// cumulative, and `_count` must equal the `+Inf` bucket.
    fn assert_valid_prometheus(text: &str) {
        let mut bucket_last: Option<(String, u64)> = None;
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample needs a value");
            assert!(!series.is_empty());
            let name_part = series.split('{').next().unwrap();
            assert!(valid_metric_name(name_part), "bad name in {line}");
            if series.contains('{') {
                assert!(series.ends_with('}'), "unbalanced labels in {line}");
            }
            assert!(
                value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok(),
                "bad value in {line}"
            );
            if name_part.ends_with("_bucket") {
                let v: u64 = value.parse().expect("bucket counts are integers");
                if let Some((prev_name, prev)) = &bucket_last {
                    if prev_name == name_part {
                        assert!(v >= *prev, "non-cumulative buckets in {line}");
                    }
                }
                bucket_last = Some((name_part.to_string(), v));
            }
        }
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.set_help("requests_total", "Requests served.");
        reg.counter("requests_total", &[("system", "hive-a"), ("op", "join")])
            .add(3);
        reg.counter("requests_total", &[("system", "presto"), ("op", "agg")])
            .add(1);
        reg.gauge("model_rmse_pct", &[("system", "hive-a")])
            .set(12.5);
        let h = reg.histogram("estimate_secs", &[], &[0.1, 1.0, 10.0]);
        h.observe(0.05);
        h.observe(5.0);
        h.observe(50.0);
        let text = reg.render_prometheus();
        assert_valid_prometheus(&text);
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("# HELP requests_total Requests served."));
        assert!(text.contains("requests_total{op=\"join\",system=\"hive-a\"} 3"));
        assert!(text.contains("estimate_secs_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("estimate_secs_count 3"));
        assert!(text.contains("estimate_secs_sum 55.05"));
    }

    #[test]
    fn label_values_escape_backslashes_quotes_and_newlines() {
        let reg = MetricsRegistry::new();
        reg.counter("weird_total", &[("path", "a\\b")]).inc();
        reg.counter("weird_total", &[("path", "say \"hi\"")]).inc();
        reg.counter("weird_total", &[("path", "line1\nline2")])
            .inc();
        reg.counter("weird_total", &[("path", "mix\\\"\n")]).inc();
        let text = reg.render_prometheus();
        assert_valid_prometheus(&text);
        assert!(text.contains(r#"weird_total{path="a\\b"} 1"#));
        assert!(text.contains(r#"weird_total{path="say \"hi\""} 1"#));
        assert!(text.contains(r#"weird_total{path="line1\nline2"} 1"#));
        assert!(text.contains(r#"weird_total{path="mix\\\"\n"} 1"#));
        // The escaping keeps one sample per line: a raw newline in a
        // label value must never split a series across lines.
        for line in text.lines() {
            if line.starts_with("weird_total") {
                assert!(line.ends_with(" 1"), "split sample: {line}");
            }
        }
    }

    #[test]
    fn empty_histogram_renders_complete_zeroed_buckets() {
        let reg = MetricsRegistry::new();
        reg.histogram("idle_secs", &[("system", "hive")], &[0.5, 2.0]);
        let text = reg.render_prometheus();
        assert_valid_prometheus(&text);
        assert!(text.contains("idle_secs_bucket{le=\"0.5\",system=\"hive\"} 0"));
        assert!(text.contains("idle_secs_bucket{le=\"2\",system=\"hive\"} 0"));
        assert!(text.contains("idle_secs_bucket{le=\"+Inf\",system=\"hive\"} 0"));
        assert!(text.contains("idle_secs_sum{system=\"hive\"} 0"));
        assert!(text.contains("idle_secs_count{system=\"hive\"} 0"));
    }

    #[test]
    fn rendering_order_is_stable_across_snapshots_and_interleaved_writes() {
        let build = |interleaved: bool| {
            let reg = MetricsRegistry::new();
            if interleaved {
                reg.gauge("z_gauge", &[]).set(1.0);
                reg.counter("a_total", &[("op", "join")]).inc();
                reg.counter("a_total", &[("op", "agg")]).inc();
            } else {
                reg.counter("a_total", &[("op", "agg")]).inc();
                reg.counter("a_total", &[("op", "join")]).inc();
                reg.gauge("z_gauge", &[]).set(1.0);
            }
            reg
        };
        let reg = build(false);
        let first = reg.render_prometheus();
        // Rendering twice is byte-identical (no map iteration jitter)…
        assert_eq!(first, reg.render_prometheus());
        // …and registration order does not leak into the exposition.
        assert_eq!(first, build(true).render_prometheus());
        // Touching values between renders preserves series order.
        reg.counter("a_total", &[("op", "agg")]).add(5);
        let again = reg.render_prometheus();
        let series = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| !l.starts_with('#') && !l.is_empty())
                .map(|l| l.rsplit_once(' ').map(|(s, _)| s.to_string()).unwrap())
                .collect()
        };
        assert_eq!(series(&first), series(&again));
        let snap_before = reg.snapshot();
        assert_eq!(snap_before, reg.snapshot(), "snapshots are stable too");
    }
}
