//! Request-scoped spans with a fixed stage taxonomy.
//!
//! A served estimate crosses several layers — admission queue, batch
//! coalescing, cache probe, packed kernel, remedy blend, federation
//! placement, remote execution — and a latency regression in any one of
//! them is invisible to aggregate histograms. This module records *per
//! request* where the time went, under a hard constraint inherited from
//! the raw-speed pass (DESIGN.md §13): the estimate hot path must stay
//! **allocation-free**, and when sampling is off the span layer must
//! cost no more than one relaxed atomic load per request.
//!
//! The design that satisfies both:
//!
//! * Stage segments accumulate in a **preallocated per-thread slab** —
//!   a `const`-initialised thread-local `[f64; STAGE_COUNT]`. Arming a
//!   span zeroes the slab; a [`StageTimer`] adds its elapsed micros on
//!   drop. No heap is touched in either direction.
//! * Sampling is decided once per request by [`SpanLayer::start_request`]
//!   (every Nth request, `0` = off). The sampled-off path is a single
//!   relaxed load returning an inert [`SpanGuard`]; inert stage timers
//!   read one thread-local `bool` and skip the clock entirely.
//! * Finished sampled spans are folded into a fixed-capacity exemplar
//!   reservoir (the K slowest per window, retaining the full stage
//!   breakdown plus tenant and epoch) guarded by a ranked mutex. The
//!   reservoir's two buffers are preallocated at construction and
//!   records are `Copy`, so recording a finished span allocates
//!   nothing either.
//!
//! Wall-clock reads happen only here — the module is listed in the
//! analysis crate's entropy exemptions, exactly like the trace clock.

use mathkit::total_cmp_f64;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of stages in the fixed taxonomy (the length of
/// [`Stage::ALL`]).
pub const STAGE_COUNT: usize = 7;

/// The fixed stage taxonomy of one request span.
///
/// Stages are segments, not a strict partition: a request that never
/// reaches federation simply leaves that slot at zero. `RemoteExec` is
/// special — the simulated engines attribute *simulated* elapsed time
/// there, so it is excluded from wall-time identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Time between request admission and the batch leader picking the
    /// request off the queue (attributed from the serving clock).
    QueueWait,
    /// Time the batch leader spent widening the batch inside the
    /// coalesce window (attributed from the serving clock).
    Coalesce,
    /// Per-shard LRU cache probe (and insert) in the estimator service.
    CacheProbe,
    /// The fused packed inference kernel.
    Kernel,
    /// The out-of-range remedy blend path.
    Remedy,
    /// Federation placement enumeration and costing.
    FederationPlacement,
    /// Remote engine execution, attributed in *simulated* time by
    /// `remote-sim` rather than measured on the wall clock.
    RemoteExec,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::QueueWait,
        Stage::Coalesce,
        Stage::CacheProbe,
        Stage::Kernel,
        Stage::Remedy,
        Stage::FederationPlacement,
        Stage::RemoteExec,
    ];

    /// Snake-case stage name for reports and labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Coalesce => "coalesce",
            Stage::CacheProbe => "cache_probe",
            Stage::Kernel => "kernel",
            Stage::Remedy => "remedy",
            Stage::FederationPlacement => "federation_placement",
            Stage::RemoteExec => "remote_exec",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Identifies one sampled request span (unique per [`SpanLayer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

// The per-thread slab: one armed flag plus fixed stage accumulators.
// `try_with` everywhere — no lazy init, no allocation, no panic during
// thread teardown, so the accessors are safe from any drop glue.
thread_local! {
    static SLAB_ARMED: Cell<bool> = const { Cell::new(false) };
    static SLAB_STAGES_US: Cell<[f64; STAGE_COUNT]> = const { Cell::new([0.0; STAGE_COUNT]) };
}

fn slab_armed() -> bool {
    SLAB_ARMED.try_with(Cell::get).unwrap_or(false)
}

fn slab_add(stage: Stage, micros: f64) {
    let _ = SLAB_STAGES_US.try_with(|cell| {
        let mut stages = cell.get();
        if let Some(slot) = stages.get_mut(stage.index()) {
            *slot += micros;
        }
        cell.set(stages);
    });
}

/// RAII timer for one stage segment on the *current thread's* active
/// span. Inert (one thread-local read, no clock) when no span is armed.
///
/// Instrumented code calls [`time`] unconditionally; the armed check is
/// what keeps the sampled-off hot path free.
#[must_use = "a stage timer measures the scope it is bound to"]
#[derive(Debug)]
pub struct StageTimer {
    stage: Stage,
    start: Option<Instant>,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            slab_add(self.stage, start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

/// Starts timing `stage` on the current thread's active span; inert
/// when no span is armed.
pub fn time(stage: Stage) -> StageTimer {
    StageTimer {
        stage,
        start: if slab_armed() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Attributes `micros` of externally measured time to `stage` on the
/// current thread's active span (no-op when none is armed). Used where
/// the segment is measured by another clock: queue wait via the serving
/// clock, remote execution via simulated time.
pub fn attribute(stage: Stage, micros: f64) {
    if micros > 0.0 && slab_armed() {
        slab_add(stage, micros);
    }
}

/// One finished sampled span: identity, attribution, and the full
/// stage breakdown. `Copy`, so the exemplar reservoir can hold and
/// rotate these without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// The span's id.
    pub span: SpanId,
    /// The tenant that issued the request.
    pub tenant: u64,
    /// The model-state epoch that served it (0 when never set).
    pub epoch: u64,
    /// Total span duration in microseconds: guard lifetime plus
    /// externally attributed wall segments (queue wait, coalesce).
    pub total_us: f64,
    /// Per-stage micros, indexed like [`Stage::ALL`].
    pub stages_us: [f64; STAGE_COUNT],
}

impl Exemplar {
    /// The recorded micros for one stage.
    pub fn stage_us(&self, stage: Stage) -> f64 {
        self.stages_us.get(stage.index()).copied().unwrap_or(0.0)
    }

    /// Sum of all *wall-clock* stage segments (excludes
    /// [`Stage::RemoteExec`], which is attributed in simulated time).
    pub fn wall_stages_us(&self) -> f64 {
        Stage::ALL
            .iter()
            .filter(|s| !matches!(s, Stage::RemoteExec))
            .map(|&s| self.stage_us(s))
            .sum()
    }
}

/// Sampling and exemplar-retention knobs for a [`SpanLayer`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanConfig {
    /// Sample every Nth request (`0` disables sampling entirely).
    pub sample_every: u64,
    /// How many slowest exemplars to retain per window.
    pub exemplar_k: usize,
    /// Window length in *sampled* spans; when it fills, the current
    /// reservoir rotates to "previous" and a fresh one starts.
    pub exemplar_window: usize,
}

impl Default for SpanConfig {
    fn default() -> Self {
        SpanConfig {
            sample_every: 0,
            exemplar_k: 8,
            exemplar_window: 256,
        }
    }
}

/// K-slowest reservoir over the current and previous windows. Both
/// buffers are preallocated to capacity `k`; rotation swaps them, so
/// steady-state recording never allocates.
#[derive(Debug)]
struct ExemplarStore {
    k: usize,
    window: usize,
    seen: usize,
    current: Vec<Exemplar>,
    previous: Vec<Exemplar>,
}

impl ExemplarStore {
    fn new(k: usize, window: usize) -> Self {
        ExemplarStore {
            k,
            window: window.max(1),
            seen: 0,
            current: Vec::with_capacity(k),
            previous: Vec::with_capacity(k),
        }
    }

    fn insert(&mut self, exemplar: Exemplar) {
        if self.k == 0 {
            return;
        }
        if self.current.len() < self.k {
            self.current.push(exemplar);
        } else {
            let slowest_floor = self
                .current
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| total_cmp_f64(&a.total_us, &b.total_us))
                .map(|(i, e)| (i, e.total_us));
            if let Some((idx, floor)) = slowest_floor {
                if exemplar.total_us > floor {
                    if let Some(slot) = self.current.get_mut(idx) {
                        *slot = exemplar;
                    }
                }
            }
        }
        self.seen += 1;
        if self.seen >= self.window {
            std::mem::swap(&mut self.current, &mut self.previous);
            self.current.clear();
            self.seen = 0;
        }
    }

    fn snapshot(&self) -> Vec<Exemplar> {
        let mut out: Vec<Exemplar> = self
            .current
            .iter()
            .chain(self.previous.iter())
            .copied()
            .collect();
        out.sort_by(|a, b| total_cmp_f64(&b.total_us, &a.total_us));
        out
    }
}

/// A point-in-time view of a [`SpanLayer`].
#[derive(Debug, Clone, Default)]
pub struct SpanSnapshot {
    /// The configured sampling period (`0` = off).
    pub sample_every: u64,
    /// Requests seen by the sampling decision since construction.
    pub requests_seen: u64,
    /// Spans actually sampled.
    pub sampled_total: u64,
    /// The retained slowest exemplars (current + previous window),
    /// slowest first.
    pub exemplars: Vec<Exemplar>,
}

struct LayerInner {
    sample_every: AtomicU64,
    seq: AtomicU64,
    next_id: AtomicU64,
    sampled_total: AtomicU64,
    /// Rank `SPAN_EXEMPLARS`: a leaf lock, taken with nothing held.
    exemplars: Mutex<ExemplarStore>,
}

/// The shared request-span layer: sampling gate, span identity, and the
/// exemplar reservoir. Cloning shares all state; a default layer has
/// sampling off.
#[derive(Clone)]
pub struct SpanLayer {
    inner: Arc<LayerInner>,
}

impl Default for SpanLayer {
    fn default() -> Self {
        SpanLayer::new(SpanConfig::default())
    }
}

impl std::fmt::Debug for SpanLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLayer")
            .field("sample_every", &self.sampling())
            .field("sampled_total", &self.sampled_total())
            .finish()
    }
}

impl SpanLayer {
    /// A layer with the given sampling and retention configuration.
    pub fn new(config: SpanConfig) -> Self {
        let exemplars = Mutex::new(ExemplarStore::new(
            config.exemplar_k,
            config.exemplar_window,
        ));
        exemplars.set_rank(parking_lot::rank::SPAN_EXEMPLARS);
        SpanLayer {
            inner: Arc::new(LayerInner {
                sample_every: AtomicU64::new(config.sample_every),
                seq: AtomicU64::new(0),
                next_id: AtomicU64::new(0),
                sampled_total: AtomicU64::new(0),
                exemplars,
            }),
        }
    }

    /// Changes the sampling period at runtime (`0` disables).
    pub fn set_sampling(&self, sample_every: u64) {
        self.inner
            .sample_every
            .store(sample_every, Ordering::Relaxed);
    }

    /// The current sampling period (`0` = off).
    pub fn sampling(&self) -> u64 {
        self.inner.sample_every.load(Ordering::Relaxed)
    }

    /// Whether any sampling is configured.
    pub fn is_enabled(&self) -> bool {
        self.sampling() != 0
    }

    /// Total spans sampled since construction.
    pub fn sampled_total(&self) -> u64 {
        self.inner.sampled_total.load(Ordering::Relaxed)
    }

    /// Makes the sampling decision for one incoming request and, when
    /// it samples, arms the current thread's stage slab. The
    /// sampled-off fast path is one relaxed atomic load.
    ///
    /// A thread with a span already armed never starts a second one
    /// (the slab has a single owner) — the nested request rides along
    /// unsampled.
    pub fn start_request(&self, tenant: u64) -> SpanGuard<'_> {
        let every = self.inner.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return self.inert();
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        if seq % every != 0 || slab_armed() {
            return self.inert();
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let _ = SLAB_STAGES_US.try_with(|c| c.set([0.0; STAGE_COUNT]));
        let _ = SLAB_ARMED.try_with(|c| c.set(true));
        self.inner.sampled_total.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            layer: self,
            span: SpanId(id),
            tenant,
            epoch: 0,
            external_us: 0.0,
            start: Some(Instant::now()),
        }
    }

    /// The retained exemplars plus sampling counters. Allocates (it
    /// clones the reservoir) — intended for reports and tests, not the
    /// request path.
    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            sample_every: self.sampling(),
            requests_seen: self.inner.seq.load(Ordering::Relaxed),
            sampled_total: self.sampled_total(),
            exemplars: self.inner.exemplars.lock().snapshot(),
        }
    }

    fn inert(&self) -> SpanGuard<'_> {
        SpanGuard {
            layer: self,
            span: SpanId(0),
            tenant: 0,
            epoch: 0,
            external_us: 0.0,
            start: None,
        }
    }

    fn record(&self, exemplar: Exemplar) {
        self.inner.exemplars.lock().insert(exemplar);
    }
}

/// RAII handle for one request span. Armed guards own the thread's
/// stage slab for their lifetime; dropping folds the slab into an
/// [`Exemplar`] and disarms the thread. Inert guards do nothing.
#[must_use = "dropping the guard finishes the span"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    layer: &'a SpanLayer,
    span: SpanId,
    tenant: u64,
    epoch: u64,
    /// Wall micros attributed from outside the guard's lifetime
    /// (queue wait measured before the leader started processing);
    /// added to the total so stage sums reconcile against it.
    external_us: f64,
    start: Option<Instant>,
}

impl SpanGuard<'_> {
    /// Whether this request was sampled.
    pub fn is_sampled(&self) -> bool {
        self.start.is_some()
    }

    /// The span id (`SpanId(0)` for inert guards).
    pub fn id(&self) -> SpanId {
        self.span
    }

    /// Records the model-state epoch that served the request.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Attributes externally measured **wall** micros to `stage` —
    /// segments that elapsed before the guard started (queue wait,
    /// coalesce). Counted into both the stage slot and the span total.
    pub fn add_stage_us(&mut self, stage: Stage, micros: f64) {
        if self.start.is_some() && micros > 0.0 {
            slab_add(stage, micros);
            self.external_us += micros;
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let total_us = start.elapsed().as_secs_f64() * 1e6 + self.external_us;
        let stages_us = SLAB_STAGES_US
            .try_with(Cell::get)
            .unwrap_or([0.0; STAGE_COUNT]);
        let _ = SLAB_ARMED.try_with(|c| c.set(false));
        self.layer.record(Exemplar {
            span: self.span,
            tenant: self.tenant,
            epoch: self.epoch,
            total_us,
            stages_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(sample_every: u64) -> SpanLayer {
        SpanLayer::new(SpanConfig {
            sample_every,
            exemplar_k: 4,
            exemplar_window: 16,
        })
    }

    #[test]
    fn disabled_layer_samples_nothing() {
        let l = layer(0);
        for _ in 0..10 {
            let g = l.start_request(1);
            assert!(!g.is_sampled());
        }
        let snap = l.snapshot();
        assert_eq!(snap.sampled_total, 0);
        assert!(snap.exemplars.is_empty());
        // A stage timer without an armed span is inert.
        drop(time(Stage::Kernel));
        assert!(l.snapshot().exemplars.is_empty());
    }

    #[test]
    fn sample_every_n_takes_every_nth() {
        let l = layer(4);
        let sampled = (0..16)
            .filter(|_| {
                let g = l.start_request(1);
                g.is_sampled()
            })
            .count();
        assert_eq!(sampled, 4);
        assert_eq!(l.snapshot().requests_seen, 16);
        assert_eq!(l.sampled_total(), 4);
    }

    #[test]
    fn stages_fold_into_the_exemplar() {
        let l = layer(1);
        let mut g = l.start_request(42);
        assert!(g.is_sampled());
        g.set_epoch(7);
        g.add_stage_us(Stage::QueueWait, 250.0);
        {
            let _t = time(Stage::Kernel);
            std::hint::black_box(());
        }
        attribute(Stage::RemoteExec, 1000.0);
        drop(g);
        let snap = l.snapshot();
        assert_eq!(snap.exemplars.len(), 1);
        let e = snap.exemplars[0];
        assert_eq!(e.tenant, 42);
        assert_eq!(e.epoch, 7);
        assert_eq!(e.span, SpanId(1));
        assert!(e.stage_us(Stage::QueueWait) >= 250.0);
        assert!(e.stage_us(Stage::Kernel) >= 0.0);
        assert!((e.stage_us(Stage::RemoteExec) - 1000.0).abs() < 1e-9);
        // The external queue wait is part of the total; simulated
        // remote time is not.
        assert!(e.total_us >= 250.0);
        assert!(e.wall_stages_us() <= e.total_us + 1.0);
        // The thread slab is disarmed after the guard drops.
        assert!(!slab_armed());
    }

    #[test]
    fn reservoir_keeps_the_k_slowest_and_rotates_windows() {
        let mut store = ExemplarStore::new(2, 8);
        let ex = |id: u64, total: f64| Exemplar {
            span: SpanId(id),
            tenant: 0,
            epoch: 0,
            total_us: total,
            stages_us: [0.0; STAGE_COUNT],
        };
        for i in 0..6 {
            store.insert(ex(i, i as f64));
        }
        let kept: Vec<u64> = store.snapshot().iter().map(|e| e.span.0).collect();
        assert_eq!(kept, vec![5, 4], "keeps the two slowest, slowest first");
        // Two more inserts complete the window of 8; the reservoir
        // rotates and keeps serving the previous window's exemplars.
        store.insert(ex(6, 0.5));
        store.insert(ex(7, 9.0));
        assert_eq!(store.seen, 0, "window rotated");
        let after: Vec<u64> = store.snapshot().iter().map(|e| e.span.0).collect();
        assert_eq!(after, vec![7, 5]);
        // The fresh window fills without losing the previous one.
        store.insert(ex(8, 1.0));
        assert_eq!(store.snapshot().len(), 3);
    }

    #[test]
    fn nested_start_requests_stay_inert() {
        let l = layer(1);
        let outer = l.start_request(1);
        assert!(outer.is_sampled());
        let inner = l.start_request(2);
        assert!(!inner.is_sampled(), "the slab has a single owner");
        drop(inner);
        assert!(slab_armed(), "inner inert guard must not disarm the slab");
        drop(outer);
        assert_eq!(l.snapshot().exemplars.len(), 1);
    }

    #[test]
    fn default_layer_is_off() {
        let l = SpanLayer::default();
        assert!(!l.is_enabled());
        l.set_sampling(2);
        assert!(l.is_enabled());
        assert_eq!(l.sampling(), 2);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "queue_wait",
                "coalesce",
                "cache_probe",
                "kernel",
                "remedy",
                "federation_placement",
                "remote_exec"
            ]
        );
    }
}
