//! Model-health monitoring: rolling error windows per model key.
//!
//! The paper's offline-tuning loop (§4.3) retrains a model when its
//! logged estimates diverge from the actual execution times the remote
//! systems report. [`DriftMonitor`] is the signal generator for that
//! loop: it keeps a sliding window of `(predicted, actual)` pairs per
//! model key — typically `(system, operator)` — and computes the
//! paper's RMSE% plus the Q-error literature's multiplicative error
//! over the window. A model whose rolling error crosses the configured
//! thresholds is *flagged*, and [`ModelHealth::retrain_recommended`]
//! surfaces that to whoever schedules tuning passes.

use mathkit::metrics::rmse_pct;
use std::collections::{BTreeMap, VecDeque};

/// Small denominator guard so Q-error stays finite for near-zero times.
const Q_ERROR_EPS: f64 = 1e-9;

/// Tuning knobs for the drift monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Sliding-window length per model key (observations retained).
    pub window: usize,
    /// Minimum observations before a model can be flagged; below this
    /// the health report carries the numbers but `drifted` stays false.
    pub min_samples: usize,
    /// Rolling RMSE% above which a model counts as drifted.
    pub rmse_pct_threshold: f64,
    /// Mean Q-error above which a model counts as drifted.
    pub q_error_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 64,
            min_samples: 8,
            rmse_pct_threshold: 50.0,
            q_error_threshold: 3.0,
        }
    }
}

/// The rolling health of one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelHealth {
    /// Observations currently in the window.
    pub samples: usize,
    /// Rolling RMSE% (the paper's `RMSE * 100 / mean(actual)`).
    pub rmse_pct: f64,
    /// Mean multiplicative error `max(p,a) / min(p,a)` over the window.
    pub mean_q_error: f64,
    /// Worst single multiplicative error in the window.
    pub max_q_error: f64,
    /// Whether the window crossed a drift threshold (with enough
    /// samples to trust it).
    pub drifted: bool,
    /// `(oldest, newest)` model-state epoch among the window's
    /// epoch-tagged samples, `None` when no sample carried an epoch.
    /// A drifted window whose span covers a single epoch attributes the
    /// drift to that exact model version.
    pub epoch_span: Option<(u64, u64)>,
}

impl ModelHealth {
    /// Whether the offline-tuning path should retrain this model.
    /// Currently synonymous with [`ModelHealth::drifted`]; kept as its
    /// own method so the recommendation policy can grow (e.g. require
    /// consecutive drifted windows) without touching call sites.
    pub fn retrain_recommended(&self) -> bool {
        self.drifted
    }
}

fn q_error(predicted: f64, actual: f64) -> f64 {
    let (p, a) = (predicted.abs(), actual.abs());
    (p.max(a) + Q_ERROR_EPS) / (p.min(a) + Q_ERROR_EPS)
}

#[derive(Debug, Clone, Default)]
struct ModelWindow {
    /// `(predicted, actual, producing epoch)` samples, oldest first.
    pairs: VecDeque<(f64, f64, Option<u64>)>,
}

/// Tracks rolling prediction error per model key and flags drift.
///
/// `K` is whatever identifies a model — the costing layer uses
/// `(SystemId, OperatorKind)`. The monitor is plain data (no interior
/// mutability); hold it behind a lock if multiple threads feed it.
#[derive(Debug, Clone)]
pub struct DriftMonitor<K: Ord + Clone> {
    config: DriftConfig,
    windows: BTreeMap<K, ModelWindow>,
}

impl<K: Ord + Clone> Default for DriftMonitor<K> {
    fn default() -> Self {
        DriftMonitor::new(DriftConfig::default())
    }
}

impl<K: Ord + Clone> DriftMonitor<K> {
    /// A monitor with the given thresholds and window length.
    pub fn new(config: DriftConfig) -> Self {
        assert!(config.window > 0, "drift window must be positive");
        assert!(config.min_samples > 0, "drift min_samples must be positive");
        DriftMonitor {
            config,
            windows: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Records one `(predicted, actual)` pair for `key`, evicting the
    /// oldest pair once the window is full.
    pub fn record(&mut self, key: K, predicted: f64, actual: f64) {
        self.record_versioned(key, predicted, actual, None);
    }

    /// [`DriftMonitor::record`] with provenance: tags the sample with
    /// the model-state epoch that produced `predicted`, so a drift flag
    /// can be attributed to a specific model version (see
    /// [`ModelHealth::epoch_span`]).
    pub fn record_versioned(&mut self, key: K, predicted: f64, actual: f64, epoch: Option<u64>) {
        let window = self.windows.entry(key).or_default();
        if window.pairs.len() == self.config.window {
            window.pairs.pop_front();
        }
        window.pairs.push_back((predicted, actual, epoch));
    }

    /// Number of models the monitor has seen.
    pub fn models(&self) -> usize {
        self.windows.len()
    }

    /// The current health of `key`, if any observations were recorded.
    pub fn status(&self, key: &K) -> Option<ModelHealth> {
        self.windows.get(key).map(|w| self.health_of(w))
    }

    /// Health of every observed model, keyed like [`DriftMonitor::record`].
    pub fn report(&self) -> BTreeMap<K, ModelHealth> {
        self.windows
            .iter()
            .map(|(k, w)| (k.clone(), self.health_of(w)))
            .collect()
    }

    /// The keys of all currently drifted models.
    pub fn flagged(&self) -> Vec<K> {
        self.windows
            .iter()
            .filter(|(_, w)| self.health_of(w).drifted)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Drops all recorded windows (e.g. after a retraining pass).
    pub fn clear(&mut self) {
        self.windows.clear();
    }

    fn health_of(&self, window: &ModelWindow) -> ModelHealth {
        let predicted: Vec<f64> = window.pairs.iter().map(|&(p, _, _)| p).collect();
        let actual: Vec<f64> = window.pairs.iter().map(|&(_, a, _)| a).collect();
        let epoch_span = window.pairs.iter().filter_map(|&(_, _, e)| e).fold(
            None,
            |span: Option<(u64, u64)>, e| match span {
                None => Some((e, e)),
                Some((lo, hi)) => Some((lo.min(e), hi.max(e))),
            },
        );
        let samples = predicted.len();
        let rmse_pct = rmse_pct(&predicted, &actual);
        let qs: Vec<f64> = predicted
            .iter()
            .zip(&actual)
            .map(|(&p, &a)| q_error(p, a))
            .collect();
        let mean_q_error = if qs.is_empty() {
            1.0
        } else {
            qs.iter().sum::<f64>() / qs.len() as f64
        };
        let max_q_error = qs.iter().copied().fold(1.0, f64::max);
        let drifted = samples >= self.config.min_samples
            && (rmse_pct > self.config.rmse_pct_threshold
                || mean_q_error > self.config.q_error_threshold);
        ModelHealth {
            samples,
            rmse_pct,
            mean_q_error,
            max_q_error,
            drifted,
            epoch_span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftConfig {
        DriftConfig {
            window: 8,
            min_samples: 4,
            rmse_pct_threshold: 25.0,
            q_error_threshold: 2.0,
        }
    }

    #[test]
    fn healthy_model_stays_unflagged() {
        let mut m = DriftMonitor::new(cfg());
        for i in 0..8 {
            let actual = 10.0 + i as f64;
            m.record("a", actual * 1.02, actual);
        }
        let h = m.status(&"a").unwrap();
        assert!(!h.drifted);
        assert!(!h.retrain_recommended());
        assert!(h.rmse_pct < 5.0);
        assert!(h.mean_q_error < 1.1);
        assert!(m.flagged().is_empty());
    }

    #[test]
    fn degraded_model_flags_within_one_window() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..8 {
            m.record("bad", 30.0, 10.0); // 3x over-estimate
        }
        let h = m.status(&"bad").unwrap();
        assert!(h.drifted);
        assert!(h.retrain_recommended());
        assert!(h.mean_q_error > 2.5);
        assert_eq!(m.flagged(), vec!["bad"]);
    }

    #[test]
    fn min_samples_gates_flagging() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..3 {
            m.record("young", 100.0, 1.0);
        }
        let h = m.status(&"young").unwrap();
        assert_eq!(h.samples, 3);
        assert!(h.mean_q_error > 50.0);
        assert!(!h.drifted, "below min_samples must not flag");
        m.record("young", 100.0, 1.0);
        assert!(m.status(&"young").unwrap().drifted);
    }

    #[test]
    fn window_slides_and_recovers() {
        let mut m = DriftMonitor::new(cfg());
        for _ in 0..8 {
            m.record("k", 50.0, 10.0);
        }
        assert!(m.status(&"k").unwrap().drifted);
        // Model retrained: predictions now accurate. After a full
        // window of good pairs, the bad ones have been evicted.
        for _ in 0..8 {
            m.record("k", 10.0, 10.0);
        }
        let h = m.status(&"k").unwrap();
        assert_eq!(h.samples, 8);
        assert!(!h.drifted);
        assert!((h.mean_q_error - 1.0).abs() < 1e-6);
    }

    #[test]
    fn q_error_is_symmetric_and_guarded() {
        assert!((q_error(2.0, 8.0) - q_error(8.0, 2.0)).abs() < 1e-12);
        assert!(q_error(0.0, 0.0).is_finite());
        assert!((q_error(0.0, 0.0) - 1.0).abs() < 1e-6);
        assert!(q_error(0.0, 1.0) > 1e6);
    }

    #[test]
    fn epoch_span_tracks_tagged_samples() {
        let mut m = DriftMonitor::new(cfg());
        m.record("k", 10.0, 10.0);
        assert_eq!(m.status(&"k").unwrap().epoch_span, None);
        m.record_versioned("k", 10.0, 10.0, Some(3));
        m.record_versioned("k", 10.0, 10.0, Some(7));
        m.record_versioned("k", 10.0, 10.0, None);
        assert_eq!(m.status(&"k").unwrap().epoch_span, Some((3, 7)));
        // The span follows the sliding window: once the old epochs are
        // evicted, only the surviving tags contribute.
        for _ in 0..8 {
            m.record_versioned("k", 10.0, 10.0, Some(9));
        }
        assert_eq!(m.status(&"k").unwrap().epoch_span, Some((9, 9)));
    }

    #[test]
    fn report_covers_all_models() {
        let mut m = DriftMonitor::new(cfg());
        m.record(("hive", "join"), 1.0, 1.0);
        m.record(("hive", "agg"), 2.0, 2.0);
        m.record(("presto", "join"), 3.0, 3.0);
        assert_eq!(m.models(), 3);
        let report = m.report();
        assert_eq!(report.len(), 3);
        assert!(report.values().all(|h| h.samples == 1 && !h.drifted));
        m.clear();
        assert_eq!(m.models(), 0);
        assert!(m.status(&("hive", "join")).is_none());
    }
}
