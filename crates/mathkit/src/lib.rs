#![warn(missing_docs)]

//! Numerical substrate for the IntelliSphere cost-estimation reproduction.
//!
//! The paper's cost models are built from three mathematical ingredients:
//!
//! * **ordinary least squares** regression — used for the sub-operator
//!   models (Figs. 7 and 13) and for the on-the-fly pivot regressions of the
//!   online remedy phase (Fig. 4),
//! * **piecewise (two-regime) regression** — used for the HashBuild
//!   sub-operator whose cost jumps when the hash table no longer fits in
//!   memory (Fig. 13f),
//! * **model-quality metrics** (RMSE, RMSE%, R²) — the paper reports every
//!   model with these.
//!
//! This crate implements all of them from scratch on a small dense-matrix
//! kernel, with no external numerical dependencies, so the rest of the
//! workspace has a single well-tested numerical foundation.

pub mod linreg;
pub mod matrix;
pub mod metrics;
pub mod piecewise;
pub mod poly;
pub mod quantiles;
pub mod scale;

pub use linreg::{LinearModel, SimpleLinearModel};
pub use matrix::Matrix;
pub use metrics::{mae, pearson_r, r2_score, rmse, rmse_pct};
pub use piecewise::TwoRegimeModel;
pub use poly::PolynomialModel;
pub use quantiles::{exact_quantiles, nearest_rank, QuantileSketch};
pub use scale::MinMaxScaler;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A matrix dimension mismatch, e.g. multiplying incompatible shapes.
    DimensionMismatch {
        /// Description of the failing operation.
        context: &'static str,
    },
    /// The linear system is singular (or numerically so) and cannot be
    /// solved even after ridge stabilisation.
    Singular,
    /// The caller supplied fewer observations than the model has parameters.
    NotEnoughData {
        /// Observations provided.
        have: usize,
        /// Observations required.
        need: usize,
    },
    /// Inputs contained NaN or infinity.
    NonFinite,
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::DimensionMismatch { context } => {
                write!(f, "matrix dimension mismatch in {context}")
            }
            MathError::Singular => write!(f, "singular linear system"),
            MathError::NotEnoughData { have, need } => {
                write!(f, "not enough data points: have {have}, need {need}")
            }
            MathError::NonFinite => write!(f, "non-finite value in input"),
        }
    }
}

impl std::error::Error for MathError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MathError>;

/// NaN-safe total ordering for `f64` sort keys.
///
/// A drop-in comparator for `sort_by` that never panics and never returns
/// an arbitrary order in the presence of NaN: it forwards to IEEE 754
/// `totalOrder` ([`f64::total_cmp`]), which places NaN after +∞. Every
/// ranking step in the estimation path (planner candidate ordering, remedy
/// neighbour selection, measurement sorting) must use this instead of
/// `partial_cmp(..).unwrap()` so a single corrupted estimate cannot panic
/// the optimizer.
#[inline]
pub fn total_cmp_f64(a: &f64, b: &f64) -> std::cmp::Ordering {
    a.total_cmp(b)
}

/// Returns true when every value in `xs` is finite.
pub(crate) fn all_finite(xs: &[f64]) -> bool {
    xs.iter().all(|x| x.is_finite())
}
