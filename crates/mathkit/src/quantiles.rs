//! Shared quantile estimation.
//!
//! Three different parts of the workspace report latency percentiles —
//! the epoch-churn bench, the serving front-end experiment, and the
//! load generator — and each used to be one hand-rolled `percentile`
//! away from an off-by-one or a NaN-ordering bug. This module is the
//! single implementation they all share:
//!
//! * [`nearest_rank`] — the exact nearest-rank percentile of an
//!   ascending-sorted sample (what the paper-style tables report);
//! * [`exact_quantiles`] — sorts a sample NaN-safely (non-finite values
//!   are discarded, not propagated) and reads several ranks at once;
//! * [`QuantileSketch`] — a streaming, geometrically-bucketed histogram
//!   for runs too long to keep every sample (millions of simulated
//!   users), with a bounded relative error per quantile.
//!
//! Everything here is NaN-free by construction: sorting goes through
//! [`crate::total_cmp_f64`] and the sketch drops non-finite
//! observations (counting them, so callers can assert none occurred).

use crate::total_cmp_f64;

/// Exact nearest-rank percentile of an **ascending-sorted** sample.
///
/// `q` is a fraction in `[0, 1]`; out-of-range values are clamped. An
/// empty sample yields `0.0` (the historical behaviour of the bench
/// experiments this replaces — absent data reads as "no latency", and
/// callers that care assert non-emptiness themselves).
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Sorts `samples` (dropping non-finite values) and returns the exact
/// nearest-rank quantile for each requested fraction, in order.
pub fn exact_quantiles(samples: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    finite.sort_by(total_cmp_f64);
    qs.iter().map(|&q| nearest_rank(&finite, q)).collect()
}

/// A streaming quantile estimator over geometrically-spaced buckets.
///
/// Values in `[floor, ∞)` land in bucket `⌊log_growth(v / floor)⌋`; a
/// quantile is reported as the geometric midpoint of the bucket holding
/// the target rank, so the relative error of any reported quantile is
/// bounded by the growth factor (≈ `(growth − 1) / 2` each way).
/// Values below `floor` are clamped into the first bucket — pick
/// `floor` below the smallest latency you care to resolve. Non-finite
/// and negative observations are discarded and counted in
/// [`QuantileSketch::discarded`].
///
/// Memory is `O(log(max / floor) / log(growth))` — 460 buckets cover
/// 1 µs … 100 s at 4 % growth — so a sweep can record tens of millions
/// of latencies without keeping them.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    floor: f64,
    ln_growth: f64,
    growth: f64,
    counts: Vec<u64>,
    total: u64,
    discarded: u64,
    min_seen: f64,
    max_seen: f64,
}

impl QuantileSketch {
    /// A sketch resolving `[floor, cap]` with the given bucket growth
    /// factor (e.g. `1.04` for ±2 % quantile error). `floor` and `cap`
    /// must be positive with `floor < cap`, and `growth > 1`; degenerate
    /// arguments are clamped to a sane single-decade sketch rather than
    /// panicking (this type sits on the measurement path of benches that
    /// must not die mid-sweep).
    pub fn new(floor: f64, cap: f64, growth: f64) -> Self {
        let floor = if floor.is_finite() && floor > 0.0 {
            floor
        } else {
            1e-9
        };
        let cap = if cap.is_finite() && cap > floor {
            cap
        } else {
            floor * 10.0
        };
        let growth = if growth.is_finite() && growth > 1.0 {
            growth
        } else {
            1.04
        };
        let ln_growth = growth.ln();
        let buckets = ((cap / floor).ln() / ln_growth).ceil() as usize + 1;
        QuantileSketch {
            floor,
            ln_growth,
            growth,
            counts: vec![0; buckets],
            total: 0,
            discarded: 0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// A sketch sized for microsecond-scale latencies: 0.1 µs … 60 s at
    /// ±2 % quantile error (values recorded in microseconds).
    pub fn for_latency_us() -> Self {
        QuantileSketch::new(0.1, 60.0e6, 1.04)
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v <= self.floor {
            return 0;
        }
        let idx = ((v / self.floor).ln() / self.ln_growth) as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Records one observation. Non-finite or negative values are
    /// discarded (see [`QuantileSketch::discarded`]).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            self.discarded += 1;
            return;
        }
        let b = self.bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        if v < self.min_seen {
            self.min_seen = v;
        }
        if v > self.max_seen {
            self.max_seen = v;
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations rejected as non-finite or negative.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// The estimated `q`-quantile (`q ∈ [0, 1]`, clamped): the geometric
    /// midpoint of the bucket containing the nearest-rank sample,
    /// tightened by the exact observed min/max at the distribution's
    /// edges. Returns `0.0` on an empty sketch, mirroring
    /// [`nearest_rank`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank index over the stream, 0-based.
        let rank = ((self.total - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let lo = self.floor * self.growth.powi(b as i32);
                let hi = lo * self.growth;
                let mid = (lo * hi).sqrt();
                // The true value can never lie outside the observed
                // envelope; clamping sharpens the edge quantiles (and
                // makes a single-value sketch exact).
                return mid.clamp(self.min_seen, self.max_seen);
            }
        }
        self.max_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_empty_is_zero() {
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
    }

    #[test]
    fn nearest_rank_single_sample_is_that_sample_at_every_q() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(nearest_rank(&[42.0], q), 42.0);
        }
    }

    #[test]
    fn nearest_rank_reads_exact_ranks() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(nearest_rank(&sorted, 0.0), 1.0);
        assert_eq!(nearest_rank(&sorted, 0.5), 51.0); // round(99 * 0.5) = 50
        assert_eq!(nearest_rank(&sorted, 0.99), 99.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 100.0);
        // Out-of-range fractions clamp instead of indexing out of bounds.
        assert_eq!(nearest_rank(&sorted, -3.0), 1.0);
        assert_eq!(nearest_rank(&sorted, 7.0), 100.0);
    }

    #[test]
    fn nearest_rank_handles_ties() {
        let sorted = [5.0, 5.0, 5.0, 5.0, 9.0];
        assert_eq!(nearest_rank(&sorted, 0.5), 5.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 9.0);
    }

    #[test]
    fn exact_quantiles_discards_non_finite_and_sorts() {
        let samples = [3.0, f64::NAN, 1.0, f64::INFINITY, 2.0];
        let qs = exact_quantiles(&samples, &[0.0, 0.5, 1.0]);
        assert_eq!(qs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sketch_is_empty_safe_and_discards_garbage() {
        let mut s = QuantileSketch::for_latency_us();
        assert_eq!(s.quantile(0.5), 0.0);
        s.observe(f64::NAN);
        s.observe(-1.0);
        s.observe(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.discarded(), 3);
    }

    #[test]
    fn sketch_single_value_is_exact() {
        let mut s = QuantileSketch::for_latency_us();
        s.observe(123.4);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 123.4);
        }
    }

    #[test]
    fn sketch_matches_exact_sort_within_relative_tolerance() {
        // A deterministic heavy-tailed sample: the shape latency sweeps
        // actually produce (many fast, few slow).
        let mut samples = Vec::new();
        let mut x = 7u64;
        for _ in 0..50_000 {
            // xorshift, mapped to [1, ~1e5) with a long tail.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x % 1_000_000) as f64 / 1_000_000.0;
            samples.push(1.0 + 2e4 * u * u * u);
        }
        let mut sketch = QuantileSketch::for_latency_us();
        for &v in &samples {
            sketch.observe(v);
        }
        let qs = [0.5, 0.9, 0.99, 0.999];
        let exact = exact_quantiles(&samples, &qs);
        for (&q, &e) in qs.iter().zip(&exact) {
            let approx = sketch.quantile(q);
            let rel = (approx - e).abs() / e;
            assert!(
                rel < 0.05,
                "q={q}: sketch {approx} vs exact {e} (rel err {rel})"
            );
        }
        assert_eq!(sketch.count(), samples.len() as u64);
        assert_eq!(sketch.discarded(), 0);
    }

    #[test]
    fn sketch_degenerate_config_is_clamped_not_fatal() {
        let mut s = QuantileSketch::new(-1.0, f64::NAN, 0.5);
        s.observe(5.0);
        assert!(s.quantile(0.5) > 0.0);
    }

    #[test]
    fn sketch_values_below_floor_clamp_into_first_bucket() {
        let mut s = QuantileSketch::new(1.0, 1000.0, 1.1);
        s.observe(0.0001);
        s.observe(0.5);
        assert_eq!(s.count(), 2);
        let q = s.quantile(0.5);
        assert!(q <= 1.0, "clamped values report at/below the floor: {q}");
    }
}
