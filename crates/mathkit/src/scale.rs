//! Feature scaling.
//!
//! The logical-operator training dimensions span several orders of
//! magnitude (tens of bytes to tens of millions of rows), so the neural
//! network inputs/outputs must be normalised. [`MinMaxScaler`] maps each
//! column to `[0, 1]` based on its training range and — crucially for the
//! out-of-range experiments (Fig. 14) — extrapolates linearly beyond it
//! rather than clamping, so the model genuinely sees out-of-range inputs.

use serde::{Deserialize, Serialize};

/// Per-column min–max scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    /// Per-column minimum observed at fit time.
    pub mins: Vec<f64>,
    /// Per-column maximum observed at fit time.
    pub maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-column ranges from the given rows.
    ///
    /// # Panics
    /// Panics when `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "MinMaxScaler::fit: empty input");
        let d = rows[0].len();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for r in rows {
            assert_eq!(r.len(), d, "MinMaxScaler::fit: ragged input");
            for (j, &v) in r.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Scales one row to the unit hyper-cube (values outside the fitted
    /// range map outside `[0, 1]`, deliberately).
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(row.len());
        self.transform_into(row, &mut out);
        out
    }

    /// [`MinMaxScaler::transform`] writing into a caller-provided buffer
    /// (cleared first) — the zero-alloc form for hot paths that reuse a
    /// scratch row. Bit-identical to the allocating variant.
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        assert_eq!(
            row.len(),
            self.mins.len(),
            "MinMaxScaler::transform: arity mismatch"
        );
        out.clear();
        out.extend(
            row.iter()
                .zip(self.mins.iter().zip(&self.maxs))
                .map(|(&v, (&min, &max))| {
                    let span = max - min;
                    if span == 0.0 {
                        0.0
                    } else {
                        (v - min) / span
                    }
                }),
        );
    }

    /// Scales many rows.
    pub fn transform_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Inverts the scaling for one row.
    pub fn inverse(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(
            row.len(),
            self.mins.len(),
            "MinMaxScaler::inverse: arity mismatch"
        );
        row.iter()
            .enumerate()
            .map(|(j, &v)| self.mins[j] + v * (self.maxs[j] - self.mins[j]))
            .collect()
    }

    /// Number of columns this scaler was fitted on.
    pub fn arity(&self) -> usize {
        self.mins.len()
    }
}

/// Scalar (single-value) min–max scaler, used for the network target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarScaler {
    /// Minimum observed at fit time.
    pub min: f64,
    /// Maximum observed at fit time.
    pub max: f64,
}

impl ScalarScaler {
    /// Learns the range of a target vector.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn fit(ys: &[f64]) -> Self {
        assert!(!ys.is_empty(), "ScalarScaler::fit: empty input");
        let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        ScalarScaler { min, max }
    }

    /// Scales a value to `[0, 1]` over the fitted range.
    pub fn transform(&self, y: f64) -> f64 {
        let span = self.max - self.min;
        if span == 0.0 {
            0.0
        } else {
            (y - self.min) / span
        }
    }

    /// Inverts the scaling.
    pub fn inverse(&self, y: f64) -> f64 {
        self.min + y * (self.max - self.min)
    }

    /// Widens the fitted range to include `y` (used by offline tuning when
    /// new observations extend past the original training range).
    pub fn absorb(&mut self, y: f64) {
        self.min = self.min.min(y);
        self.max = self.max.max(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transform_maps_to_unit_interval() {
        let rows = vec![vec![0.0, 10.0], vec![10.0, 20.0], vec![5.0, 15.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform(&[0.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[10.0, 20.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[5.0, 15.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn out_of_range_values_map_outside_unit_interval() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![10.0]]);
        assert_eq!(s.transform(&[20.0]), vec![2.0]);
        assert_eq!(s.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let s = MinMaxScaler::fit(&[vec![7.0], vec![7.0]]);
        assert_eq!(s.transform(&[7.0]), vec![0.0]);
        assert_eq!(s.transform(&[100.0]), vec![0.0]);
    }

    #[test]
    fn transform_into_matches_transform_and_reuses_buffer() {
        let s = MinMaxScaler::fit(&[vec![0.0, 10.0], vec![10.0, 20.0]]);
        let mut buf = vec![99.0; 8];
        s.transform_into(&[5.0, 12.0], &mut buf);
        assert_eq!(buf, s.transform(&[5.0, 12.0]));
        s.transform_into(&[-3.0, 25.0], &mut buf);
        assert_eq!(buf, s.transform(&[-3.0, 25.0]));
    }

    #[test]
    fn inverse_roundtrips() {
        let rows = vec![vec![2.0, -5.0], vec![8.0, 5.0]];
        let s = MinMaxScaler::fit(&rows);
        let t = s.transform(&[4.0, 0.0]);
        let back = s.inverse(&t);
        assert!((back[0] - 4.0).abs() < 1e-12);
        assert!((back[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_scaler_roundtrip_and_absorb() {
        let mut s = ScalarScaler::fit(&[10.0, 20.0]);
        assert_eq!(s.transform(15.0), 0.5);
        assert_eq!(s.inverse(0.5), 15.0);
        s.absorb(40.0);
        assert_eq!(s.max, 40.0);
        assert_eq!(s.transform(40.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn fit_panics_on_empty() {
        MinMaxScaler::fit(&[]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            rows in proptest::collection::vec(
                proptest::collection::vec(-1000.0f64..1000.0, 3), 2..20),
            probe in proptest::collection::vec(-2000.0f64..2000.0, 3),
        ) {
            let s = MinMaxScaler::fit(&rows);
            let back = s.inverse(&s.transform(&probe));
            for (j, (&b, &p)) in back.iter().zip(&probe).enumerate() {
                // Constant columns cannot round-trip; others must.
                if s.maxs[j] > s.mins[j] {
                    prop_assert!((b - p).abs() < 1e-6 * (1.0 + p.abs()));
                }
            }
        }
    }
}
