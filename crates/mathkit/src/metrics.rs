//! Model-quality metrics used throughout the paper's evaluation:
//! RMSE, the paper's normalised RMSE% (`e * 100 / v` where `v` is the mean
//! actual value), R², MAE, and Pearson correlation.

/// Root-mean-square error between predictions and actuals.
///
/// Returns `0.0` for empty input.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "rmse: length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let mse: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / predicted.len() as f64;
    mse.sqrt()
}

/// The paper's error percentage: `RMSE * 100 / mean(actual)` (§7, Fig. 11b).
///
/// Returns `0.0` when the mean of the actuals is zero.
pub fn rmse_pct(predicted: &[f64], actual: &[f64]) -> f64 {
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    rmse(predicted, actual) * 100.0 / mean
}

/// Mean absolute error.
pub fn mae(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "mae: length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Coefficient of determination R² = 1 - SS_res / SS_tot.
///
/// Matches the R² values the paper annotates on its scatter plots
/// (Figs. 11c/d, 12c/d, 13c–g). Returns `1.0` for a perfect fit on constant
/// data and can be negative for models worse than predicting the mean.
pub fn r2_score(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "r2: length mismatch");
    if actual.is_empty() {
        return 1.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p) * (a - p))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - ss_res / ss_tot
}

/// Pearson correlation coefficient between two samples.
///
/// Returns `0.0` when either sample has zero variance.
pub fn pearson_r(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rmse_of_perfect_prediction_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors 1 and -1 -> mse 1 -> rmse 1
        assert!((rmse(&[2.0, 1.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_empty_is_zero() {
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn rmse_pct_normalises_by_mean_actual() {
        // rmse = 1, mean actual = 10 -> 10%
        let p = vec![11.0, 9.0];
        let a = vec![10.0, 10.0];
        assert!((rmse_pct(&p, &a) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_pct_zero_mean_is_zero() {
        assert_eq!(rmse_pct(&[1.0, -1.0], &[1.0, -1.0]), 0.0);
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[2.0, 0.0], &[1.0, 2.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_fit_is_one() {
        assert_eq!(r2_score(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn r2_mean_prediction_is_zero() {
        let actual = [1.0, 2.0, 3.0];
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r2_score(&mean_pred, &actual).abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative_for_bad_models() {
        assert!(r2_score(&[10.0, 10.0, 10.0], &[1.0, 2.0, 3.0]) < 0.0);
    }

    #[test]
    fn pearson_perfect_linear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_r(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_anticorrelation_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson_r(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson_r(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_rmse_nonnegative(
            p in proptest::collection::vec(-100.0f64..100.0, 1..50),
            shift in -10.0f64..10.0,
        ) {
            let a: Vec<f64> = p.iter().map(|v| v + shift).collect();
            prop_assert!(rmse(&p, &a) >= 0.0);
            prop_assert!((rmse(&p, &a) - shift.abs()).abs() < 1e-9);
        }

        #[test]
        fn prop_r2_at_most_one(
            pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..50),
        ) {
            let (p, a): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            prop_assert!(r2_score(&p, &a) <= 1.0 + 1e-12);
        }

        #[test]
        fn prop_pearson_bounded(
            pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..50),
        ) {
            let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            let r = pearson_r(&x, &y);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
