//! Two-regime (piecewise linear) regression.
//!
//! The paper observes (Fig. 13f) that the HashBuild sub-operator follows two
//! distinct linear models depending on whether the hash table fits in
//! memory: `y = 0.0248x + 18.241` in-memory vs `y = 0.1821x − 51.614` when
//! spilling. [`TwoRegimeModel`] fits both segments and locates the
//! breakpoint, either at a caller-supplied threshold (when the regime is
//! predictable from cluster configuration, as the paper does) or by
//! searching the breakpoint that minimises total squared error.

use crate::{linreg::SimpleLinearModel, MathError, Result};
use serde::{Deserialize, Serialize};

/// A piecewise-linear model with a single breakpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoRegimeModel {
    /// Model applied when `x <= breakpoint` (e.g. hash table fits in memory).
    pub low: SimpleLinearModel,
    /// Model applied when `x > breakpoint` (e.g. hash table spills).
    pub high: SimpleLinearModel,
    /// The regime boundary on the predictor axis.
    pub breakpoint: f64,
}

impl TwoRegimeModel {
    /// Fits the two segments around a **known** breakpoint.
    ///
    /// This mirrors the paper's usage: "given a specific cluster
    /// configuration, if the broadcasted relation fits in memory … the
    /// corresponding model is used". Each side needs at least two points.
    pub fn fit_with_breakpoint(xs: &[f64], ys: &[f64], breakpoint: f64) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                context: "TwoRegimeModel::fit",
            });
        }
        let (mut lx, mut ly, mut hx, mut hy) = (vec![], vec![], vec![], vec![]);
        for (&x, &y) in xs.iter().zip(ys) {
            if x <= breakpoint {
                lx.push(x);
                ly.push(y);
            } else {
                hx.push(x);
                hy.push(y);
            }
        }
        let low = SimpleLinearModel::fit(&lx, &ly)?;
        let high = SimpleLinearModel::fit(&hx, &hy)?;
        Ok(TwoRegimeModel {
            low,
            high,
            breakpoint,
        })
    }

    /// Fits segments and **searches** for the breakpoint minimising total
    /// squared error. Candidate breakpoints are midpoints between
    /// consecutive distinct sorted x values, with at least two points on
    /// each side.
    pub fn fit_search(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                context: "TwoRegimeModel::fit_search",
            });
        }
        if xs.len() < 4 {
            return Err(MathError::NotEnoughData {
                have: xs.len(),
                need: 4,
            });
        }
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&a, &b| {
            xs[a]
                .partial_cmp(&xs[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let sx: Vec<f64> = order.iter().map(|&i| xs[i]).collect();
        let sy: Vec<f64> = order.iter().map(|&i| ys[i]).collect();

        let mut best: Option<(f64, TwoRegimeModel)> = None;
        for split in 2..=(sx.len() - 2) {
            if sx[split - 1] == sx[split] {
                continue; // breakpoint must separate distinct x values
            }
            let bp = 0.5 * (sx[split - 1] + sx[split]);
            let Ok(model) = Self::fit_with_breakpoint(&sx, &sy, bp) else {
                continue;
            };
            let sse: f64 = sx
                .iter()
                .zip(&sy)
                .map(|(&x, &y)| {
                    let e = model.predict(x) - y;
                    e * e
                })
                .sum();
            if best.as_ref().map_or(true, |(b, _)| sse < *b) {
                best = Some((sse, model));
            }
        }
        best.map(|(_, m)| m).ok_or(MathError::NotEnoughData {
            have: xs.len(),
            need: 4,
        })
    }

    /// Predicts using the segment the predictor falls into.
    pub fn predict(&self, x: f64) -> f64 {
        if x <= self.breakpoint {
            self.low.predict(x)
        } else {
            self.high.predict(x)
        }
    }

    /// Predicts with an externally supplied regime decision, mirroring the
    /// paper's "the system can predict that the broadcasted relation will
    /// not fit in memory, and hence the other model is used".
    pub fn predict_in_regime(&self, x: f64, fits_low_regime: bool) -> f64 {
        if fits_low_regime {
            self.low.predict(x)
        } else {
            self.high.predict(x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_regime_data() -> (Vec<f64>, Vec<f64>) {
        // Low regime: y = 0.025x + 18 for x <= 500; high: y = 0.18x - 50.
        let xs: Vec<f64> = (1..=12).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                if x <= 500.0 {
                    0.025 * x + 18.0
                } else {
                    0.18 * x - 50.0
                }
            })
            .collect();
        (xs, ys)
    }

    #[test]
    fn fit_with_known_breakpoint_recovers_segments() {
        let (xs, ys) = two_regime_data();
        let m = TwoRegimeModel::fit_with_breakpoint(&xs, &ys, 500.0).unwrap();
        assert!((m.low.slope - 0.025).abs() < 1e-9);
        assert!((m.low.intercept - 18.0).abs() < 1e-6);
        assert!((m.high.slope - 0.18).abs() < 1e-9);
        assert!((m.high.intercept + 50.0).abs() < 1e-6);
    }

    #[test]
    fn fit_search_finds_the_true_breakpoint() {
        let (xs, ys) = two_regime_data();
        let m = TwoRegimeModel::fit_search(&xs, &ys).unwrap();
        assert!(
            m.breakpoint > 500.0 && m.breakpoint < 600.0,
            "breakpoint {}",
            m.breakpoint
        );
        assert!((m.predict(300.0) - (0.025 * 300.0 + 18.0)).abs() < 1e-6);
        assert!((m.predict(1000.0) - (0.18 * 1000.0 - 50.0)).abs() < 1e-6);
    }

    #[test]
    fn fit_search_handles_shuffled_input() {
        let (mut xs, mut ys) = two_regime_data();
        xs.swap(0, 9);
        ys.swap(0, 9);
        xs.swap(3, 11);
        ys.swap(3, 11);
        let m = TwoRegimeModel::fit_search(&xs, &ys).unwrap();
        assert!(m.breakpoint > 500.0 && m.breakpoint < 600.0);
    }

    #[test]
    fn predict_uses_correct_segment_at_boundary() {
        let (xs, ys) = two_regime_data();
        let m = TwoRegimeModel::fit_with_breakpoint(&xs, &ys, 500.0).unwrap();
        // Exactly on the breakpoint -> low regime (<=).
        assert!((m.predict(500.0) - m.low.predict(500.0)).abs() < 1e-12);
        assert!((m.predict(500.0001) - m.high.predict(500.0001)).abs() < 1e-12);
    }

    #[test]
    fn predict_in_regime_overrides_breakpoint() {
        let (xs, ys) = two_regime_data();
        let m = TwoRegimeModel::fit_with_breakpoint(&xs, &ys, 500.0).unwrap();
        // Force the spill model even for a small x.
        let forced = m.predict_in_regime(100.0, false);
        assert!((forced - m.high.predict(100.0)).abs() < 1e-12);
    }

    #[test]
    fn fit_search_needs_four_points() {
        assert!(matches!(
            TwoRegimeModel::fit_search(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]),
            Err(MathError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn fit_with_breakpoint_needs_points_on_both_sides() {
        // All points below the breakpoint -> high side has < 2 points.
        let xs = [1.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0];
        assert!(TwoRegimeModel::fit_with_breakpoint(&xs, &ys, 10.0).is_err());
    }
}
