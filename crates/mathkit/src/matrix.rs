//! A minimal dense row-major matrix with exactly the operations the
//! regression and neural-network crates need: multiply, transpose, and a
//! partial-pivoting Gaussian solver.

use crate::{MathError, Result};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices.
    ///
    /// Returns an error for ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::from_rows",
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        // analysis:allow(panic-freedom): callers index rows bounded by self.rows; data.len() == rows*cols by construction
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        // analysis:allow(panic-freedom): callers index rows bounded by self.rows; data.len() == rows*cols by construction
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::matvec",
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Solves the square linear system `self * x = b` by Gaussian
    /// elimination with partial pivoting.
    ///
    /// Returns [`MathError::Singular`] when a pivot is (numerically) zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::solve (square)",
            });
        }
        if b.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                context: "Matrix::solve (rhs)",
            });
        }
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: pick the row with the largest |value| in `col`.
            let pivot_row = (col..n)
                .max_by(|&i, &j| {
                    // analysis:allow(panic-freedom): i, j range over col..n and a.len() == n*n
                    a[i * n + col]
                        .abs()
                        // analysis:allow(panic-freedom): j < n, so j*n+col < n*n == a.len()
                        .partial_cmp(&a[j * n + col].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                // analysis:allow(panic-freedom): col..n is non-empty because col < n
                .expect("non-empty pivot range");
            // analysis:allow(panic-freedom): pivot_row came from col..n, in bounds
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-12 {
                return Err(MathError::Singular);
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            for r in (col + 1)..n {
                // analysis:allow(panic-freedom): r, col < n index the n*n working copy
                let factor = a[r * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    // analysis:allow(panic-freedom): r, col, k < n index the n*n working copy
                    a[r * n + k] -= factor * a[col * n + k];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for k in (col + 1)..n {
                // analysis:allow(panic-freedom): col, k < n index the n*n working copy
                sum -= a[col * n + k] * x[k];
            }
            // analysis:allow(panic-freedom): col < n indexes the n*n working copy's diagonal
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }

    /// Adds `lambda` to every diagonal entry (ridge stabilisation).
    pub fn add_ridge(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn transpose_roundtrips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]).unwrap();
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // First pivot is zero; only row swaps make this solvable.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MathError::Singular));
    }

    #[test]
    fn identity_solve_is_identity() {
        let i = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.solve(&b).unwrap(), b);
    }

    #[test]
    fn add_ridge_touches_only_diagonal() {
        let mut m = Matrix::zeros(2, 2);
        m.add_ridge(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    proptest! {
        /// A * x recovered by solve(A, A*x) for well-conditioned diagonal-dominant A.
        #[test]
        fn prop_solve_recovers_solution(
            vals in proptest::collection::vec(-10.0f64..10.0, 9),
            x in proptest::collection::vec(-5.0f64..5.0, 3),
        ) {
            let mut a = Matrix::from_vec(3, 3, vals).unwrap();
            // Make diagonally dominant so the system is well conditioned.
            for i in 0..3 {
                let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
                a[(i, i)] += row_sum + 1.0;
            }
            let b = a.matvec(&x).unwrap();
            let got = a.solve(&b).unwrap();
            for (g, e) in got.iter().zip(&x) {
                prop_assert!((g - e).abs() < 1e-8, "got {g}, expected {e}");
            }
        }

        /// (A^T)^T == A
        #[test]
        fn prop_double_transpose(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
            let mut v = Vec::with_capacity(rows * cols);
            let mut s = seed;
            for _ in 0..rows * cols {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                v.push((s >> 11) as f64 / (1u64 << 53) as f64);
            }
            let m = Matrix::from_vec(rows, cols, v).unwrap();
            prop_assert_eq!(m.transpose().transpose(), m);
        }
    }
}
