//! One-dimensional polynomial regression.
//!
//! Used by the online-remedy phase as an alternative pivot extrapolator and
//! by the ablation experiments; fit via a Vandermonde design matrix on top
//! of [`crate::LinearModel`].

use crate::{linreg::LinearModel, MathError, Result};
use serde::{Deserialize, Serialize};

/// A fitted polynomial `y = c0 + c1·x + c2·x² + …`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolynomialModel {
    /// Coefficients in ascending-power order (`coeffs[0]` is the constant).
    pub coeffs: Vec<f64>,
}

impl PolynomialModel {
    /// Fits a polynomial of the given `degree` (≥ 1) by least squares.
    ///
    /// `xs` are internally shifted/scaled to [-1, 1] before building the
    /// Vandermonde matrix would be overkill for the small degrees used here
    /// (≤ 3), so raw powers are used; callers should keep `degree` small.
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Self> {
        if degree == 0 {
            return Err(MathError::DimensionMismatch {
                context: "PolynomialModel degree 0",
            });
        }
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                context: "PolynomialModel::fit",
            });
        }
        if xs.len() < degree + 1 {
            return Err(MathError::NotEnoughData {
                have: xs.len(),
                need: degree + 1,
            });
        }
        let rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|&x| (1..=degree).map(|p| x.powi(p as i32)).collect())
            .collect();
        let lin = LinearModel::fit(&rows, ys)?;
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(lin.intercept);
        coeffs.extend_from_slice(&lin.weights);
        Ok(PolynomialModel { coeffs })
    }

    /// Evaluates the polynomial at `x` (Horner's rule).
    pub fn predict(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// The polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fits_exact_quadratic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x + 0.5 * x * x).collect();
        let m = PolynomialModel::fit(&xs, &ys, 2).unwrap();
        assert!((m.coeffs[0] - 1.0).abs() < 1e-6);
        assert!((m.coeffs[1] - 2.0).abs() < 1e-6);
        assert!((m.coeffs[2] - 0.5).abs() < 1e-6);
        assert_eq!(m.degree(), 2);
    }

    #[test]
    fn degree_one_matches_simple_linreg() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let m = PolynomialModel::fit(&xs, &ys, 1).unwrap();
        assert!((m.predict(10.0) - 21.0).abs() < 1e-8);
    }

    #[test]
    fn rejects_degree_zero() {
        assert!(PolynomialModel::fit(&[1.0, 2.0], &[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn rejects_too_few_points() {
        assert!(matches!(
            PolynomialModel::fit(&[1.0, 2.0], &[1.0, 2.0], 3),
            Err(MathError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn horner_evaluation_is_correct() {
        let m = PolynomialModel {
            coeffs: vec![1.0, 0.0, 2.0],
        }; // 1 + 2x²
        assert_eq!(m.predict(3.0), 19.0);
    }

    proptest! {
        #[test]
        fn prop_quadratic_extrapolation(
            a in -2.0f64..2.0, b in -2.0f64..2.0, c in 0.01f64..2.0,
        ) {
            let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
            let ys: Vec<f64> = xs.iter().map(|x| a + b * x + c * x * x).collect();
            let m = PolynomialModel::fit(&xs, &ys, 2).unwrap();
            // Extrapolate past the training range.
            let x = 15.0;
            let expect = a + b * x + c * x * x;
            prop_assert!((m.predict(x) - expect).abs() < 1e-3 * (1.0 + expect.abs()));
        }
    }
}
