//! Ordinary-least-squares linear regression.
//!
//! Two shapes are provided:
//!
//! * [`SimpleLinearModel`] — one predictor, closed-form fit. This is the
//!   model the paper uses for each sub-operator (e.g. Fig. 7b:
//!   `y = 0.0041·x + 0.6323` for ReadDFS), and the model built on the fly
//!   over pivot-dimension neighbours during the online remedy phase.
//! * [`LinearModel`] — multiple predictors, fit via the normal equations
//!   with optional ridge stabilisation. This is the paper's "linear
//!   regression" baseline for the logical-operator models (Figs. 11d, 12d).

use crate::{all_finite, matrix::Matrix, MathError, Result};
use serde::{Deserialize, Serialize};

/// A fitted one-predictor linear model `y = slope·x + intercept`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimpleLinearModel {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// R² of the fit on its training data.
    pub r2: f64,
}

impl SimpleLinearModel {
    /// Fits `y = slope·x + intercept` by least squares.
    ///
    /// Requires at least two points. When all `x` are identical the model
    /// degenerates to the constant mean with zero slope.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                context: "SimpleLinearModel::fit",
            });
        }
        if xs.len() < 2 {
            return Err(MathError::NotEnoughData {
                have: xs.len(),
                need: 2,
            });
        }
        if !all_finite(xs) || !all_finite(ys) {
            return Err(MathError::NonFinite);
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let (slope, intercept) = if sxx == 0.0 {
            (0.0, my)
        } else {
            let s = sxy / sxx;
            (s, my - s * mx)
        };
        let preds: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let r2 = crate::metrics::r2_score(&preds, ys);
        Ok(SimpleLinearModel {
            slope,
            intercept,
            r2,
        })
    }

    /// Predicts `y` for a given `x` (extrapolates freely).
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// A fitted multi-predictor linear model `y = w·x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl LinearModel {
    /// Fits by solving the normal equations `(XᵀX)θ = Xᵀy` where `X` is the
    /// design matrix augmented with a constant column.
    ///
    /// If `XᵀX` is singular, a small ridge term is added and the solve is
    /// retried; only if that also fails is [`MathError::Singular`] returned.
    pub fn fit(rows: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        let n = rows.len();
        if n != ys.len() {
            return Err(MathError::DimensionMismatch {
                context: "LinearModel::fit",
            });
        }
        let d = rows.first().map_or(0, Vec::len);
        if n < d + 1 {
            return Err(MathError::NotEnoughData {
                have: n,
                need: d + 1,
            });
        }
        if rows.iter().any(|r| r.len() != d) {
            return Err(MathError::DimensionMismatch {
                context: "LinearModel::fit (ragged)",
            });
        }
        if rows.iter().any(|r| !all_finite(r)) || !all_finite(ys) {
            return Err(MathError::NonFinite);
        }

        // Augmented design matrix: features + bias column.
        let mut x = Matrix::zeros(n, d + 1);
        for (i, r) in rows.iter().enumerate() {
            x.row_mut(i)[..d].copy_from_slice(r);
            x.row_mut(i)[d] = 1.0;
        }
        let xt = x.transpose();
        let mut xtx = xt.matmul(&x)?;
        let xty = xt.matvec(ys)?;

        let theta = match xtx.solve(&xty) {
            Ok(t) => t,
            Err(MathError::Singular) => {
                // Scale the ridge to the matrix magnitude: features like
                // row counts make the Gram matrix entries huge, and an
                // absolute epsilon would vanish against them.
                let mean_diag = (0..=d).map(|i| xtx[(i, i)].abs()).sum::<f64>() / (d + 1) as f64;
                xtx.add_ridge(1e-8 * mean_diag.max(1.0));
                xtx.solve(&xty)?
            }
            Err(e) => return Err(e),
        };
        let intercept = theta[d];
        let weights = theta[..d].to_vec();
        Ok(LinearModel { weights, intercept })
    }

    /// Predicts `y` for one feature vector.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the number of fitted weights.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "LinearModel::predict: arity mismatch"
        );
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.intercept
    }

    /// Predicts for a batch of feature vectors.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of input features.
    pub fn arity(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let m = SimpleLinearModel::fit(&xs, &ys).unwrap();
        assert!((m.slope - 3.0).abs() < 1e-10);
        assert!((m.intercept - 2.0).abs() < 1e-10);
        assert!((m.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simple_fit_constant_x_degenerates_to_mean() {
        let m = SimpleLinearModel::fit(&[2.0, 2.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
        assert_eq!(m.slope, 0.0);
        assert!((m.intercept - 3.0).abs() < 1e-12);
    }

    #[test]
    fn simple_fit_needs_two_points() {
        assert!(matches!(
            SimpleLinearModel::fit(&[1.0], &[1.0]),
            Err(MathError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn simple_fit_rejects_nan() {
        assert_eq!(
            SimpleLinearModel::fit(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(MathError::NonFinite)
        );
    }

    #[test]
    fn simple_extrapolates_linearly() {
        let m = SimpleLinearModel {
            slope: 2.0,
            intercept: 1.0,
            r2: 1.0,
        };
        assert_eq!(m.predict(100.0), 201.0);
        assert_eq!(m.predict(-10.0), -19.0);
    }

    #[test]
    fn multi_fit_recovers_exact_plane() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 4.0).collect();
        let m = LinearModel::fit(&rows, &ys).unwrap();
        assert!((m.weights[0] - 2.0).abs() < 1e-8);
        assert!((m.weights[1] + 0.5).abs() < 1e-8);
        assert!((m.intercept - 4.0).abs() < 1e-8);
    }

    #[test]
    fn multi_fit_handles_collinear_features_via_ridge() {
        // Second feature is an exact copy of the first: X^T X singular.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let m = LinearModel::fit(&rows, &ys).unwrap();
        // The split between the two collinear weights is arbitrary, but the
        // prediction must still be right.
        assert!((m.predict(&[5.0, 5.0]) - 10.0).abs() < 1e-4);
    }

    #[test]
    fn multi_fit_requires_enough_rows() {
        let rows = vec![vec![1.0, 2.0, 3.0]];
        assert!(matches!(
            LinearModel::fit(&rows, &[1.0]),
            Err(MathError::NotEnoughData { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_panics_on_wrong_arity() {
        let m = LinearModel {
            weights: vec![1.0, 2.0],
            intercept: 0.0,
        };
        m.predict(&[1.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let m = SimpleLinearModel {
            slope: 0.0314,
            intercept: 0.7403,
            r2: 0.99875,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: SimpleLinearModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    proptest! {
        /// Fitting noiseless linear data recovers it within tolerance.
        #[test]
        fn prop_simple_fit_recovers_line(
            slope in -50.0f64..50.0,
            intercept in -50.0f64..50.0,
        ) {
            let xs: Vec<f64> = (0..25).map(|i| i as f64 * 0.5).collect();
            let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
            let m = SimpleLinearModel::fit(&xs, &ys).unwrap();
            prop_assert!((m.slope - slope).abs() < 1e-6);
            prop_assert!((m.intercept - intercept).abs() < 1e-6);
        }

        /// The fitted multi-model reproduces its own training targets for
        /// exactly-linear data.
        #[test]
        fn prop_multi_fit_interpolates(
            w0 in -5.0f64..5.0, w1 in -5.0f64..5.0, b in -5.0f64..5.0,
        ) {
            let rows: Vec<Vec<f64>> =
                (0..30).map(|i| vec![(i % 7) as f64, (i % 5) as f64 * 1.3]).collect();
            let ys: Vec<f64> = rows.iter().map(|r| w0 * r[0] + w1 * r[1] + b).collect();
            let m = LinearModel::fit(&rows, &ys).unwrap();
            for (r, y) in rows.iter().zip(&ys) {
                prop_assert!((m.predict(r) - y).abs() < 1e-5);
            }
        }
    }
}
