//! A fully-connected layer with explicit forward/backward passes.

use crate::activation::Activation;
use rand::{rngs::StdRng, Rng};
use serde::{Deserialize, Serialize};

/// A dense layer `y = act(W·x + b)` with `W` stored row-major
/// (`out_dim × in_dim`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight matrix, row-major `out_dim × in_dim`.
    pub weights: Vec<f64>,
    /// One bias per output unit.
    pub biases: Vec<f64>,
    /// Input dimensionality.
    pub in_dim: usize,
    /// Output dimensionality.
    pub out_dim: usize,
    /// Activation applied to the affine output.
    pub activation: Activation,
}

/// Gradients for one layer, same shapes as the parameters.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// d(loss)/d(weights), row-major `out_dim × in_dim`.
    pub weights: Vec<f64>,
    /// d(loss)/d(biases).
    pub biases: Vec<f64>,
}

impl LayerGrads {
    /// Zeroed gradients matching `layer`.
    pub fn zeros_like(layer: &DenseLayer) -> Self {
        LayerGrads {
            weights: vec![0.0; layer.weights.len()],
            biases: vec![0.0; layer.biases.len()],
        }
    }

    /// Accumulates another gradient into this one.
    pub fn accumulate(&mut self, other: &LayerGrads) {
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            *a += b;
        }
        for (a, b) in self.biases.iter_mut().zip(&other.biases) {
            *a += b;
        }
    }

    /// Scales the gradient by a constant (e.g. 1/batch_size).
    pub fn scale(&mut self, k: f64) {
        for w in &mut self.weights {
            *w *= k;
        }
        for b in &mut self.biases {
            *b *= k;
        }
    }
}

impl DenseLayer {
    /// Creates a layer with Xavier/Glorot-uniform initialised weights and
    /// zero biases, drawing from the caller's RNG.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        DenseLayer {
            weights,
            biases: vec![0.0; out_dim],
            in_dim,
            out_dim,
            activation,
        }
    }

    /// Forward pass: returns the activated output.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.out_dim);
        self.forward_into(input, &mut out);
        out
    }

    /// Forward pass into a caller-owned buffer, so batched inference can
    /// reuse one allocation across rows. The buffer is cleared first;
    /// the arithmetic is identical to [`DenseLayer::forward`].
    pub fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(input.len(), self.in_dim);
        out.clear();
        out.extend(
            self.weights
                .chunks_exact(self.in_dim)
                .zip(&self.biases)
                .map(|(row, &bias)| {
                    let z: f64 = row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + bias;
                    self.activation.apply(z)
                }),
        );
    }

    /// Backward pass for one example.
    ///
    /// `input` is the layer input, `output` the activated output from the
    /// forward pass, and `grad_out` is d(loss)/d(output). Returns
    /// d(loss)/d(input) and fills `grads`.
    pub fn backward(
        &self,
        input: &[f64],
        output: &[f64],
        grad_out: &[f64],
        grads: &mut LayerGrads,
    ) -> Vec<f64> {
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_in = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            // delta = dL/dz for the affine pre-activation z.
            let delta = grad_out[o] * self.activation.derivative_from_output(output[o]);
            if delta == 0.0 {
                continue;
            }
            grads.biases[o] += delta;
            let wrow = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut grads.weights[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += delta * input[i];
                grad_in[i] += delta * wrow[i];
            }
        }
        grad_in
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn fixed_layer() -> DenseLayer {
        // 2 -> 2 identity layer with known weights.
        DenseLayer {
            weights: vec![1.0, 2.0, 3.0, 4.0],
            biases: vec![0.5, -0.5],
            in_dim: 2,
            out_dim: 2,
            activation: Activation::Identity,
        }
    }

    #[test]
    fn forward_computes_affine_map() {
        let l = fixed_layer();
        let y = l.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn xavier_init_within_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = DenseLayer::new(10, 5, Activation::Tanh, &mut rng);
        let limit = (6.0f64 / 15.0).sqrt();
        assert!(l.weights.iter().all(|w| w.abs() <= limit));
        assert!(l.biases.iter().all(|&b| b == 0.0));
        assert_eq!(l.param_count(), 55);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = DenseLayer::new(3, 2, Activation::Tanh, &mut rng);
        let input = [0.3, -0.8, 0.5];
        // Loss = sum(output) so grad_out = ones.
        let loss = |l: &DenseLayer| -> f64 { l.forward(&input).iter().sum() };

        let output = layer.forward(&input);
        let mut grads = LayerGrads::zeros_like(&layer);
        let grad_in = layer.backward(&input, &output, &[1.0, 1.0], &mut grads);

        let eps = 1e-6;
        for k in 0..layer.weights.len() {
            let orig = layer.weights[k];
            layer.weights[k] = orig + eps;
            let up = loss(&layer);
            layer.weights[k] = orig - eps;
            let down = loss(&layer);
            layer.weights[k] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads.weights[k]).abs() < 1e-5,
                "weight {k}: numeric {numeric} vs analytic {}",
                grads.weights[k]
            );
        }
        // Input gradient check.
        let mut input_v = input.to_vec();
        for i in 0..3 {
            let orig = input_v[i];
            input_v[i] = orig + eps;
            let up: f64 = layer.forward(&input_v).iter().sum();
            input_v[i] = orig - eps;
            let down: f64 = layer.forward(&input_v).iter().sum();
            input_v[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - grad_in[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let l = fixed_layer();
        let mut g = LayerGrads::zeros_like(&l);
        let out = l.forward(&[1.0, 0.0]);
        l.backward(&[1.0, 0.0], &out, &[1.0, 1.0], &mut g);
        let mut g2 = g.clone();
        g2.accumulate(&g);
        g2.scale(0.5);
        assert_eq!(g2.weights, g.weights);
        assert_eq!(g2.biases, g.biases);
    }
}
