//! The paper's cross-validation topology search (§3).
//!
//! > "we fix the number of layers to two … we vary the number of nodes in
//! > the 1st layer between the number of inputs and the double of that
//! > number, and vary the number of nodes in the 2nd layer between three
//! > and half the number of the 1st layer's nodes. Then, for each topology,
//! > we use a cross validation test involving 70% of data as training and
//! > 30% as a test … Finally, we select the topology that introduces the
//! > least root-mean-square error."

use crate::{
    dataset::Dataset,
    network::Network,
    optimizer::Adam,
    train::{train, TrainConfig},
};
use mathkit::metrics::rmse;
use serde::{Deserialize, Serialize};

/// A two-hidden-layer topology candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Width of the first hidden layer.
    pub layer1: usize,
    /// Width of the second hidden layer.
    pub layer2: usize,
}

impl Topology {
    /// Enumerates the paper's candidate grid for `n_in` inputs, stepping the
    /// first layer by `step` (1 = exhaustive; larger steps cut search cost).
    pub fn candidates(n_in: usize, step: usize) -> Vec<Topology> {
        assert!(n_in > 0 && step > 0);
        let mut out = Vec::new();
        let mut l1 = n_in;
        while l1 <= 2 * n_in {
            let hi = (l1 / 2).max(3);
            for l2 in 3..=hi {
                out.push(Topology {
                    layer1: l1,
                    layer2: l2,
                });
            }
            l1 += step;
        }
        out
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyScore {
    /// The candidate.
    pub topology: Topology,
    /// RMSE on the held-out 30 %.
    pub rmse: f64,
}

/// Result of the topology search.
#[derive(Debug, Clone)]
pub struct TopologySearchReport {
    /// The winning topology (least validation RMSE).
    pub best: Topology,
    /// Every evaluated candidate, in evaluation order.
    pub scores: Vec<TopologyScore>,
}

/// Runs the paper's topology search and returns the winner plus a trained
/// network for it (retrained on the full training split).
///
/// `search_iterations` bounds the per-candidate training budget; the final
/// winner is retrained with `final_config`.
pub fn search_topology(
    data: &Dataset,
    step: usize,
    search_iterations: usize,
    final_config: &TrainConfig,
    seed: u64,
) -> (Network, TopologySearchReport) {
    let n_in = data.arity();
    let (tr, te) = data.split(0.7, seed);
    let mut scores = Vec::new();
    let mut best: Option<(f64, Topology)> = None;

    for topo in Topology::candidates(n_in, step) {
        let mut net = Network::new(n_in, &[topo.layer1, topo.layer2], seed ^ 0xA5A5);
        let mut adam = Adam::new(1e-3);
        let cfg = TrainConfig {
            iterations: search_iterations,
            trace_every: 0,
            ..final_config.clone()
        };
        train(&mut net, &tr, &te, &mut adam, &cfg);
        let e = rmse(&net.predict_batch(&te.inputs), &te.targets);
        scores.push(TopologyScore {
            topology: topo,
            rmse: e,
        });
        if best.map_or(true, |(b, _)| e < b) {
            best = Some((e, topo));
        }
    }
    let (_, winner) = best.expect("candidate grid is never empty");

    let mut net = Network::new(n_in, &[winner.layer1, winner.layer2], seed ^ 0xA5A5);
    let mut adam = Adam::new(1e-3);
    train(&mut net, &tr, &te, &mut adam, final_config);
    (
        net,
        TopologySearchReport {
            best: winner,
            scores,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_grid_matches_paper_bounds_for_join() {
        // Join: 7 inputs -> layer1 in [7, 14], layer2 in [3, layer1/2].
        let cands = Topology::candidates(7, 1);
        assert!(cands.iter().all(|t| (7..=14).contains(&t.layer1)));
        assert!(cands
            .iter()
            .all(|t| t.layer2 >= 3 && t.layer2 <= (t.layer1 / 2).max(3)));
        assert!(cands.contains(&Topology {
            layer1: 7,
            layer2: 3
        }));
        assert!(cands.contains(&Topology {
            layer1: 14,
            layer2: 7
        }));
    }

    #[test]
    fn candidate_grid_for_aggregation() {
        // Aggregation: 4 inputs -> layer1 in [4, 8]; layer1/2 may be < 3,
        // in which case only layer2 = 3 is offered.
        let cands = Topology::candidates(4, 1);
        assert!(cands.contains(&Topology {
            layer1: 4,
            layer2: 3
        }));
        assert!(cands.contains(&Topology {
            layer1: 8,
            layer2: 4
        }));
        assert!(cands.iter().all(|t| t.layer2 >= 3));
    }

    #[test]
    fn step_reduces_candidate_count() {
        assert!(Topology::candidates(7, 7).len() < Topology::candidates(7, 1).len());
    }

    #[test]
    fn search_returns_best_scoring_candidate() {
        // Small learnable dataset.
        let inputs: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                vec![
                    (i % 12) as f64 / 11.0,
                    (i % 7) as f64 / 6.0,
                    (i % 5) as f64 / 4.0,
                    0.5,
                ]
            })
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|r| r[0] + 0.5 * r[1] * r[2]).collect();
        let data = Dataset::new(inputs, targets);
        let cfg = TrainConfig {
            iterations: 400,
            batch_size: 16,
            trace_every: 0,
            seed: 3,
            early_stop_patience: 0,
        };
        let (net, report) = search_topology(&data, 2, 150, &cfg, 11);
        let best_score = report
            .scores
            .iter()
            .map(|s| s.rmse)
            .fold(f64::INFINITY, f64::min);
        let winner = report
            .scores
            .iter()
            .find(|s| s.topology == report.best)
            .unwrap();
        assert_eq!(winner.rmse, best_score);
        assert_eq!(
            net.hidden_widths(),
            vec![report.best.layer1, report.best.layer2]
        );
    }
}
