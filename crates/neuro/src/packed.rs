//! A struct-of-arrays inference form of a trained [`Network`].
//!
//! [`Network`] stores its parameters as a `Vec<DenseLayer>`, each layer
//! owning its own weight/bias `Vec`s — convenient for training (layers
//! are mutated independently), but the inference hot path pays for it
//! with pointer chasing across several small heap blocks. A
//! [`PackedNetwork`] flattens the whole stack into two contiguous
//! arenas (every weight, every bias, in layer order) plus a small
//! per-layer descriptor table, and fuses the layer-forward loop into
//! one kernel that walks the arenas with `split_at`/`chunks_exact` —
//! branch-free inner loops over cache-resident data that the compiler
//! can keep in registers and auto-vectorise the loads for.
//!
//! # The bit-identity contract
//!
//! Every prediction produced here is **bit-identical** to the legacy
//! path ([`Network::predict`] / [`Network::predict_batch`]). The fused
//! kernel replays exactly the [`crate::layer::DenseLayer::forward_into`]
//! recurrence — a sequential, index-order `w·x` sum starting from 0.0,
//! plus the bias, then the activation — so no floating-point operation
//! is reordered, reassociated, or vectorised in a way that could change
//! a single ULP. The speedup comes from removing allocation, bounds
//! checks, and pointer indirection, never from changing the arithmetic.
//! Differential tests (proptest over random topologies plus golden
//! fixtures) enforce the contract.

use crate::activation::Activation;
use crate::network::Network;

/// Shape and activation of one packed layer; its parameters live in the
/// owning [`PackedNetwork`]'s arenas, consumed in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LayerDesc {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
}

/// Rows processed together by the blocked batch kernel. Each lane is an
/// independent row, so blocking never reorders any row's arithmetic —
/// it only lets the compiler vectorise *across* rows.
const LANES: usize = 8;

/// Reusable per-thread scratch for the fused forward kernel: two
/// ping-pong activation buffers sized to the widest layer for the
/// row-at-a-time path, and two lane-major block buffers for the blocked
/// batch path. Steady-state inference through a warm scratch performs
/// **zero** heap allocations.
#[derive(Debug, Default)]
pub struct PackedScratch {
    cur: Vec<f64>,
    next: Vec<f64>,
    blk_cur: Vec<f64>,
    blk_next: Vec<f64>,
}

impl PackedScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    pub const fn new() -> Self {
        PackedScratch {
            cur: Vec::new(),
            next: Vec::new(),
            blk_cur: Vec::new(),
            blk_next: Vec::new(),
        }
    }
}

/// A read-only, struct-of-arrays copy of a [`Network`], derived
/// deterministically by [`PackedNetwork::from_network`]: flat
/// contiguous weight/bias arenas and a fused batch-forward kernel.
/// Training and mutation stay on [`Network`]; inference reads go
/// through the packed form.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedNetwork {
    /// All layer weights, row-major per layer, layers concatenated.
    weights: Vec<f64>,
    /// All layer biases, layers concatenated.
    biases: Vec<f64>,
    layers: Vec<LayerDesc>,
    input_dim: usize,
    widest: usize,
}

impl PackedNetwork {
    /// Packs a trained network. The copy is deterministic: packing the
    /// same network twice yields identical arenas.
    pub fn from_network(net: &Network) -> Self {
        let layers: Vec<LayerDesc> = net
            .layers()
            .iter()
            .map(|l| LayerDesc {
                in_dim: l.in_dim,
                out_dim: l.out_dim,
                activation: l.activation,
            })
            .collect();
        let mut weights = Vec::with_capacity(net.layers().iter().map(|l| l.weights.len()).sum());
        let mut biases = Vec::with_capacity(net.layers().iter().map(|l| l.biases.len()).sum());
        for l in net.layers() {
            weights.extend_from_slice(&l.weights);
            biases.extend_from_slice(&l.biases);
        }
        let input_dim = net.input_dim();
        let widest = layers
            .iter()
            .map(|l| l.out_dim)
            .max()
            .unwrap_or(0)
            .max(input_dim);
        PackedNetwork {
            weights,
            biases,
            layers,
            input_dim,
            widest,
        }
    }

    /// Input dimensionality (arity) of the packed network.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Total number of packed parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }

    /// The fused forward kernel for one row. `cur`/`next` are the
    /// caller's ping-pong buffers; the arenas are consumed layer by
    /// layer via `split_at`, the per-output dot product via
    /// `chunks_exact` + `zip` — no computed indexing anywhere.
    fn forward_row(&self, row: &[f64], cur: &mut Vec<f64>, next: &mut Vec<f64>) -> f64 {
        cur.clear();
        cur.extend_from_slice(row);
        let mut w_rest: &[f64] = &self.weights;
        let mut b_rest: &[f64] = &self.biases;
        for l in &self.layers {
            let (w, w_tail) = w_rest.split_at(l.in_dim * l.out_dim);
            let (b, b_tail) = b_rest.split_at(l.out_dim);
            w_rest = w_tail;
            b_rest = b_tail;
            next.clear();
            next.extend(w.chunks_exact(l.in_dim).zip(b).map(|(wrow, &bias)| {
                // Identical recurrence to `DenseLayer::forward_into`:
                // sequential index-order sum from 0.0, then + bias,
                // then the activation — the bit-identity contract.
                let z: f64 = wrow
                    .iter()
                    .zip(cur.iter())
                    .map(|(&w, &x)| w * x)
                    .sum::<f64>()
                    + bias;
                l.activation.apply(z)
            }));
            std::mem::swap(cur, next);
        }
        cur.first().copied().unwrap_or(f64::NAN)
    }

    /// Predicts the scalar output for one input row through the fused
    /// kernel. Bit-identical to [`Network::predict`]; allocation-free
    /// once `scratch` is warm.
    ///
    /// # Panics
    /// Panics when `row.len()` differs from the network's input arity.
    pub fn predict_one(&self, row: &[f64], scratch: &mut PackedScratch) -> f64 {
        assert_eq!(
            row.len(),
            self.input_dim,
            "PackedNetwork::predict_one: arity mismatch"
        );
        scratch.cur.reserve(self.widest);
        scratch.next.reserve(self.widest);
        self.forward_row(row, &mut scratch.cur, &mut scratch.next)
    }

    /// The fused forward kernel for one lane-major block of [`LANES`]
    /// rows. `cur`/`next` hold one [`LANES`]-wide column per neuron;
    /// every lane replays the [`PackedNetwork::forward_row`] recurrence
    /// independently (sequential index-order sum from 0.0, then + bias,
    /// then the activation), so blocking changes which rows share a
    /// pass, never any row's arithmetic. The fixed-size per-output
    /// accumulator lets the compiler vectorise the lane loop.
    fn forward_block(
        &self,
        block: &[f64],
        width: usize,
        out: &mut Vec<f64>,
        scratch: &mut PackedScratch,
    ) {
        let cur = &mut scratch.blk_cur;
        let next = &mut scratch.blk_next;
        let cols = self.widest.max(width) * LANES;
        cur.clear();
        cur.resize(cols, 0.0);
        next.clear();
        next.resize(cols, 0.0);
        // Stage the block transposed: one contiguous LANES-wide column
        // per input dimension.
        for (i, dst) in cur.chunks_exact_mut(LANES).take(width).enumerate() {
            for (d, src_row) in dst.iter_mut().zip(block.chunks_exact(width)) {
                *d = src_row[i];
            }
        }
        let mut w_rest: &[f64] = &self.weights;
        let mut b_rest: &[f64] = &self.biases;
        for l in &self.layers {
            let (w, w_tail) = w_rest.split_at(l.in_dim * l.out_dim);
            let (b, b_tail) = b_rest.split_at(l.out_dim);
            w_rest = w_tail;
            b_rest = b_tail;
            for ((wrow, &bias), dst) in w
                .chunks_exact(l.in_dim)
                .zip(b)
                .zip(next.chunks_exact_mut(LANES))
            {
                let mut acc = [0.0f64; LANES];
                for (&wji, col) in wrow.iter().zip(cur.chunks_exact(LANES)) {
                    for (a, &x) in acc.iter_mut().zip(col) {
                        *a += wji * x;
                    }
                }
                for (d, a) in dst.iter_mut().zip(acc) {
                    *d = l.activation.apply(a + bias);
                }
            }
            std::mem::swap(cur, next);
        }
        if let Some(first) = cur.chunks_exact(LANES).next() {
            out.extend_from_slice(first);
        }
    }

    /// Predicts for a row-major flat batch (`rows.len() / width` rows of
    /// `width` features), writing the outputs into `out` (cleared
    /// first). Full blocks of `LANES` rows take the lane-parallel
    /// blocked kernel; the remainder goes row at a time. Bit-identical,
    /// row for row, to [`Network::predict_batch`]; allocation-free once
    /// `out` and `scratch` are warm.
    ///
    /// # Panics
    /// Panics when `width` differs from the network's input arity or
    /// `rows.len()` is not a multiple of `width`.
    pub fn predict_batch_into(
        &self,
        rows: &[f64],
        width: usize,
        out: &mut Vec<f64>,
        scratch: &mut PackedScratch,
    ) {
        assert_eq!(
            width, self.input_dim,
            "PackedNetwork::predict_batch_into: arity mismatch"
        );
        assert_eq!(
            rows.len() % width,
            0,
            "PackedNetwork::predict_batch_into: flat batch is not a multiple of width"
        );
        scratch.cur.reserve(self.widest);
        scratch.next.reserve(self.widest);
        out.clear();
        out.reserve(rows.len() / width);
        let mut blocks = rows.chunks_exact(width * LANES);
        for block in &mut blocks {
            self.forward_block(block, width, out, scratch);
        }
        for row in blocks.remainder().chunks_exact(width) {
            out.push(self.forward_row(row, &mut scratch.cur, &mut scratch.next));
        }
    }
}

impl From<&Network> for PackedNetwork {
    fn from(net: &Network) -> Self {
        PackedNetwork::from_network(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (i * dim + d) as f64 * 0.017 - 1.3)
                    .collect()
            })
            .collect()
    }

    fn flatten(rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().flatten().copied().collect()
    }

    #[test]
    fn packing_is_deterministic() {
        let net = Network::new(5, &[9, 4], 42);
        assert_eq!(
            PackedNetwork::from_network(&net),
            PackedNetwork::from_network(&net)
        );
    }

    #[test]
    fn packed_batch_is_bit_identical_to_legacy_batch() {
        for (dim, hidden, seed) in [
            (2usize, vec![4usize], 1u64),
            (4, vec![10, 5], 7),
            (7, vec![14, 7], 21),
            (3, vec![6, 5, 4], 99),
        ] {
            let net = Network::new(dim, &hidden, seed);
            let packed = PackedNetwork::from_network(&net);
            let rows = rows_for(33, dim);
            let legacy = net.predict_batch(&rows);
            let mut out = Vec::new();
            let mut scratch = PackedScratch::new();
            packed.predict_batch_into(&flatten(&rows), dim, &mut out, &mut scratch);
            assert_eq!(legacy.len(), out.len());
            for (i, (l, p)) in legacy.iter().zip(&out).enumerate() {
                assert_eq!(
                    l.to_bits(),
                    p.to_bits(),
                    "row {i} diverged: legacy {l} packed {p}"
                );
            }
        }
    }

    #[test]
    fn predict_one_matches_predict() {
        let net = Network::new(4, &[8, 4], 3);
        let packed = PackedNetwork::from_network(&net);
        let mut scratch = PackedScratch::new();
        for row in rows_for(10, 4) {
            assert_eq!(
                net.predict(&row).to_bits(),
                packed.predict_one(&row, &mut scratch).to_bits()
            );
        }
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let net = Network::new(3, &[5], 0);
        let packed = PackedNetwork::from_network(&net);
        let mut out = vec![1.0, 2.0];
        let mut scratch = PackedScratch::new();
        packed.predict_batch_into(&[], 3, &mut out, &mut scratch);
        assert!(out.is_empty());
    }

    #[test]
    fn param_count_matches_network() {
        let net = Network::new(7, &[14, 7], 1);
        assert_eq!(
            PackedNetwork::from_network(&net).param_count(),
            net.param_count()
        );
        assert_eq!(PackedNetwork::from_network(&net).input_dim(), 7);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn batch_checks_width() {
        let net = Network::new(3, &[4], 0);
        let packed = PackedNetwork::from_network(&net);
        packed.predict_batch_into(&[1.0, 2.0], 2, &mut Vec::new(), &mut PackedScratch::new());
    }

    #[test]
    #[should_panic(expected = "multiple of width")]
    fn batch_checks_flat_length() {
        let net = Network::new(3, &[4], 0);
        let packed = PackedNetwork::from_network(&net);
        packed.predict_batch_into(&[1.0, 2.0], 3, &mut Vec::new(), &mut PackedScratch::new());
    }
}
