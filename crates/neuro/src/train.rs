//! Mini-batch training loop with an RMSE%-vs-iteration trace.
//!
//! The paper trains each logical-operator network for 20 000 iterations and
//! plots the convergence of RMSE% (Figs. 11b, 12b: "the y-axis represents
//! the error percentage, which is measured as (e × 100/v), where e is the
//! root mean square error and v is the average execution time over all
//! queries"). [`train`] reproduces that: an *iteration* is one mini-batch
//! update, and the trace samples RMSE% on an evaluation set at a fixed
//! cadence.

use crate::{dataset::Dataset, network::Network, optimizer::Optimizer};
use mathkit::metrics::rmse_pct;
use rand::{rngs::StdRng, SeedableRng};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Total mini-batch updates (the paper uses 20 000).
    pub iterations: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Record a trace point every `trace_every` iterations (0 disables).
    pub trace_every: usize,
    /// Seed for batch shuffling.
    pub seed: u64,
    /// Early stopping: abort when the evaluation RMSE% has not improved
    /// for this many consecutive trace points (0 disables; requires
    /// `trace_every > 0`).
    pub early_stop_patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            iterations: 20_000,
            batch_size: 32,
            trace_every: 250,
            seed: 0x5EED,
            early_stop_patience: 0,
        }
    }
}

/// One sampled point of the convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Iteration index (1-based, after the update).
    pub iteration: usize,
    /// RMSE% on the evaluation set at that iteration.
    pub rmse_pct: f64,
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainTrace {
    /// Convergence samples (empty when tracing is disabled).
    pub points: Vec<TracePoint>,
    /// Final RMSE% on the evaluation set.
    pub final_rmse_pct: f64,
    /// Iterations actually executed.
    pub iterations: usize,
    /// True when early stopping cut the run short.
    pub early_stopped: bool,
}

impl TrainTrace {
    /// First iteration at which the error is within `tolerance` (relative)
    /// of the final error and stays there — a simple "converged by" marker
    /// used to verify the paper's 7–9 k-iteration observation.
    pub fn converged_at(&self, tolerance: f64) -> Option<usize> {
        let target = self.final_rmse_pct * (1.0 + tolerance);
        let mut candidate = None;
        for p in &self.points {
            if p.rmse_pct <= target {
                candidate.get_or_insert(p.iteration);
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

/// Trains `net` on `train_set`, tracing RMSE% on `eval_set`.
///
/// Gradients are averaged over each mini-batch; batches are reshuffled each
/// epoch from `config.seed`, so runs are fully reproducible.
pub fn train(
    net: &mut Network,
    train_set: &Dataset,
    eval_set: &Dataset,
    opt: &mut dyn Optimizer,
    config: &TrainConfig,
) -> TrainTrace {
    assert!(!train_set.is_empty(), "train: empty training set");
    assert_eq!(
        train_set.arity(),
        net.input_dim(),
        "train: dataset arity does not match network input"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut points: Vec<TracePoint> = Vec::new();
    let mut done = 0usize;
    let mut best_rmse = f64::INFINITY;
    let mut stale = 0usize;
    let mut early_stopped = false;

    let eval = |net: &Network| -> f64 {
        let preds = net.predict_batch(&eval_set.inputs);
        rmse_pct(&preds, &eval_set.targets)
    };

    'outer: loop {
        for batch in train_set.batch_indices(config.batch_size, &mut rng) {
            let mut grads = net.zero_grads();
            for &i in &batch {
                net.accumulate_grads(&train_set.inputs[i], train_set.targets[i], &mut grads);
            }
            let scale = 1.0 / batch.len() as f64;
            for g in &mut grads {
                g.scale(scale);
            }
            opt.step(net, &grads);
            done += 1;
            if config.trace_every > 0 && done % config.trace_every == 0 {
                let rmse = eval(net);
                points.push(TracePoint {
                    iteration: done,
                    rmse_pct: rmse,
                });
                if config.early_stop_patience > 0 {
                    if rmse < best_rmse - 1e-12 {
                        best_rmse = rmse;
                        stale = 0;
                    } else {
                        stale += 1;
                        if stale >= config.early_stop_patience {
                            early_stopped = true;
                            break 'outer;
                        }
                    }
                }
            }
            if done >= config.iterations {
                break 'outer;
            }
        }
    }
    TrainTrace {
        final_rmse_pct: eval(net),
        points,
        iterations: done,
        early_stopped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;

    /// y = 2·x0 + x1 with inputs in [0,1]; easily learnable.
    fn toy_dataset(n: usize) -> Dataset {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i % 17) as f64 / 16.0;
                let b = (i % 11) as f64 / 10.0;
                vec![a, b]
            })
            .collect();
        let targets = inputs.iter().map(|r| 2.0 * r[0] + r[1]).collect();
        Dataset::new(inputs, targets)
    }

    #[test]
    fn training_reduces_error() {
        let data = toy_dataset(200);
        let (tr, te) = data.split(0.7, 1);
        let mut net = Network::new(2, &[6, 3], 42);
        let initial = mathkit::rmse_pct(&net.predict_batch(&te.inputs), &te.targets);
        let mut adam = Adam::new(0.01);
        let cfg = TrainConfig {
            iterations: 2_000,
            batch_size: 16,
            trace_every: 100,
            seed: 7,
            early_stop_patience: 0,
        };
        let trace = train(&mut net, &tr, &te, &mut adam, &cfg);
        assert!(
            trace.final_rmse_pct < initial * 0.2,
            "initial {initial}, final {}",
            trace.final_rmse_pct
        );
        assert_eq!(trace.iterations, 2_000);
        assert_eq!(trace.points.len(), 20);
    }

    #[test]
    fn training_is_reproducible() {
        let data = toy_dataset(100);
        let (tr, te) = data.split(0.7, 3);
        let run = || {
            let mut net = Network::new(2, &[4], 5);
            let mut adam = Adam::new(0.01);
            let cfg = TrainConfig {
                iterations: 300,
                batch_size: 8,
                trace_every: 0,
                seed: 9,
                early_stop_patience: 0,
            };
            train(&mut net, &tr, &te, &mut adam, &cfg);
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_disabled_when_zero() {
        let data = toy_dataset(50);
        let (tr, te) = data.split(0.7, 3);
        let mut net = Network::new(2, &[4], 5);
        let mut adam = Adam::new(0.01);
        let cfg = TrainConfig {
            iterations: 50,
            batch_size: 8,
            trace_every: 0,
            seed: 9,
            early_stop_patience: 0,
        };
        let trace = train(&mut net, &tr, &te, &mut adam, &cfg);
        assert!(trace.points.is_empty());
    }

    #[test]
    fn converged_at_finds_stable_prefix() {
        let trace = TrainTrace {
            points: vec![
                TracePoint {
                    iteration: 100,
                    rmse_pct: 50.0,
                },
                TracePoint {
                    iteration: 200,
                    rmse_pct: 10.5,
                },
                TracePoint {
                    iteration: 300,
                    rmse_pct: 30.0,
                }, // bounce
                TracePoint {
                    iteration: 400,
                    rmse_pct: 10.2,
                },
                TracePoint {
                    iteration: 500,
                    rmse_pct: 10.1,
                },
            ],
            final_rmse_pct: 10.0,
            iterations: 500,
            early_stopped: false,
        };
        assert_eq!(trace.converged_at(0.10), Some(400));
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let data = toy_dataset(200);
        let (tr, te) = data.split(0.7, 1);
        let mut net = Network::new(2, &[6, 3], 42);
        let mut adam = Adam::new(0.01);
        let cfg = TrainConfig {
            iterations: 100_000,
            batch_size: 16,
            trace_every: 100,
            seed: 7,
            early_stop_patience: 5,
        };
        let trace = train(&mut net, &tr, &te, &mut adam, &cfg);
        assert!(trace.early_stopped, "a learnable toy problem must plateau");
        assert!(
            trace.iterations < 100_000,
            "stopped at {} iterations",
            trace.iterations
        );
        // Quality is still good at the stop point.
        assert!(trace.final_rmse_pct < 10.0, "rmse {}", trace.final_rmse_pct);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn train_checks_arity() {
        let data = toy_dataset(50);
        let mut net = Network::new(3, &[4], 5);
        let mut adam = Adam::new(0.01);
        train(&mut net, &data, &data, &mut adam, &TrainConfig::default());
    }
}
