//! In-memory training dataset with deterministic shuffling and the paper's
//! 70/30 train/test split (§3: "for each topology, we use a cross
//! validation test involving 70% of data as training and 30% as a test").

use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A supervised regression dataset: feature rows and scalar targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; all rows share the same arity.
    pub inputs: Vec<Vec<f64>>,
    /// One target per row.
    pub targets: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset, validating shape.
    ///
    /// # Panics
    /// Panics when lengths differ or rows are ragged.
    pub fn new(inputs: Vec<Vec<f64>>, targets: Vec<f64>) -> Self {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "Dataset: inputs/targets length mismatch"
        );
        if let Some(d) = inputs.first().map(Vec::len) {
            assert!(
                inputs.iter().all(|r| r.len() == d),
                "Dataset: ragged input rows"
            );
        }
        Dataset { inputs, targets }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Feature arity (0 for an empty dataset).
    pub fn arity(&self) -> usize {
        self.inputs.first().map_or(0, Vec::len)
    }

    /// Appends one example.
    ///
    /// # Panics
    /// Panics when the row arity differs from existing rows.
    pub fn push(&mut self, row: Vec<f64>, target: f64) {
        if !self.inputs.is_empty() {
            assert_eq!(row.len(), self.arity(), "Dataset::push: arity mismatch");
        }
        self.inputs.push(row);
        self.targets.push(target);
    }

    /// Merges another dataset into this one.
    ///
    /// # Panics
    /// Panics when arities differ (and both are non-empty).
    pub fn extend(&mut self, other: &Dataset) {
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(
                self.arity(),
                other.arity(),
                "Dataset::extend: arity mismatch"
            );
        }
        self.inputs.extend(other.inputs.iter().cloned());
        self.targets.extend(other.targets.iter().cloned());
    }

    /// Deterministically splits into `(train, test)` with `train_fraction`
    /// of the examples (rounded down, at least one on each side when
    /// possible) going to the training side, after a seeded shuffle.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must be within [0, 1]"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let mut cut = (self.len() as f64 * train_fraction) as usize;
        if self.len() >= 2 {
            cut = cut.clamp(1, self.len() - 1);
        }
        let take = |ids: &[usize]| {
            Dataset::new(
                ids.iter().map(|&i| self.inputs[i].clone()).collect(),
                ids.iter().map(|&i| self.targets[i]).collect(),
            )
        };
        (take(&idx[..cut]), take(&idx[cut..]))
    }

    /// Yields shuffled mini-batch index slices for one epoch.
    pub fn batch_indices(&self, batch_size: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect(),
            (0..n).map(|i| i as f64).collect(),
        )
    }

    #[test]
    fn split_respects_fraction() {
        let d = sample(100);
        let (tr, te) = d.split(0.7, 1);
        assert_eq!(tr.len(), 70);
        assert_eq!(te.len(), 30);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = sample(50);
        let (a, _) = d.split(0.7, 42);
        let (b, _) = d.split(0.7, 42);
        assert_eq!(a, b);
        let (c, _) = d.split(0.7, 43);
        assert_ne!(a, c, "different seed should shuffle differently");
    }

    #[test]
    fn split_partitions_all_examples() {
        let d = sample(31);
        let (tr, te) = d.split(0.7, 9);
        assert_eq!(tr.len() + te.len(), 31);
        let mut all: Vec<f64> = tr.targets.iter().chain(&te.targets).copied().collect();
        all.sort_by(f64::total_cmp);
        let expect: Vec<f64> = (0..31).map(|i| i as f64).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn split_keeps_at_least_one_each_side() {
        let d = sample(2);
        let (tr, te) = d.split(0.99, 1);
        assert_eq!(tr.len(), 1);
        assert_eq!(te.len(), 1);
    }

    #[test]
    fn batch_indices_cover_everything_once() {
        let d = sample(10);
        let mut rng = StdRng::seed_from_u64(7);
        let batches = d.batch_indices(3, &mut rng);
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let mut seen: Vec<usize> = batches.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn new_rejects_mismatched_lengths() {
        Dataset::new(vec![vec![1.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn new_rejects_ragged_rows() {
        Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]);
    }

    #[test]
    fn extend_merges() {
        let mut a = sample(3);
        let b = sample(2);
        a.extend(&b);
        assert_eq!(a.len(), 5);
    }
}
