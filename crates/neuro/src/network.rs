//! A feed-forward network: a stack of dense layers with a scalar
//! (regression) output head.

use crate::{
    activation::Activation,
    layer::{DenseLayer, LayerGrads},
};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A feed-forward regression network.
///
/// The paper fixes the depth to two hidden layers (§3, citing its reference 18) and
/// searches only the widths; this type supports any depth so the ablation
/// benches can vary it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<DenseLayer>,
}

impl Network {
    /// Builds a network with the given hidden widths and a single
    /// identity-activated output unit, e.g. `Network::new(7, &[14, 7], seed)`
    /// for a 7-input join model.
    pub fn new(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        Self::with_activation(input_dim, hidden, Activation::Tanh, seed)
    }

    /// Like [`Network::new`] but with a chosen hidden activation.
    pub fn with_activation(input_dim: usize, hidden: &[usize], act: Activation, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = input_dim;
        for &h in hidden {
            layers.push(DenseLayer::new(prev, h, act, &mut rng));
            prev = h;
        }
        layers.push(DenseLayer::new(prev, 1, Activation::Identity, &mut rng));
        Network { layers }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Hidden layer widths (excluding the output head).
    pub fn hidden_widths(&self) -> Vec<usize> {
        self.layers[..self.layers.len() - 1]
            .iter()
            .map(|l| l.out_dim)
            .collect()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::param_count).sum()
    }

    /// Predicts the scalar output for one input row.
    pub fn predict(&self, input: &[f64]) -> f64 {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "Network::predict: arity mismatch"
        );
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x[0]
    }

    /// Predicts for a batch of rows, amortising the per-layer activation
    /// allocations across the whole batch: two scratch buffers are ping-
    /// ponged through the layer stack instead of allocating one vector per
    /// layer per row. The arithmetic (and therefore every bit of every
    /// prediction) is identical to calling [`Network::predict`] per row.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let widest = self
            .layers
            .iter()
            .map(|l| l.out_dim)
            .max()
            .unwrap_or(0)
            .max(self.input_dim());
        let mut cur: Vec<f64> = Vec::with_capacity(widest);
        let mut next: Vec<f64> = Vec::with_capacity(widest);
        rows.iter()
            .map(|r| {
                assert_eq!(
                    r.len(),
                    self.input_dim(),
                    "Network::predict_batch: arity mismatch"
                );
                cur.clear();
                cur.extend_from_slice(r);
                for layer in &self.layers {
                    layer.forward_into(&cur, &mut next);
                    std::mem::swap(&mut cur, &mut next);
                }
                cur[0]
            })
            .collect()
    }

    /// [`Network::predict_batch`] over a row-major flat buffer:
    /// `rows.len() / width` rows of `width` features each, no per-row
    /// `Vec` required. Call sites that already own contiguous data
    /// (batch staging buffers, benchmark matrices) should prefer this
    /// over cloning rows into a `Vec<Vec<f64>>`. Bit-identical to the
    /// nested-slice path.
    pub fn predict_batch_flat(&self, rows: &[f64], width: usize) -> Vec<f64> {
        assert_eq!(
            width,
            self.input_dim(),
            "Network::predict_batch_flat: arity mismatch"
        );
        assert_eq!(
            rows.len() % width,
            0,
            "Network::predict_batch_flat: flat batch is not a multiple of width"
        );
        let widest = self
            .layers
            .iter()
            .map(|l| l.out_dim)
            .max()
            .unwrap_or(0)
            .max(self.input_dim());
        let mut cur: Vec<f64> = Vec::with_capacity(widest);
        let mut next: Vec<f64> = Vec::with_capacity(widest);
        rows.chunks_exact(width)
            .map(|r| {
                cur.clear();
                cur.extend_from_slice(r);
                for layer in &self.layers {
                    layer.forward_into(&cur, &mut next);
                    std::mem::swap(&mut cur, &mut next);
                }
                cur[0]
            })
            .collect()
    }

    /// Forward pass keeping every layer's activated output (index 0 is the
    /// input itself); used by backprop.
    fn forward_trace(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty trace"));
            acts.push(next);
        }
        acts
    }

    /// Accumulates MSE gradients for one example into `grads` and returns
    /// its squared error.
    pub fn accumulate_grads(&self, input: &[f64], target: f64, grads: &mut [LayerGrads]) -> f64 {
        debug_assert_eq!(grads.len(), self.layers.len());
        let acts = self.forward_trace(input);
        let pred = acts.last().expect("output present")[0];
        let err = pred - target;
        // d(0.5·err²)/d(pred) = err
        let mut grad = vec![err];
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            grad = layer.backward(&acts[idx], &acts[idx + 1], &grad, &mut grads[idx]);
        }
        err * err
    }

    /// Fresh zeroed gradient buffers matching this network.
    pub fn zero_grads(&self) -> Vec<LayerGrads> {
        self.layers.iter().map(LayerGrads::zeros_like).collect()
    }

    /// Read access to the layer stack (for optimisers).
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable access to the layer stack (for optimisers).
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let n = Network::new(7, &[14, 7], 1);
        assert_eq!(n.input_dim(), 7);
        assert_eq!(n.hidden_widths(), vec![14, 7]);
        // (7*14+14) + (14*7+7) + (7*1+1) = 112 + 105 + 8
        assert_eq!(n.param_count(), 225);
    }

    #[test]
    fn same_seed_same_network() {
        let a = Network::new(4, &[8, 4], 99);
        let b = Network::new(4, &[8, 4], 99);
        assert_eq!(a, b);
        let c = Network::new(4, &[8, 4], 100);
        assert_ne!(a, c);
    }

    #[test]
    fn predict_is_deterministic() {
        let n = Network::new(3, &[5], 7);
        let x = [0.1, 0.2, 0.3];
        assert_eq!(n.predict(&x), n.predict(&x));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_checks_arity() {
        Network::new(3, &[4], 0).predict(&[1.0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indices walk layers and grads in lockstep
    fn network_gradients_match_finite_differences() {
        let mut net = Network::new(2, &[4, 3], 5);
        let input = [0.4, -0.6];
        let target = 0.8;
        let mut grads = net.zero_grads();
        net.accumulate_grads(&input, target, &mut grads);

        let loss = |n: &Network| {
            let e = n.predict(&input) - target;
            0.5 * e * e
        };
        let eps = 1e-6;
        for li in 0..net.layers().len() {
            for k in 0..net.layers()[li].weights.len() {
                let orig = net.layers()[li].weights[k];
                net.layers_mut()[li].weights[k] = orig + eps;
                let up = loss(&net);
                net.layers_mut()[li].weights[k] = orig - eps;
                let down = loss(&net);
                net.layers_mut()[li].weights[k] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - grads[li].weights[k]).abs() < 1e-5,
                    "layer {li} weight {k}: {numeric} vs {}",
                    grads[li].weights[k]
                );
            }
        }
    }

    #[test]
    fn predict_batch_matches_predict_bit_for_bit() {
        let n = Network::new(5, &[11, 6], 21);
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| (0..5).map(|d| (i * 5 + d) as f64 * 0.013 - 1.2).collect())
            .collect();
        let batched = n.predict_batch(&rows);
        for (row, &b) in rows.iter().zip(&batched) {
            assert_eq!(n.predict(row), b, "row {row:?}");
        }
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_batch_checks_arity() {
        Network::new(3, &[4], 0).predict_batch(&[vec![1.0, 2.0]]);
    }

    #[test]
    fn predict_batch_flat_matches_nested_bit_for_bit() {
        let n = Network::new(4, &[9, 5], 13);
        let rows: Vec<Vec<f64>> = (0..25)
            .map(|i| (0..4).map(|d| (i * 4 + d) as f64 * 0.021 - 0.9).collect())
            .collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let nested = n.predict_batch(&rows);
        let from_flat = n.predict_batch_flat(&flat, 4);
        assert_eq!(nested.len(), from_flat.len());
        for (a, b) in nested.iter().zip(&from_flat) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "multiple of width")]
    fn predict_batch_flat_checks_length() {
        Network::new(3, &[4], 0).predict_batch_flat(&[1.0, 2.0, 3.0, 4.0], 3);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let n = Network::new(4, &[8, 4], 2);
        let json = serde_json::to_string(&n).unwrap();
        let back: Network = serde_json::from_str(&json).unwrap();
        let x = [0.1, 0.9, -0.4, 0.0];
        assert_eq!(n.predict(&x), back.predict(&x));
    }
}
