//! First-order optimisers: plain SGD and Adam.

use crate::{layer::LayerGrads, network::Network};

/// A parameter-update rule applied after each mini-batch.
pub trait Optimizer {
    /// Applies one update step given averaged mini-batch gradients.
    fn step(&mut self, net: &mut Network, grads: &[LayerGrads]);
}

/// Stochastic gradient descent with a fixed learning rate.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Network, grads: &[LayerGrads]) {
        for (layer, g) in net.layers_mut().iter_mut().zip(grads) {
            for (w, gw) in layer.weights.iter_mut().zip(&g.weights) {
                *w -= self.lr * gw;
            }
            for (b, gb) in layer.biases.iter_mut().zip(&g.biases) {
                *b -= self.lr * gb;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias-corrected first/second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (default 1e-3 via [`Adam::new`]).
    pub lr: f64,
    /// First-moment decay (0.9).
    pub beta1: f64,
    /// Second-moment decay (0.999).
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: u64,
    m: Vec<LayerGrads>,
    v: Vec<LayerGrads>,
}

impl Adam {
    /// Creates an Adam optimiser with the standard β₁=0.9, β₂=0.999.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![],
            v: vec![],
        }
    }

    fn ensure_state(&mut self, net: &Network) {
        if self.m.len() != net.layers().len() {
            self.m = net.zero_grads();
            self.v = net.zero_grads();
            self.t = 0;
        }
    }
}

impl Optimizer for Adam {
    #[allow(clippy::needless_range_loop)] // indices address three parallel buffers
    fn step(&mut self, net: &mut Network, grads: &[LayerGrads]) {
        self.ensure_state(net);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (li, (layer, g)) in net.layers_mut().iter_mut().zip(grads).enumerate() {
            let (m, v) = (&mut self.m[li], &mut self.v[li]);
            for k in 0..layer.weights.len() {
                m.weights[k] = self.beta1 * m.weights[k] + (1.0 - self.beta1) * g.weights[k];
                v.weights[k] =
                    self.beta2 * v.weights[k] + (1.0 - self.beta2) * g.weights[k] * g.weights[k];
                let mhat = m.weights[k] / b1t;
                let vhat = v.weights[k] / b2t;
                layer.weights[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            for k in 0..layer.biases.len() {
                m.biases[k] = self.beta1 * m.biases[k] + (1.0 - self.beta1) * g.biases[k];
                v.biases[k] =
                    self.beta2 * v.biases[k] + (1.0 - self.beta2) * g.biases[k] * g.biases[k];
                let mhat = m.biases[k] / b1t;
                let vhat = v.biases[k] / b2t;
                layer.biases[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One gradient step must reduce the loss on a smooth toy problem.
    fn loss(net: &Network, x: &[f64], t: f64) -> f64 {
        let e = net.predict(x) - t;
        0.5 * e * e
    }

    #[test]
    fn sgd_step_reduces_loss() {
        let mut net = Network::new(2, &[4], 1);
        let x = [0.5, -0.5];
        let before = loss(&net, &x, 2.0);
        let mut grads = net.zero_grads();
        net.accumulate_grads(&x, 2.0, &mut grads);
        Sgd::new(0.05).step(&mut net, &grads);
        assert!(loss(&net, &x, 2.0) < before);
    }

    #[test]
    fn adam_step_reduces_loss_over_iterations() {
        let mut net = Network::new(2, &[4], 2);
        let x = [0.5, -0.5];
        let mut adam = Adam::new(0.01);
        let before = loss(&net, &x, 2.0);
        for _ in 0..200 {
            let mut grads = net.zero_grads();
            net.accumulate_grads(&x, 2.0, &mut grads);
            adam.step(&mut net, &grads);
        }
        let after = loss(&net, &x, 2.0);
        assert!(after < before * 0.01, "before {before}, after {after}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sgd_rejects_zero_lr() {
        Sgd::new(0.0);
    }

    #[test]
    fn adam_state_resizes_with_new_network() {
        let mut adam = Adam::new(0.01);
        let mut a = Network::new(2, &[3], 1);
        let g = a.zero_grads();
        adam.step(&mut a, &g);
        // Switching to a different architecture must not panic.
        let mut b = Network::new(2, &[5, 4], 1);
        let g2 = b.zero_grads();
        adam.step(&mut b, &g2);
    }
}
