//! Element-wise activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent — the default hidden activation; smooth and
    /// bounded, appropriate for the min-max-normalised inputs used here.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (used for the output layer of a regression network).
    Identity,
}

impl Activation {
    /// Applies the activation to one pre-activation value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// The derivative of the activation expressed in terms of the
    /// *activated* value `y = apply(x)`, which is what backprop has at hand.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_matches_std() {
        assert!((Activation::Tanh.apply(0.7) - 0.7f64.tanh()).abs() < 1e-15);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn sigmoid_midpoint() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn identity_is_identity() {
        assert_eq!(Activation::Identity.apply(42.0), 42.0);
        assert_eq!(Activation::Identity.derivative_from_output(42.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [Activation::Tanh, Activation::Sigmoid] {
            for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_from_output() {
        assert_eq!(Activation::Relu.derivative_from_output(5.0), 1.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
    }
}
