#![warn(missing_docs)]

//! A small, dependency-free feed-forward neural-network library.
//!
//! The paper's logical-operator costing (§3) trains "simple light-weight
//! neural networks" — two hidden layers, topology chosen by cross
//! validation — to map operator parameters (7 dims for join, 4 for
//! aggregation) to elapsed execution time. This crate provides exactly that
//! machinery, implemented from scratch:
//!
//! * dense layers with tanh/ReLU/sigmoid/identity activations,
//! * mean-squared-error loss with hand-rolled backpropagation,
//! * SGD and Adam optimisers,
//! * a mini-batch training loop that records an RMSE-vs-iteration trace
//!   (the convergence curves of Figs. 11b and 12b),
//! * the paper's cross-validation topology search (§3: first layer between
//!   `n_in` and `2·n_in` nodes, second layer between 3 and half the first),
//! * serde persistence so trained models can live inside a remote system's
//!   Costing Profile.
//!
//! All randomness (weight init, shuffling) flows from caller-provided
//! seeds, so every training run is reproducible.

pub mod activation;
pub mod dataset;
pub mod layer;
pub mod network;
pub mod optimizer;
pub mod packed;
pub mod topology;
pub mod train;

pub use activation::Activation;
pub use dataset::Dataset;
pub use network::Network;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use packed::{PackedNetwork, PackedScratch};
pub use topology::{search_topology, Topology, TopologySearchReport};
pub use train::{train, TrainConfig, TrainTrace};
