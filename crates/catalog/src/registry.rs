//! The catalog itself: table and remote-system registries.

use crate::{remote::RemoteSystemProfile, remote::SystemId, table::TableDef};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Catalog lookup/registration failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// A table with this name is already registered.
    DuplicateTable(String),
    /// No table with this name.
    UnknownTable(String),
    /// A system with this id is already registered.
    DuplicateSystem(SystemId),
    /// No system with this id.
    UnknownSystem(SystemId),
    /// The table references a system that has not been registered.
    UnregisteredLocation {
        /// The table being registered.
        table: String,
        /// Its (unknown) location.
        location: SystemId,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicateTable(t) => write!(f, "table `{t}` already registered"),
            CatalogError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            CatalogError::DuplicateSystem(s) => write!(f, "system `{s}` already registered"),
            CatalogError::UnknownSystem(s) => write!(f, "unknown system `{s}`"),
            CatalogError::UnregisteredLocation { table, location } => {
                write!(
                    f,
                    "table `{table}` references unregistered system `{location}`"
                )
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// The IntelliSphere catalog: every participating system and every
/// (foreign) table, with schema, statistics, and location.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
    systems: BTreeMap<SystemId, RemoteSystemProfile>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a remote system profile.
    pub fn register_system(&mut self, profile: RemoteSystemProfile) -> Result<(), CatalogError> {
        if self.systems.contains_key(&profile.id) {
            return Err(CatalogError::DuplicateSystem(profile.id.clone()));
        }
        self.systems.insert(profile.id.clone(), profile);
        Ok(())
    }

    /// Registers a table; its location must already be a known system.
    pub fn register_table(&mut self, table: TableDef) -> Result<(), CatalogError> {
        if self.tables.contains_key(&table.name) {
            return Err(CatalogError::DuplicateTable(table.name.clone()));
        }
        if !self.systems.contains_key(&table.location) {
            return Err(CatalogError::UnregisteredLocation {
                table: table.name.clone(),
                location: table.location.clone(),
            });
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&TableDef, CatalogError> {
        self.tables
            .get(name)
            .ok_or_else(|| CatalogError::UnknownTable(name.to_string()))
    }

    /// Looks up a system profile.
    pub fn system(&self, id: &SystemId) -> Result<&RemoteSystemProfile, CatalogError> {
        self.systems
            .get(id)
            .ok_or_else(|| CatalogError::UnknownSystem(id.clone()))
    }

    /// Iterates over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    /// Iterates over all systems in id order.
    pub fn systems(&self) -> impl Iterator<Item = &RemoteSystemProfile> {
        self.systems.values()
    }

    /// All tables stored on a given system.
    pub fn tables_on(&self, id: &SystemId) -> Vec<&TableDef> {
        self.tables.values().filter(|t| &t.location == id).collect()
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of registered systems.
    pub fn system_count(&self) -> usize {
        self.systems.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        column::{ColumnDef, ColumnStats},
        remote::{Capability, SystemKind},
        stats::TableStats,
    };

    fn hive_profile() -> RemoteSystemProfile {
        RemoteSystemProfile::paper_hive_cluster("hive-a")
    }

    fn table_on(name: &str, system: &str) -> TableDef {
        TableDef::new(
            name,
            vec![ColumnDef::int("a1")],
            TableStats::new(100, 40).with_column("a1", ColumnStats::duplicated_range(100, 1)),
            SystemId::new(system),
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register_system(hive_profile()).unwrap();
        c.register_table(table_on("t1", "hive-a")).unwrap();
        assert_eq!(c.table("t1").unwrap().rows(), 100);
        assert_eq!(
            c.system(&SystemId::new("hive-a")).unwrap().kind,
            SystemKind::Hive
        );
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.register_system(hive_profile()).unwrap();
        c.register_table(table_on("t1", "hive-a")).unwrap();
        assert_eq!(
            c.register_table(table_on("t1", "hive-a")),
            Err(CatalogError::DuplicateTable("t1".into()))
        );
    }

    #[test]
    fn duplicate_system_rejected() {
        let mut c = Catalog::new();
        c.register_system(hive_profile()).unwrap();
        assert!(matches!(
            c.register_system(hive_profile()),
            Err(CatalogError::DuplicateSystem(_))
        ));
    }

    #[test]
    fn table_requires_registered_location() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.register_table(table_on("t1", "ghost")),
            Err(CatalogError::UnregisteredLocation { .. })
        ));
    }

    #[test]
    fn unknown_lookups_error() {
        let c = Catalog::new();
        assert!(matches!(
            c.table("nope"),
            Err(CatalogError::UnknownTable(_))
        ));
        assert!(matches!(
            c.system(&SystemId::new("nope")),
            Err(CatalogError::UnknownSystem(_))
        ));
    }

    #[test]
    fn tables_on_filters_by_location() {
        let mut c = Catalog::new();
        c.register_system(hive_profile()).unwrap();
        c.register_system(RemoteSystemProfile::new(
            SystemId::new("pg"),
            SystemKind::Rdbms,
            1,
            8,
            1 << 30,
            vec![Capability::Join],
        ))
        .unwrap();
        c.register_table(table_on("t1", "hive-a")).unwrap();
        c.register_table(table_on("t2", "pg")).unwrap();
        c.register_table(table_on("t3", "hive-a")).unwrap();
        let on_hive = c.tables_on(&SystemId::new("hive-a"));
        assert_eq!(on_hive.len(), 2);
        assert_eq!(c.table_count(), 3);
        assert_eq!(c.system_count(), 2);
    }
}
