//! Remote-system identity, kind, capabilities, and registration profile.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a system participating in the IntelliSphere ecosystem
/// (the master engine or a remote system).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SystemId(String);

impl SystemId {
    /// Creates an id from a name.
    pub fn new(name: &str) -> Self {
        SystemId(name.to_string())
    }

    /// The reserved id of the master (Teradata) engine.
    pub fn master() -> Self {
        SystemId("teradata".to_string())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The engine family of a remote system. Determines which simulator
/// persona backs it and which physical algorithms it offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Hive on Hadoop (map-reduce execution, HDFS storage).
    Hive,
    /// Spark SQL (in-memory shuffle, cheaper task startup).
    Spark,
    /// A single-node relational database.
    Rdbms,
    /// The Teradata master engine itself.
    Teradata,
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SystemKind::Hive => "hive",
            SystemKind::Spark => "spark",
            SystemKind::Rdbms => "rdbms",
            SystemKind::Teradata => "teradata",
        })
    }
}

/// SQL operations a remote system may (not) support — §2: "a remote system
/// may not have the capability to perform a join operation".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Capability {
    /// Row filtering (selection).
    Filter,
    /// Column projection.
    Project,
    /// Binary join.
    Join,
    /// Grouped aggregation.
    Aggregate,
}

/// The registration profile of a remote system (§2 "Remote System
/// Profile"): setup description plus supported operations. Costing state
/// is attached separately by the costing crate, keyed by [`SystemId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteSystemProfile {
    /// Unique system id.
    pub id: SystemId,
    /// Engine family.
    pub kind: SystemKind,
    /// Worker node count of the cluster backing this system.
    pub nodes: u32,
    /// CPU cores per node (total parallelism = nodes × cores).
    pub cores_per_node: u32,
    /// Memory per node in bytes (drives the HashBuild spill regime).
    pub memory_per_node_bytes: u64,
    /// Supported SQL operations.
    pub capabilities: Vec<Capability>,
}

impl RemoteSystemProfile {
    /// Builds a profile; capabilities are deduplicated and sorted.
    pub fn new(
        id: SystemId,
        kind: SystemKind,
        nodes: u32,
        cores_per_node: u32,
        memory_per_node_bytes: u64,
        mut capabilities: Vec<Capability>,
    ) -> Self {
        capabilities.sort();
        capabilities.dedup();
        RemoteSystemProfile {
            id,
            kind,
            nodes,
            cores_per_node,
            memory_per_node_bytes,
            capabilities,
        }
    }

    /// The paper's evaluation cluster: 4 nodes (1 master + 3 data nodes),
    /// 2 cores and 8 GB each (§7 "Cluster and Dataset Description").
    pub fn paper_hive_cluster(id: &str) -> Self {
        RemoteSystemProfile::new(
            SystemId::new(id),
            SystemKind::Hive,
            3, // data nodes doing work
            2,
            8 * 1024 * 1024 * 1024,
            vec![
                Capability::Filter,
                Capability::Project,
                Capability::Join,
                Capability::Aggregate,
            ],
        )
    }

    /// Whether the system supports an operation.
    pub fn supports(&self, cap: Capability) -> bool {
        self.capabilities.contains(&cap)
    }

    /// Total parallel task slots (the paper's "total number of cores",
    /// denominator of `NumTaskWaves`).
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_id_is_reserved_name() {
        assert_eq!(SystemId::master().as_str(), "teradata");
    }

    #[test]
    fn paper_cluster_dimensions() {
        let p = RemoteSystemProfile::paper_hive_cluster("hive-a");
        assert_eq!(p.total_cores(), 6);
        assert!(p.supports(Capability::Join));
        assert_eq!(p.kind, SystemKind::Hive);
    }

    #[test]
    fn capabilities_dedup() {
        let p = RemoteSystemProfile::new(
            SystemId::new("x"),
            SystemKind::Rdbms,
            1,
            4,
            1024,
            vec![Capability::Join, Capability::Join, Capability::Filter],
        );
        assert_eq!(p.capabilities.len(), 2);
    }

    #[test]
    fn missing_capability_detected() {
        let p = RemoteSystemProfile::new(
            SystemId::new("scan-only"),
            SystemKind::Rdbms,
            1,
            1,
            1024,
            vec![Capability::Filter, Capability::Project],
        );
        assert!(!p.supports(Capability::Join));
    }

    #[test]
    fn system_id_display_and_eq() {
        let a = SystemId::new("hive-a");
        assert_eq!(a.to_string(), "hive-a");
        assert_eq!(a, SystemId::new("hive-a"));
    }
}
