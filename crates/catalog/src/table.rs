//! Table definitions (schema + stats + location).

use crate::{
    column::{ColumnDef, ColumnType},
    remote::SystemId,
    stats::TableStats,
};
use serde::{Deserialize, Serialize};

/// A table registered in the IntelliSphere catalog. Tables stored on a
/// remote system are *foreign tables* from the master engine's point of
/// view; its schema and location are known (§2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Ordered column definitions.
    pub schema: Vec<ColumnDef>,
    /// Collected statistics.
    pub stats: TableStats,
    /// The system that stores this table.
    pub location: SystemId,
    /// Column the table is physically partitioned/bucketed by, when known.
    /// The sub-op applicability rules consult this (a table not partitioned
    /// by the join key rules out bucketed join algorithms).
    pub partitioned_by: Option<String>,
}

impl TableDef {
    /// Creates a table definition.
    pub fn new(name: &str, schema: Vec<ColumnDef>, stats: TableStats, location: SystemId) -> Self {
        TableDef {
            name: name.to_string(),
            schema,
            stats,
            location,
            partitioned_by: None,
        }
    }

    /// Declares a partitioning column (builder style).
    pub fn partitioned_by(mut self, column: &str) -> Self {
        self.partitioned_by = Some(column.to_string());
        self
    }

    /// Looks up a column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.schema.iter().find(|c| c.name == name)
    }

    /// The width in bytes of the named columns (used to compute the
    /// "projected size" training dimensions of the join model, Fig. 2).
    pub fn projected_width(&self, columns: &[&str]) -> u64 {
        columns
            .iter()
            .filter_map(|n| self.column(n))
            .map(|c| c.ty.width())
            .sum()
    }

    /// Declared row width from the schema (sum of column widths).
    pub fn schema_row_width(&self) -> u64 {
        self.schema.iter().map(|c| c.ty.width()).sum()
    }

    /// Row count shortcut.
    pub fn rows(&self) -> u64 {
        self.stats.row_count
    }

    /// Average row size shortcut.
    pub fn row_bytes(&self) -> u64 {
        self.stats.avg_row_bytes
    }
}

/// Width of an integer column — re-exported for workload construction.
pub const INTEGER_WIDTH: u64 = ColumnType::Integer.width_const();

impl ColumnType {
    /// `width` usable in const contexts.
    pub const fn width_const(self) -> u64 {
        match self {
            ColumnType::Integer => 4,
            ColumnType::Character(n) => n as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnStats;

    fn sample_table() -> TableDef {
        let schema = vec![
            ColumnDef::int("a1"),
            ColumnDef::int("a5"),
            ColumnDef::int("z"),
            ColumnDef::chars("dummy", 28),
        ];
        let stats = TableStats::new(1_000, 40)
            .with_column("a1", ColumnStats::duplicated_range(1_000, 1))
            .with_column("a5", ColumnStats::duplicated_range(1_000, 5))
            .with_column("z", ColumnStats::constant(0));
        TableDef::new("T1000_40", schema, stats, SystemId::new("hive-prod"))
    }

    #[test]
    fn schema_row_width_sums_columns() {
        assert_eq!(sample_table().schema_row_width(), 4 + 4 + 4 + 28);
    }

    #[test]
    fn projected_width_counts_only_named_columns() {
        let t = sample_table();
        assert_eq!(t.projected_width(&["a1", "a5"]), 8);
        assert_eq!(t.projected_width(&["a1", "missing"]), 4);
    }

    #[test]
    fn partitioning_builder() {
        let t = sample_table().partitioned_by("a1");
        assert_eq!(t.partitioned_by.as_deref(), Some("a1"));
    }

    #[test]
    fn column_lookup() {
        let t = sample_table();
        assert!(t.column("z").is_some());
        assert!(t.column("q").is_none());
    }

    #[test]
    fn const_width_matches_runtime_width() {
        assert_eq!(INTEGER_WIDTH, ColumnType::Integer.width());
    }
}
