//! Table-level statistics.

use crate::column::ColumnStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Statistics for one table: row count, average row size, and per-column
/// detail — exactly the basic statistics §2 assumes Teradata can collect
/// on remote tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: u64,
    /// Average row width in bytes.
    pub avg_row_bytes: u64,
    /// Per-column statistics keyed by column name (BTreeMap so that serde
    /// output and iteration order are deterministic).
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    /// Creates empty stats for a table of known size.
    pub fn new(row_count: u64, avg_row_bytes: u64) -> Self {
        TableStats {
            row_count,
            avg_row_bytes,
            columns: BTreeMap::new(),
        }
    }

    /// Adds stats for one column (builder style).
    pub fn with_column(mut self, name: &str, stats: ColumnStats) -> Self {
        self.columns.insert(name.to_string(), stats);
        self
    }

    /// Looks up stats for a column.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Total data volume in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.row_count * self.avg_row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let s = TableStats::new(1000, 250)
            .with_column("a1", ColumnStats::duplicated_range(1000, 1))
            .with_column("a5", ColumnStats::duplicated_range(1000, 5));
        assert_eq!(s.column("a1").unwrap().distinct_values, 1000);
        assert_eq!(s.column("a5").unwrap().distinct_values, 200);
        assert!(s.column("nope").is_none());
        assert_eq!(s.total_bytes(), 250_000);
    }

    #[test]
    fn serde_roundtrip() {
        let s = TableStats::new(10, 40).with_column("z", ColumnStats::constant(0));
        let json = serde_json::to_string(&s).unwrap();
        let back: TableStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
