//! Column definitions and per-column statistics.

use serde::{Deserialize, Serialize};

/// Supported column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 4-byte integer.
    Integer,
    /// Fixed-width character field of the given byte length (the Fig. 10
    /// `dummy` column "used to reach a specific record size").
    Character(u32),
}

impl ColumnType {
    /// On-disk width in bytes.
    pub fn width(self) -> u64 {
        match self {
            ColumnType::Integer => 4,
            ColumnType::Character(n) => n as u64,
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Convenience constructor for an integer column.
    pub fn int(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty: ColumnType::Integer,
        }
    }

    /// Convenience constructor for a character column.
    pub fn chars(name: &str, width: u32) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty: ColumnType::Character(width),
        }
    }
}

/// An equi-width histogram over an integer column's value range, for
/// non-uniform selectivity estimation (real optimizers — Teradata
/// included — collect these alongside the basic §2 statistics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower bound of the first bucket.
    pub lo: f64,
    /// Upper bound of the last bucket.
    pub hi: f64,
    /// Row counts per bucket (equal-width buckets across `[lo, hi]`).
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram; requires at least one bucket and `hi > lo`.
    pub fn new(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, hi, counts }
    }

    /// Total rows covered.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of rows with value `< x`, interpolating linearly inside
    /// the bucket containing `x`.
    pub fn selectivity_lt(&self, x: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width).floor() as usize;
        let idx = idx.min(self.counts.len() - 1);
        let below: u64 = self.counts[..idx].iter().sum();
        let within_frac = (x - (self.lo + idx as f64 * width)) / width;
        (below as f64 + within_frac * self.counts[idx] as f64) / total as f64
    }
}

/// Per-column statistics, as Teradata would collect them on a foreign
/// table (§2: "the number of distinct values in each column").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct_values: u64,
    /// Minimum value (integer domain; `None` for character columns).
    pub min: Option<i64>,
    /// Maximum value (integer domain; `None` for character columns).
    pub max: Option<i64>,
    /// Rows carried by the single most frequent value, when it deviates
    /// from the uniform `rows / distinct` (drives skew detection).
    #[serde(default)]
    pub heavy_hitter_rows: Option<u64>,
    /// Optional histogram for non-uniform range selectivity.
    #[serde(default)]
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Stats for a column holding `1..=n` with each value repeated
    /// `duplication` times — the Fig. 10 construction where "each value in
    /// a5 is duplicated 5 times".
    pub fn duplicated_range(rows: u64, duplication: u64) -> Self {
        assert!(duplication > 0, "duplication factor must be positive");
        let distinct = rows.div_ceil(duplication).max(1);
        ColumnStats {
            distinct_values: distinct,
            min: Some(1),
            max: Some(distinct as i64),
            heavy_hitter_rows: None,
            histogram: None,
        }
    }

    /// Stats for a constant column (the Fig. 10 `z` column of all zeros).
    pub fn constant(value: i64) -> Self {
        ColumnStats {
            distinct_values: 1,
            min: Some(value),
            max: Some(value),
            heavy_hitter_rows: None,
            histogram: None,
        }
    }

    /// Stats for an opaque (character) column.
    pub fn opaque(distinct: u64) -> Self {
        ColumnStats {
            distinct_values: distinct.max(1),
            min: None,
            max: None,
            heavy_hitter_rows: None,
            histogram: None,
        }
    }

    /// Declares a heavy hitter (builder style).
    pub fn with_heavy_hitter(mut self, rows: u64) -> Self {
        self.heavy_hitter_rows = Some(rows);
        self
    }

    /// Attaches a histogram (builder style).
    pub fn with_histogram(mut self, h: Histogram) -> Self {
        self.histogram = Some(h);
        self
    }

    /// Rows carried by the most frequent value: the declared heavy hitter
    /// when known, otherwise the uniform average.
    pub fn heavy_rows(&self, table_rows: u64) -> f64 {
        self.heavy_hitter_rows
            .map(|h| h as f64)
            .unwrap_or_else(|| self.rows_per_value(table_rows))
    }

    /// Average number of rows sharing one value, given the table row count.
    pub fn rows_per_value(&self, rows: u64) -> f64 {
        rows as f64 / self.distinct_values as f64
    }

    /// Estimated selectivity of `column < literal`: histogram-based when a
    /// histogram is attached, uniform otherwise; falls back to 1/3 (a
    /// classic default) without min/max.
    pub fn lt_selectivity(&self, literal: f64) -> f64 {
        if let Some(h) = &self.histogram {
            return h.selectivity_lt(literal);
        }
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if hi > lo => {
                ((literal - lo as f64) / (hi - lo) as f64).clamp(0.0, 1.0)
            }
            (Some(lo), Some(_)) => {
                if literal > lo as f64 {
                    1.0
                } else {
                    0.0
                }
            }
            _ => 1.0 / 3.0,
        }
    }

    /// Estimated selectivity of `column = literal` (1/distinct when the
    /// literal is within range).
    pub fn eq_selectivity(&self, literal: f64) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => {
                if literal < lo as f64 || literal > hi as f64 {
                    0.0
                } else {
                    1.0 / self.distinct_values as f64
                }
            }
            _ => 1.0 / self.distinct_values as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ColumnType::Integer.width(), 4);
        assert_eq!(ColumnType::Character(12).width(), 12);
    }

    #[test]
    fn duplicated_range_matches_fig10_semantics() {
        // 1000 rows, duplication 5 -> 200 distinct values 1..=200.
        let s = ColumnStats::duplicated_range(1000, 5);
        assert_eq!(s.distinct_values, 200);
        assert_eq!(s.min, Some(1));
        assert_eq!(s.max, Some(200));
        assert_eq!(s.rows_per_value(1000), 5.0);
    }

    #[test]
    fn duplication_rounds_up_for_uneven_division() {
        let s = ColumnStats::duplicated_range(10, 3);
        assert_eq!(s.distinct_values, 4);
    }

    #[test]
    fn constant_column() {
        let s = ColumnStats::constant(0);
        assert_eq!(s.distinct_values, 1);
        assert_eq!(s.eq_selectivity(0.0), 1.0);
        assert_eq!(s.eq_selectivity(5.0), 0.0);
    }

    #[test]
    fn lt_selectivity_uniform() {
        let s = ColumnStats {
            distinct_values: 100,
            min: Some(1),
            max: Some(101),
            heavy_hitter_rows: None,
            histogram: None,
        };
        assert!((s.lt_selectivity(51.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.lt_selectivity(-5.0), 0.0);
        assert_eq!(s.lt_selectivity(1000.0), 1.0);
    }

    #[test]
    fn lt_selectivity_degenerate_range() {
        let s = ColumnStats::constant(7);
        assert_eq!(s.lt_selectivity(8.0), 1.0);
        assert_eq!(s.lt_selectivity(7.0), 0.0);
    }

    #[test]
    fn opaque_has_no_range() {
        let s = ColumnStats::opaque(10);
        assert_eq!(s.min, None);
        assert!((s.lt_selectivity(5.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplication factor")]
    fn zero_duplication_panics() {
        ColumnStats::duplicated_range(10, 0);
    }

    #[test]
    fn heavy_rows_defaults_to_uniform_average() {
        let s = ColumnStats::duplicated_range(1000, 5);
        assert_eq!(s.heavy_rows(1000), 5.0);
        let skewed = s.with_heavy_hitter(400);
        assert_eq!(skewed.heavy_rows(1000), 400.0);
    }

    #[test]
    fn histogram_selectivity_interpolates() {
        // 100 rows in [0,100): three buckets 10/80/10.
        let h = Histogram::new(0.0, 100.0, vec![10, 80, 10]);
        assert_eq!(h.selectivity_lt(-1.0), 0.0);
        assert_eq!(h.selectivity_lt(200.0), 1.0);
        // End of first bucket: 10% of rows.
        assert!((h.selectivity_lt(100.0 / 3.0) - 0.10).abs() < 1e-9);
        // Middle of second bucket: 10% + 40% = 50%.
        assert!((h.selectivity_lt(50.0) - 0.50).abs() < 1e-9);
    }

    #[test]
    fn histogram_overrides_uniform_lt_selectivity() {
        // All the mass in the top bucket: uniform would say 50% below the
        // midpoint; the histogram knows better.
        let s = ColumnStats {
            distinct_values: 100,
            min: Some(0),
            max: Some(100),
            heavy_hitter_rows: None,
            histogram: Some(Histogram::new(0.0, 100.0, vec![0, 0, 0, 100])),
        };
        assert!(s.lt_selectivity(50.0) < 1e-9);
        assert!((s.lt_selectivity(100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_empty() {
        Histogram::new(0.0, 1.0, vec![]);
    }

    mod histogram_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Selectivity is monotone in x and bounded by [0, 1].
            #[test]
            fn prop_histogram_monotone(
                counts in proptest::collection::vec(0u64..1000, 1..12),
                a in -50.0f64..150.0,
                b in -50.0f64..150.0,
            ) {
                prop_assume!(counts.iter().sum::<u64>() > 0);
                let h = Histogram::new(0.0, 100.0, counts);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let sa = h.selectivity_lt(lo);
                let sb = h.selectivity_lt(hi);
                prop_assert!((0.0..=1.0).contains(&sa));
                prop_assert!((0.0..=1.0).contains(&sb));
                prop_assert!(sa <= sb + 1e-12);
            }
        }
    }
}
