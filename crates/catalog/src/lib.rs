#![warn(missing_docs)]

//! Catalog: tables, statistics, and remote-system registration.
//!
//! §2 of the paper describes the metadata plumbing this crate provides:
//!
//! * every remote table "is registered inside Teradata as a foreign table —
//!   and thus Teradata knows its schema and location";
//! * "Teradata can collect basic statistics on remote tables, e.g., the
//!   number of rows, average row size, the number of distinct values in
//!   each column";
//! * "each remote system registers in the IntelliSphere architecture
//!   through a profile \[which\] describes the remote system setup, e.g., a
//!   cluster configuration, and the capabilities of the remote system".
//!
//! The costing crate stores its per-system costing state (neural models,
//! sub-op models, formulas) in its own `CostingProfile`, keyed by the
//! [`SystemId`]s registered here, mirroring the paper's "we will use the
//! profile extensively to store all metadata information related to the
//! cost estimation module".

pub mod column;
pub mod registry;
pub mod remote;
pub mod stats;
pub mod table;

pub use column::{ColumnDef, ColumnStats, ColumnType};
pub use registry::{Catalog, CatalogError};
pub use remote::{Capability, RemoteSystemProfile, SystemId, SystemKind};
pub use stats::TableStats;
pub use table::TableDef;
