//! Join training queries.
//!
//! Fig. 10: "The join condition between R and S is fixed to
//! `R.a1 = S.a1` (which are unique-value columns). The output cardinality
//! of the join is thus the cardinality of the smaller table. … an extra
//! condition is added in the form of `(R.a1 + S.z < threshold)`. Since
//! `S.z` is always zero, we can precisely control the selectivity of this
//! predicate … the output selectivity is controlled to be 100%, 50%, 25%,
//! or 1% of the smaller table cardinality."
//!
//! One deliberate refinement: the threshold predicate here references the
//! *smaller* table's `a1` (the paper's R/S roles are symmetric), so the
//! uniform-range cardinality model computes the output as exactly
//! `selectivity × |smaller|` — the cardinality Fig. 10 intends.

use crate::tables::TableSpec;
use serde::{Deserialize, Serialize};

/// Output selectivities from Fig. 10, as percentages.
pub const SELECTIVITY_PCTS: [u32; 4] = [100, 50, 25, 1];

/// How much of each row the query projects — this varies the Fig. 2
/// "projected size" training dimensions (levels 0/1/2: join keys only, a
/// handful of attributes, everything including the padding column).
pub const PROJECTION_LEVELS: u8 = 3;

/// One join training query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinQuery {
    /// The larger relation (probe side).
    pub big: TableSpec,
    /// The smaller relation (whose cardinality bounds the output).
    pub small: TableSpec,
    /// Output selectivity as a percentage of `|small|`.
    pub selectivity_pct: u32,
    /// Projection level (0..PROJECTION_LEVELS).
    pub projection: u8,
}

impl JoinQuery {
    /// The projected column list for one side at this projection level.
    fn proj_list(&self, alias: &str) -> String {
        match self.projection {
            0 => format!("{alias}.a1"),
            1 => format!("{alias}.a1, {alias}.a2, {alias}.a5, {alias}.a10"),
            _ => format!(
                "{alias}.a1, {alias}.a2, {alias}.a5, {alias}.a10, {alias}.a20,                  {alias}.a50, {alias}.a100, {alias}.dummy"
            ),
        }
    }

    /// Renders the query as SQL (plus the threshold predicate when
    /// selectivity < 100 %).
    pub fn sql(&self) -> String {
        let base = format!(
            "SELECT {}, {} FROM {} r JOIN {} s ON r.a1 = s.a1",
            self.proj_list("r"),
            self.proj_list("s"),
            self.big.name(),
            self.small.name()
        );
        if self.selectivity_pct >= 100 {
            base
        } else {
            format!("{base} WHERE s.a1 + r.z < {}", self.threshold())
        }
    }

    /// The literal threshold implementing the requested selectivity.
    pub fn threshold(&self) -> u64 {
        (self.small.rows as f64 * self.selectivity_pct as f64 / 100.0).round() as u64
    }

    /// Exact expected output rows on the Fig. 10 data.
    pub fn expected_output_rows(&self) -> u64 {
        self.small.rows * self.selectivity_pct as u64 / 100
    }
}

/// The join training grid over the given tables: within every record
/// size, all ordered (bigger, smaller) row-count pairs, times the four
/// selectivities. Over the full 120 tables this yields
/// `6 sizes × C(20,2) pairs × 4 = 4 560` queries — the paper's "training
/// set of 4,000 queries" scale.
pub fn join_training_queries(tables: &[TableSpec]) -> Vec<JoinQuery> {
    join_training_queries_with(tables, &SELECTIVITY_PCTS)
}

/// Grid with custom selectivities.
pub fn join_training_queries_with(tables: &[TableSpec], selectivities: &[u32]) -> Vec<JoinQuery> {
    let mut sizes: Vec<u64> = tables.iter().map(|t| t.record_bytes).collect();
    sizes.sort_unstable();
    sizes.dedup();

    let mut out = Vec::new();
    for &size in &sizes {
        let mut same_size: Vec<TableSpec> = tables
            .iter()
            .copied()
            .filter(|t| t.record_bytes == size)
            .collect();
        same_size.sort_by_key(|t| t.rows);
        same_size.dedup();
        for i in 0..same_size.len() {
            for j in (i + 1)..same_size.len() {
                for (si, &sel) in selectivities.iter().enumerate() {
                    // Cycle the projection level deterministically so all
                    // seven Fig. 2 dimensions vary across the grid.
                    let projection = ((i + j + si) % PROJECTION_LEVELS as usize) as u8;
                    out.push(JoinQuery {
                        big: same_size[j],
                        small: same_size[i],
                        selectivity_pct: sel,
                        projection,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::fig10_table_specs;

    #[test]
    fn full_grid_is_about_4000_queries() {
        let qs = join_training_queries(&fig10_table_specs());
        // 6 sizes × C(20,2)=190 pairs × 4 selectivities.
        assert_eq!(qs.len(), 6 * 190 * 4);
    }

    #[test]
    fn big_side_always_has_more_rows() {
        let qs = join_training_queries(&fig10_table_specs());
        assert!(qs.iter().all(|q| q.big.rows > q.small.rows));
    }

    #[test]
    fn pairs_share_record_size() {
        let qs = join_training_queries(&fig10_table_specs());
        assert!(qs
            .iter()
            .all(|q| q.big.record_bytes == q.small.record_bytes));
    }

    #[test]
    fn sql_includes_threshold_only_below_100pct() {
        let full = JoinQuery {
            big: TableSpec::new(1_000_000, 100),
            small: TableSpec::new(10_000, 100),
            selectivity_pct: 100,
            projection: 0,
        };
        assert!(!full.sql().contains("WHERE"));
        let quarter = JoinQuery {
            selectivity_pct: 25,
            ..full.clone()
        };
        assert!(quarter.sql().contains("WHERE s.a1 + r.z < 2500"));
    }

    #[test]
    fn expected_output_follows_selectivity() {
        let q = JoinQuery {
            big: TableSpec::new(1_000_000, 100),
            small: TableSpec::new(40_000, 100),
            selectivity_pct: 25,
            projection: 0,
        };
        assert_eq!(q.expected_output_rows(), 10_000);
        assert_eq!(q.threshold(), 10_000);
    }

    #[test]
    fn queries_parse() {
        let specs = [TableSpec::new(10_000, 40), TableSpec::new(20_000, 40)];
        for q in join_training_queries(&specs) {
            sqlkit::parse_query(&q.sql()).unwrap_or_else(|e| panic!("{}: {e}", q.sql()));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any JoinQuery over sane specs renders parseable SQL whose
            /// expected output respects the selectivity bound.
            #[test]
            fn prop_query_renders_and_bounds(
                big_rows in 1_000u64..100_000_000,
                small_rows in 1_000u64..100_000_000,
                size in prop::sample::select(vec![40u64, 70, 100, 250, 500, 1000]),
                sel in prop::sample::select(vec![100u32, 50, 25, 1]),
                projection in 0u8..PROJECTION_LEVELS,
            ) {
                prop_assume!(big_rows > small_rows);
                let q = JoinQuery {
                    big: TableSpec::new(big_rows, size),
                    small: TableSpec::new(small_rows, size),
                    selectivity_pct: sel,
                    projection,
                };
                sqlkit::parse_query(&q.sql()).expect("renders parseable SQL");
                prop_assert!(q.expected_output_rows() <= q.small.rows);
                prop_assert!(q.threshold() <= q.small.rows);
            }

            /// The grid never pairs a table with itself and always orders
            /// big > small.
            #[test]
            fn prop_grid_well_formed(
                seeds in proptest::collection::vec(1_000u64..10_000_000, 2..8),
            ) {
                let specs: Vec<TableSpec> =
                    seeds.iter().map(|&r| TableSpec::new(r, 100)).collect();
                for q in join_training_queries(&specs) {
                    prop_assert!(q.big.rows > q.small.rows);
                    prop_assert_ne!(q.big.name(), q.small.name());
                }
            }
        }
    }
}
