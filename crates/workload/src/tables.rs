//! The 120-table Fig. 10 dataset.

use catalog::{ColumnDef, ColumnStats, SystemId, TableDef, TableStats};
use remote_sim::ClusterEngine;
use serde::{Deserialize, Serialize};

/// Duplication factors of the `aᵢ` columns in the Fig. 10 schema.
pub const DUPLICATION_FACTORS: [u64; 7] = [1, 2, 5, 10, 20, 50, 100];

/// Record-size configurations (`y`) in bytes.
pub const RECORD_SIZES: [u64; 6] = [40, 70, 100, 250, 500, 1000];

/// Row-count multipliers (`k`).
pub const ROW_MULTIPLIERS: [u64; 5] = [1, 2, 4, 6, 8];

/// Row-count magnitudes (the `10^n` factors).
pub const ROW_MAGNITUDES: [u64; 4] = [10_000, 100_000, 1_000_000, 10_000_000];

/// One `Tx_y` table configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableSpec {
    /// Number of records (`x`).
    pub rows: u64,
    /// Record size in bytes (`y`).
    pub record_bytes: u64,
}

impl TableSpec {
    /// Creates a spec.
    pub fn new(rows: u64, record_bytes: u64) -> Self {
        TableSpec { rows, record_bytes }
    }

    /// The `Tx_y` name.
    pub fn name(&self) -> String {
        table_name(self.rows, self.record_bytes)
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.rows * self.record_bytes
    }
}

/// The Fig. 10 naming convention `Tx_y`.
pub fn table_name(rows: u64, record_bytes: u64) -> String {
    format!("T{rows}_{record_bytes}")
}

/// All 120 Fig. 10 table specs (20 row configurations × 6 record sizes).
pub fn fig10_table_specs() -> Vec<TableSpec> {
    let mut out = Vec::with_capacity(120);
    for &mag in &ROW_MAGNITUDES {
        for &k in &ROW_MULTIPLIERS {
            for &size in &RECORD_SIZES {
                out.push(TableSpec::new(k * mag, size));
            }
        }
    }
    out
}

/// Materialises a spec into a [`TableDef`] with the Fig. 10 schema and
/// exact statistics. `location` is rewritten on registration, so any
/// placeholder id works.
pub fn build_table(spec: &TableSpec) -> TableDef {
    let mut schema = Vec::with_capacity(9);
    let mut stats = TableStats::new(spec.rows, spec.record_bytes);
    for &dup in &DUPLICATION_FACTORS {
        let col = format!("a{dup}");
        schema.push(ColumnDef::int(&col));
        stats = stats.with_column(&col, ColumnStats::duplicated_range(spec.rows, dup));
    }
    schema.push(ColumnDef::int("z"));
    stats = stats.with_column("z", ColumnStats::constant(0));
    // 8 integer columns × 4 bytes = 32; `dummy` pads the rest (Fig. 10:
    // "used to reach a specific record size").
    let pad = spec.record_bytes.saturating_sub(32).max(1) as u32;
    schema.push(ColumnDef::chars("dummy", pad));
    TableDef::new(&spec.name(), schema, stats, SystemId::new("unassigned"))
}

/// Registers a set of specs on an engine. Returns how many were added.
pub fn register_tables(
    engine: &mut ClusterEngine,
    specs: &[TableSpec],
) -> Result<usize, remote_sim::EngineError> {
    for spec in specs {
        engine.register_table(build_table(spec))?;
    }
    Ok(specs.len())
}

/// The specs with at most `max_rows` rows — the paper's Fig. 14 trains on
/// tables of "up-to 8×10⁶ records".
pub fn specs_up_to(max_rows: u64) -> Vec<TableSpec> {
    fig10_table_specs()
        .into_iter()
        .filter(|s| s.rows <= max_rows)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_120_tables() {
        let specs = fig10_table_specs();
        assert_eq!(specs.len(), 120);
        // All distinct names.
        let names: std::collections::HashSet<String> = specs.iter().map(TableSpec::name).collect();
        assert_eq!(names.len(), 120);
    }

    #[test]
    fn row_configurations_match_fig10() {
        let specs = fig10_table_specs();
        let rows: std::collections::BTreeSet<u64> = specs.iter().map(|s| s.rows).collect();
        assert_eq!(rows.len(), 20);
        assert!(rows.contains(&10_000));
        assert!(rows.contains(&80_000_000));
        assert!(rows.contains(&6_000_000));
    }

    #[test]
    fn naming_convention() {
        assert_eq!(table_name(10_000, 40), "T10000_40");
        assert_eq!(TableSpec::new(2_000_000, 250).name(), "T2000000_250");
    }

    #[test]
    fn built_table_has_fig10_schema() {
        let t = build_table(&TableSpec::new(1_000, 250));
        let cols: Vec<&str> = t.schema.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            cols,
            vec!["a1", "a2", "a5", "a10", "a20", "a50", "a100", "z", "dummy"]
        );
        assert_eq!(t.rows(), 1_000);
        assert_eq!(t.row_bytes(), 250);
        // dummy pads to the record size.
        assert_eq!(t.schema_row_width(), 250);
    }

    #[test]
    fn duplication_stats_are_exact() {
        let t = build_table(&TableSpec::new(1_000_000, 100));
        assert_eq!(t.stats.column("a1").unwrap().distinct_values, 1_000_000);
        assert_eq!(t.stats.column("a20").unwrap().distinct_values, 50_000);
        assert_eq!(t.stats.column("z").unwrap().distinct_values, 1);
    }

    #[test]
    fn tiny_record_sizes_still_have_positive_padding() {
        let t = build_table(&TableSpec::new(10, 40));
        assert_eq!(t.schema_row_width(), 40);
    }

    #[test]
    fn specs_up_to_filters_by_rows() {
        let small = specs_up_to(8_000_000);
        assert!(small.iter().all(|s| s.rows <= 8_000_000));
        // 15 of the 20 row configs survive (everything at 10^4, 10^5, and
        // 10^6 magnitude; nothing at 10^7) × 6 sizes.
        assert_eq!(small.len(), 15 * 6);
    }

    #[test]
    fn registration_on_engine_works() {
        use remote_sim::RemoteSystem as _;
        let mut e = ClusterEngine::paper_hive("hive", 1).without_noise();
        let n = register_tables(&mut e, &specs_up_to(100_000)).unwrap();
        assert!(n > 0);
        assert_eq!(e.catalog().table_count(), n);
    }
}
