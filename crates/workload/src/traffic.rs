//! Seeded traffic generation for the serving front-end.
//!
//! The Fig. 10 workload modules describe *what* queries exist; this
//! module describes *when* they arrive and *who* sends them, so the
//! `exp_frontend` bench can drive the serving layer with realistic
//! concurrent traffic. Two standard arrival models are provided:
//!
//! * **Open loop** ([`OpenLoopModel`]): arrivals are a Poisson process
//!   at a configured offered rate — inter-arrival gaps are i.i.d.
//!   exponential draws, independent of how fast the server responds.
//!   This is the model that exposes overload: the generator keeps
//!   offering work even when the queue is full.
//! * **Closed loop** ([`ClosedLoopModel`]): a fixed population of
//!   simulated clients, each cycling request → response → think-time →
//!   request. Offered load self-limits to `clients / (latency + think)`,
//!   which is how real planner sessions behave. The per-client state is
//!   O(1) and derived from `(seed, client_id)`, so populations of
//!   millions of simulated users cost nothing until a client is
//!   actually stepped.
//!
//! Tenancy is modelled by a [`TenantMix`] — by default Zipf-skewed,
//! because production multi-tenant traffic is never uniform — and the
//! request bodies come from a [`RequestSampler`] with configurable
//! per-feature ranges. Everything is a pure function of the seed:
//! identical seeds reproduce identical schedules, which the
//! deterministic tests below pin down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// SplitMix64 finalizer: decorrelates derived seeds so that
/// `(seed, client 1)` and `(seed, client 2)` yield independent streams.
fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An exponential draw with the given mean, in microseconds.
///
/// The draw is clamped to at least 1µs so schedules always advance.
fn exp_draw_us<R: Rng + ?Sized>(rng: &mut R, mean_us: f64) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    // -mean * ln(1 - u); u < 1 strictly, so the log argument is > 0.
    let gap = -mean_us * (1.0 - u).ln();
    if gap.is_finite() && gap >= 1.0 {
        gap as u64
    } else {
        1
    }
}

/// One generated request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time in microseconds since schedule start.
    pub at_micros: u64,
    /// Issuing tenant.
    pub tenant: u64,
    /// Issuing simulated client (always 0 in the open-loop model,
    /// which does not track client identity).
    pub client: u64,
}

/// Relative traffic share per tenant.
///
/// Stores the cumulative weight distribution; sampling is a uniform
/// draw mapped through it by binary search.
#[derive(Debug, Clone)]
pub struct TenantMix {
    cumulative: Vec<f64>,
}

impl TenantMix {
    /// Zipf-distributed mix over `tenants` tenants with exponent
    /// `skew`: tenant `i` (0-based) gets weight `1 / (i + 1)^skew`.
    /// `skew = 0` degenerates to uniform. `tenants` is clamped to at
    /// least 1 and non-finite or negative skews are treated as 0.
    pub fn zipf(tenants: usize, skew: f64) -> TenantMix {
        let tenants = tenants.max(1);
        let skew = if skew.is_finite() && skew > 0.0 {
            skew
        } else {
            0.0
        };
        let mut cumulative = Vec::with_capacity(tenants);
        let mut total = 0.0;
        for i in 0..tenants {
            total += 1.0 / ((i + 1) as f64).powf(skew);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        TenantMix { cumulative }
    }

    /// A uniform mix over `tenants` tenants.
    pub fn uniform(tenants: usize) -> TenantMix {
        TenantMix::zipf(tenants, 0.0)
    }

    /// Number of tenants in the mix.
    pub fn tenants(&self) -> usize {
        self.cumulative.len()
    }

    /// Draw a tenant id in `0..tenants()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cumulative.partition_point(|&c| c < u) as u64
    }

    /// The traffic fraction assigned to `tenant`, or 0 out of range.
    pub fn share(&self, tenant: usize) -> f64 {
        match tenant {
            0 => self.cumulative.first().copied().unwrap_or(0.0),
            t if t < self.cumulative.len() => self.cumulative[t] - self.cumulative[t - 1],
            _ => 0.0,
        }
    }
}

/// Open-loop (Poisson) arrival model: a fixed offered rate regardless
/// of server behaviour.
#[derive(Debug, Clone)]
pub struct OpenLoopModel {
    /// RNG seed; identical seeds reproduce identical schedules.
    pub seed: u64,
    /// Offered load in requests per second. Clamped to at least 0.001.
    pub rate_per_sec: f64,
    /// Tenant mix sampled independently per arrival.
    pub mix: TenantMix,
}

impl OpenLoopModel {
    /// An infinite, lazily generated arrival schedule. Bound it with
    /// the virtual clock: `.take_while(|a| a.at_micros < horizon)`.
    pub fn arrivals(&self) -> OpenArrivals {
        let rate = if self.rate_per_sec.is_finite() && self.rate_per_sec > 1e-3 {
            self.rate_per_sec
        } else {
            1e-3
        };
        OpenArrivals {
            rng: StdRng::seed_from_u64(mix_seed(self.seed, 0x09E7)),
            mean_gap_us: 1e6 / rate,
            clock_us: 0,
            mix: self.mix.clone(),
        }
    }
}

/// Iterator over [`OpenLoopModel`] arrivals.
#[derive(Debug, Clone)]
pub struct OpenArrivals {
    rng: StdRng,
    mean_gap_us: f64,
    clock_us: u64,
    mix: TenantMix,
}

impl Iterator for OpenArrivals {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        self.clock_us = self
            .clock_us
            .saturating_add(exp_draw_us(&mut self.rng, self.mean_gap_us));
        Some(Arrival {
            at_micros: self.clock_us,
            tenant: self.mix.sample(&mut self.rng),
            client: 0,
        })
    }
}

/// Closed-loop arrival model: `clients` simulated users, each cycling
/// request → response → exponential think time → next request.
#[derive(Debug, Clone)]
pub struct ClosedLoopModel {
    /// RNG seed; identical seeds reproduce identical client streams.
    pub seed: u64,
    /// Simulated user population. Clamped to at least 1. Client state
    /// is derived lazily from `(seed, client_id)`, so multi-million
    /// populations are cheap until stepped.
    pub clients: u64,
    /// Mean think time between response and next request.
    pub mean_think_us: f64,
    /// Tenant mix; each client is pinned to one tenant for life.
    pub mix: TenantMix,
}

impl ClosedLoopModel {
    /// The deterministic per-client stream for `client`. The same
    /// `(seed, client)` pair always yields the same tenant and the
    /// same think-time sequence.
    pub fn client(&self, client: u64) -> ClientStream {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, client.wrapping_add(1)));
        let tenant = self.mix.sample(&mut rng);
        ClientStream {
            client,
            tenant,
            rng,
            mean_think_us: if self.mean_think_us.is_finite() && self.mean_think_us >= 0.0 {
                self.mean_think_us
            } else {
                0.0
            },
        }
    }

    /// Simulate the closed loop against a fixed virtual service time
    /// and return the resulting arrival schedule, time-ordered, up to
    /// `horizon_us`. This is the reference schedule the deterministic
    /// tests compare across seeds; the bench drives real clients
    /// against the live front-end instead.
    pub fn schedule(&self, service_time_us: u64, horizon_us: u64) -> Vec<Arrival> {
        let clients = self.clients.max(1);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut streams: Vec<ClientStream> = Vec::with_capacity(clients as usize);
        for c in 0..clients {
            let mut s = self.client(c);
            // First request: a think-time offset staggers the start so
            // the population does not arrive as one synchronized spike.
            let first = s.next_think_us();
            heap.push(Reverse((first, c)));
            streams.push(s);
        }
        let mut out = Vec::new();
        while let Some(Reverse((at, c))) = heap.pop() {
            if at >= horizon_us {
                break;
            }
            let stream = &mut streams[c as usize];
            out.push(Arrival {
                at_micros: at,
                tenant: stream.tenant,
                client: c,
            });
            let next = at
                .saturating_add(service_time_us)
                .saturating_add(stream.next_think_us());
            heap.push(Reverse((next, c)));
        }
        out
    }
}

/// One simulated user's deterministic request stream.
#[derive(Debug, Clone)]
pub struct ClientStream {
    client: u64,
    tenant: u64,
    rng: StdRng,
    mean_think_us: f64,
}

impl ClientStream {
    /// The client id this stream belongs to.
    pub fn client(&self) -> u64 {
        self.client
    }

    /// The tenant this client is pinned to.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// The next exponential think-time draw, in microseconds.
    pub fn next_think_us(&mut self) -> u64 {
        if self.mean_think_us == 0.0 {
            0
        } else {
            exp_draw_us(&mut self.rng, self.mean_think_us)
        }
    }
}

/// Configurable request-body sampler: draws a model slot and a feature
/// vector with each feature uniform in its configured range.
///
/// The slots are abstract indices so this crate stays independent of
/// the costing layer; the bench maps slot `i` to its i-th registered
/// `(system, operator)` pair.
#[derive(Debug, Clone)]
pub struct RequestSampler {
    rng: StdRng,
    slots: usize,
    feature_ranges: Vec<(f64, f64)>,
}

impl RequestSampler {
    /// A sampler over `slots` model slots (clamped to at least 1) with
    /// the given inclusive `(lo, hi)` range per feature. Inverted
    /// ranges are swapped; non-finite bounds collapse to 0.
    pub fn new(seed: u64, slots: usize, feature_ranges: &[(f64, f64)]) -> RequestSampler {
        let feature_ranges = feature_ranges
            .iter()
            .map(|&(lo, hi)| {
                let lo = if lo.is_finite() { lo } else { 0.0 };
                let hi = if hi.is_finite() { hi } else { 0.0 };
                if lo <= hi {
                    (lo, hi)
                } else {
                    (hi, lo)
                }
            })
            .collect();
        RequestSampler {
            rng: StdRng::seed_from_u64(mix_seed(seed, 0x5A3)),
            slots: slots.max(1),
            feature_ranges,
        }
    }

    /// Draw `(slot, features)` for the next request.
    pub fn sample(&mut self) -> (usize, Vec<f64>) {
        let slot = self.rng.gen_range(0..self.slots);
        let features = self
            .feature_ranges
            .iter()
            .map(|&(lo, hi)| self.rng.gen_range(lo..=hi))
            .collect();
        (slot, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_same_seed_same_schedule() {
        let mix = TenantMix::zipf(8, 1.0);
        let model = OpenLoopModel {
            seed: 42,
            rate_per_sec: 10_000.0,
            mix,
        };
        let a: Vec<Arrival> = model.arrivals().take(500).collect();
        let b: Vec<Arrival> = model.arrivals().take(500).collect();
        assert_eq!(a, b, "identical seeds reproduce identical schedules");

        let other = OpenLoopModel {
            seed: 43,
            ..model.clone()
        };
        let c: Vec<Arrival> = other.arrivals().take(500).collect();
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn open_loop_rate_is_approximately_honoured() {
        let model = OpenLoopModel {
            seed: 7,
            rate_per_sec: 50_000.0,
            mix: TenantMix::uniform(4),
        };
        let n = 20_000;
        let last = model.arrivals().nth(n - 1).expect("infinite iterator");
        let elapsed_s = last.at_micros as f64 / 1e6;
        let observed = n as f64 / elapsed_s;
        assert!(
            (observed - 50_000.0).abs() / 50_000.0 < 0.05,
            "observed rate {observed:.0} rps should be within 5% of 50k"
        );
    }

    #[test]
    fn open_loop_arrivals_are_strictly_increasing() {
        let model = OpenLoopModel {
            seed: 3,
            rate_per_sec: 1_000_000.0,
            mix: TenantMix::uniform(2),
        };
        let mut prev = 0;
        for a in model.arrivals().take(2_000) {
            assert!(a.at_micros > prev, "time always advances");
            prev = a.at_micros;
        }
    }

    #[test]
    fn closed_loop_same_seed_same_schedule() {
        let model = ClosedLoopModel {
            seed: 11,
            clients: 64,
            mean_think_us: 500.0,
            mix: TenantMix::zipf(8, 1.2),
        };
        let a = model.schedule(200, 100_000);
        let b = model.schedule(200, 100_000);
        assert_eq!(a, b, "identical seeds reproduce identical schedules");
        assert!(!a.is_empty());

        let other = ClosedLoopModel {
            seed: 12,
            ..model.clone()
        };
        assert_ne!(a, other.schedule(200, 100_000), "different seeds diverge");
    }

    #[test]
    fn closed_loop_clients_are_pinned_to_one_tenant() {
        let model = ClosedLoopModel {
            seed: 5,
            clients: 32,
            mean_think_us: 100.0,
            mix: TenantMix::zipf(4, 1.0),
        };
        let schedule = model.schedule(50, 50_000);
        let mut tenant_of = std::collections::HashMap::new();
        for a in &schedule {
            let entry = tenant_of.entry(a.client).or_insert(a.tenant);
            assert_eq!(*entry, a.tenant, "a client never switches tenant");
        }
        // The derived stream agrees with what the schedule observed.
        for (&client, &tenant) in &tenant_of {
            assert_eq!(model.client(client).tenant(), tenant);
        }
    }

    #[test]
    fn closed_loop_is_self_limiting() {
        // 4 clients, 1ms service + ~1ms think: the loop cannot offer
        // more than clients / cycle_time regardless of horizon.
        let model = ClosedLoopModel {
            seed: 9,
            clients: 4,
            mean_think_us: 1_000.0,
            mix: TenantMix::uniform(1),
        };
        let horizon = 1_000_000; // 1 virtual second
        let schedule = model.schedule(1_000, horizon);
        // Upper bound: each client completes at most one cycle per
        // service_time (think could draw ~0 occasionally, but the mean
        // keeps the total well under the open-loop equivalent).
        assert!(
            schedule.len() < 4 * 1_000 + 100,
            "{} arrivals exceeds the closed-loop ceiling",
            schedule.len()
        );
        assert!(
            schedule.len() > 500,
            "but the population does make progress"
        );
    }

    #[test]
    fn million_client_population_is_cheap_to_touch() {
        let model = ClosedLoopModel {
            seed: 21,
            clients: 2_000_000,
            mean_think_us: 1e6,
            mix: TenantMix::zipf(1000, 1.1),
        };
        // Deriving scattered clients is O(1) each — no per-population
        // allocation happens up front.
        let mut s0 = model.client(0);
        let mut s_mid = model.client(1_000_000);
        let mut s_last = model.client(1_999_999);
        assert!(s0.next_think_us() >= 1);
        assert!(s_mid.next_think_us() >= 1);
        assert!(s_last.next_think_us() >= 1);
        // Re-deriving reproduces the identical stream.
        let mut again = model.client(1_000_000);
        let fresh = model.client(1_000_000).tenant();
        assert_eq!(s_mid.tenant(), fresh);
        assert_eq!(model.client(0).next_think_us(), {
            let mut s = model.client(0);
            s.next_think_us()
        });
        let _ = again.next_think_us();
    }

    #[test]
    fn zipf_mix_is_skewed_and_normalised() {
        let mix = TenantMix::zipf(16, 1.0);
        assert_eq!(mix.tenants(), 16);
        let total: f64 = (0..16).map(|t| mix.share(t)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(
            mix.share(0) > 3.0 * mix.share(15),
            "tenant 0 dominates under zipf skew"
        );

        let mut rng = StdRng::seed_from_u64(77);
        let mut counts = [0u64; 16];
        for _ in 0..40_000 {
            counts[mix.sample(&mut rng) as usize] += 1;
        }
        let head = counts[0] as f64 / 40_000.0;
        assert!(
            (head - mix.share(0)).abs() < 0.02,
            "empirical head share {head:.3} tracks the analytic {:.3}",
            mix.share(0)
        );
    }

    #[test]
    fn uniform_mix_covers_all_tenants() {
        let mix = TenantMix::uniform(5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(mix.sample(&mut rng));
        }
        assert_eq!(seen.len(), 5);
        for t in 0..5 {
            assert!((mix.share(t) - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn request_sampler_is_deterministic_and_in_range() {
        let ranges = [(10.0, 1e7), (40.0, 1000.0)];
        let mut a = RequestSampler::new(13, 4, &ranges);
        let mut b = RequestSampler::new(13, 4, &ranges);
        for _ in 0..200 {
            let (slot_a, feat_a) = a.sample();
            let (slot_b, feat_b) = b.sample();
            assert_eq!(slot_a, slot_b);
            assert_eq!(feat_a, feat_b);
            assert!(slot_a < 4);
            assert_eq!(feat_a.len(), 2);
            assert!(feat_a[0] >= 10.0 && feat_a[0] <= 1e7);
            assert!(feat_a[1] >= 40.0 && feat_a[1] <= 1000.0);
        }
    }

    #[test]
    fn request_sampler_clamps_degenerate_ranges() {
        let mut s = RequestSampler::new(1, 0, &[(5.0, 2.0), (f64::NAN, 3.0)]);
        let (slot, feats) = s.sample();
        assert_eq!(slot, 0, "zero slots clamps to one");
        assert!(feats[0] >= 2.0 && feats[0] <= 5.0, "inverted range swapped");
        assert!(
            feats[1] >= 0.0 && feats[1] <= 3.0,
            "NaN bound collapsed to 0"
        );
    }

    #[test]
    fn latency_quantiles_from_sketch_match_exact_sort() {
        // Satellite check: the streaming estimator the bench uses
        // agrees with an exact sort on a generated latency population.
        let model = OpenLoopModel {
            seed: 99,
            rate_per_sec: 100_000.0,
            mix: TenantMix::uniform(1),
        };
        let mut sketch = mathkit::QuantileSketch::for_latency_us();
        let mut gaps = Vec::new();
        let mut prev = 0;
        for a in model.arrivals().take(30_000) {
            let gap = (a.at_micros - prev) as f64;
            prev = a.at_micros;
            sketch.observe(gap);
            gaps.push(gap);
        }
        let exact = mathkit::exact_quantiles(&gaps, &[0.5, 0.99]);
        for (q, e) in [0.5, 0.99].iter().zip(exact) {
            let s = sketch.quantile(*q);
            assert!(
                (s - e).abs() / e.max(1.0) < 0.05,
                "sketch p{q} = {s:.2} vs exact {e:.2}"
            );
        }
    }
}
