//! Seeded multi-statement workload DAGs for the federation layers.
//!
//! The Fig. 10 grids ([`crate::aggq`], [`crate::joinq`]) are flat lists
//! of independent statements; the workload-level optimizer needs the
//! opposite — batches where statements *share* things: the same base
//! tables (shared scans), the same computation repeated under different
//! labels (materialized-intermediate reuse), and statements consuming
//! the published outputs of earlier statements (placement edges).
//!
//! [`dag_workload`] generates exactly that, as a pure function of a
//! [`DagConfig`]:
//!
//! * The generator first builds a pool of **templates** — distinct
//!   query shapes over the base-table pool, some of which consume the
//!   output of an earlier template (always an earlier *statement*, so
//!   the emitted list is topologically ordered by construction).
//! * Each statement then instantiates a template. The first
//!   `distinct` statements introduce the templates in order; the rest
//!   draw a template from a Zipf distribution over the pool, so a few
//!   popular shapes dominate — the same skew shape production
//!   dashboards show, and the redundancy the reuse rule feeds on.
//! * `reuse` controls the duplication pressure: `distinct =
//!   max(1, queries · (1 − reuse))`, so `reuse = 0` yields all-unique
//!   statements (nothing to merge) and `reuse = 0.75` makes three
//!   quarters of the workload repeats of earlier shapes.
//!
//! Every statement publishes its result as the intermediate `out_<i>`,
//! where `i` is the statement index; consumer templates reference those
//! names as plain tables (the federation's logical layer resolves them
//! against published outputs before the catalog). Intermediates expose
//! the `(a1, a5)` columns the federation registers for synthetic
//! results, so consumer SQL only touches those.

use crate::tables::{specs_up_to, TableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer (same derivation idiom as [`crate::traffic`]):
/// decorrelates per-template and per-statement streams from one seed.
fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration for one generated workload DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct DagConfig {
    /// Number of statements to emit (≥ 1).
    pub queries: usize,
    /// Fraction of statements that repeat an earlier template, in
    /// `[0, 1)`. Higher values mean fewer distinct shapes and more
    /// merge opportunities.
    pub reuse: f64,
    /// Probability that a (non-first) template consumes the output of
    /// an earlier statement instead of only base tables, in `[0, 1]`.
    pub intermediate_rate: f64,
    /// Base tables drawn from the Fig. 10 grid (≥ 2).
    pub table_pool: usize,
    /// Zipf exponent for template popularity; `0` is uniform.
    pub zipf_skew: f64,
    /// Master seed — identical configs generate identical DAGs.
    pub seed: u64,
}

impl Default for DagConfig {
    fn default() -> Self {
        DagConfig {
            queries: 16,
            reuse: 0.5,
            intermediate_rate: 0.4,
            table_pool: 6,
            zipf_skew: 1.1,
            seed: 7,
        }
    }
}

/// One generated statement: a label, the SQL text, and the name the
/// result is published under for later statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagStatement {
    /// Human-readable label, `q<i>_t<template>`.
    pub label: String,
    /// The statement text (parseable by the workspace SQL front-end).
    pub sql: String,
    /// The published intermediate name, `out_<i>`. Every statement
    /// publishes; unconsumed outputs are simply never read.
    pub output: Option<String>,
}

/// The base-table pool a config draws from: the smallest `table_pool`
/// specs of the Fig. 10 grid (register these before planning the DAG).
pub fn dag_base_tables(config: &DagConfig) -> Vec<TableSpec> {
    let pool = config.table_pool.max(2);
    let mut specs = specs_up_to(u64::MAX);
    specs.truncate(pool);
    specs
}

/// One query template: concrete SQL parameterized only by which earlier
/// statement (if any) it consumes.
#[derive(Debug, Clone)]
enum Template {
    /// Aggregation over a base table.
    BaseAgg { table: TableSpec, shrink: u64 },
    /// Self-join of two base tables on `a1`.
    BaseJoin { big: TableSpec, small: TableSpec },
    /// Aggregation over the output of statement `producer`.
    MidAgg { producer: usize },
    /// Join of statement `producer`'s output with a base table.
    MidJoin { producer: usize, base: TableSpec },
}

impl Template {
    fn sql(&self) -> String {
        match self {
            Template::BaseAgg { table, shrink } => format!(
                "SELECT a{shrink}, SUM(z) AS s1 FROM {} GROUP BY a{shrink}",
                table.name()
            ),
            Template::BaseJoin { big, small } => format!(
                "SELECT r.a1, s.a1 FROM {} r JOIN {} s ON r.a1 = s.a1",
                big.name(),
                small.name()
            ),
            // Intermediates expose only (a1, a5): the synthetic schema
            // the federation registers for published results.
            Template::MidAgg { producer } => {
                format!("SELECT a5, SUM(a1) AS s1 FROM out_{producer} GROUP BY a5")
            }
            Template::MidJoin { producer, base } => format!(
                "SELECT r.a1, s.a1 FROM out_{producer} r JOIN {} s ON r.a1 = s.a1",
                base.name()
            ),
        }
    }
}

/// Zipf draw over `n` items with exponent `skew`: item `i` has weight
/// `1 / (i + 1)^skew`. Linear scan over the cumulative mass — template
/// pools are small, and determinism matters more than speed here.
fn zipf_draw(rng: &mut StdRng, n: usize, skew: f64) -> usize {
    if n <= 1 {
        return 0;
    }
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..1.0) * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Shrink factors available on every Fig. 10 base table.
const SHRINKS: [u64; 5] = [1, 2, 5, 10, 20];

/// Generates the workload: `config.queries` statements, topologically
/// ordered (every `out_<j>` reference points at an earlier statement).
pub fn dag_workload(config: &DagConfig) -> Vec<DagStatement> {
    let queries = config.queries.max(1);
    let reuse = config.reuse.clamp(0.0, 0.99);
    let tables = dag_base_tables(config);
    let distinct = ((queries as f64 * (1.0 - reuse)).round() as usize).clamp(1, queries);

    // Build the template pool. Template `k` is introduced by statement
    // `k` (the first `distinct` statements instantiate templates in
    // order), so a template consuming `out_<j>` with `j < k` always
    // references an earlier statement, whichever statement uses it.
    let mut templates: Vec<Template> = Vec::with_capacity(distinct);
    for k in 0..distinct {
        let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, k as u64));
        let consumes = k > 0 && rng.gen_range(0.0..1.0) < config.intermediate_rate;
        let template = if consumes {
            let producer = rng.gen_range(0..k);
            if rng.gen_range(0.0..1.0) < 0.5 {
                Template::MidAgg { producer }
            } else {
                let base = tables[rng.gen_range(0..tables.len())];
                Template::MidJoin { producer, base }
            }
        } else if rng.gen_range(0.0..1.0) < 0.5 {
            Template::BaseAgg {
                table: tables[rng.gen_range(0..tables.len())],
                shrink: SHRINKS[rng.gen_range(0..SHRINKS.len())],
            }
        } else {
            let a = rng.gen_range(0..tables.len());
            let b = rng.gen_range(0..tables.len());
            Template::BaseJoin {
                big: tables[a.max(b)],
                small: tables[a.min(b)],
            }
        };
        templates.push(template);
    }

    // Emit the statements: templates in order first, then Zipf draws.
    let mut out = Vec::with_capacity(queries);
    for i in 0..queries {
        let k = if i < distinct {
            i
        } else {
            let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, 0x5747 + i as u64));
            zipf_draw(&mut rng, distinct, config.zipf_skew)
        };
        out.push(DagStatement {
            label: format!("q{i}_t{k}"),
            sql: templates[k].sql(),
            output: Some(format!("out_{i}")),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn referenced_outputs(sql: &str) -> Vec<usize> {
        sql.split_whitespace()
            .filter_map(|tok| tok.strip_prefix("out_"))
            .filter_map(|rest| rest.parse().ok())
            .collect()
    }

    #[test]
    fn identical_configs_generate_identical_dags() {
        let cfg = DagConfig::default();
        assert_eq!(dag_workload(&cfg), dag_workload(&cfg));
        let other = DagConfig {
            seed: 8,
            ..cfg.clone()
        };
        assert_ne!(dag_workload(&cfg), dag_workload(&other));
    }

    #[test]
    fn outputs_are_unique_and_references_point_backwards() {
        let cfg = DagConfig {
            queries: 40,
            reuse: 0.5,
            intermediate_rate: 0.9,
            ..DagConfig::default()
        };
        let dag = dag_workload(&cfg);
        assert_eq!(dag.len(), 40);
        let outputs: BTreeSet<_> = dag.iter().filter_map(|s| s.output.clone()).collect();
        assert_eq!(outputs.len(), 40, "every statement publishes uniquely");
        for (i, stmt) in dag.iter().enumerate() {
            for j in referenced_outputs(&stmt.sql) {
                assert!(j < i, "statement {i} references out_{j} (not earlier)");
            }
        }
        // With a high intermediate rate, edges must actually exist.
        let edges: usize = dag.iter().map(|s| referenced_outputs(&s.sql).len()).sum();
        assert!(edges > 0, "expected at least one intermediate edge");
    }

    #[test]
    fn reuse_controls_the_number_of_distinct_shapes() {
        let unique = DagConfig {
            queries: 24,
            reuse: 0.0,
            ..DagConfig::default()
        };
        let heavy = DagConfig {
            queries: 24,
            reuse: 0.75,
            ..DagConfig::default()
        };
        let count_shapes = |cfg: &DagConfig| {
            dag_workload(cfg)
                .iter()
                .map(|s| s.sql.clone())
                .collect::<BTreeSet<_>>()
                .len()
        };
        assert_eq!(count_shapes(&unique), 24 - duplicate_collisions(&unique));
        assert!(count_shapes(&heavy) <= 24 / 4 + 1);
        assert!(count_shapes(&unique) > count_shapes(&heavy));
    }

    /// Distinct templates can still collide on identical SQL by chance
    /// (same table, same shrink); count those so the uniqueness
    /// assertion is exact rather than probabilistic.
    fn duplicate_collisions(cfg: &DagConfig) -> usize {
        let dag = dag_workload(cfg);
        let shapes: BTreeSet<_> = dag.iter().map(|s| s.sql.clone()).collect();
        dag.len() - shapes.len()
    }

    #[test]
    fn zipf_skew_concentrates_template_popularity() {
        let cfg = DagConfig {
            queries: 200,
            reuse: 0.95,
            zipf_skew: 1.5,
            intermediate_rate: 0.0,
            ..DagConfig::default()
        };
        let dag = dag_workload(&cfg);
        let distinct = 10; // 200 · (1 − 0.95)
        let mut counts = vec![0usize; distinct];
        for stmt in &dag {
            let t: usize = stmt
                .label
                .rsplit_once("_t")
                .and_then(|(_, t)| t.parse().ok())
                .expect("label carries the template id");
            counts[t] += 1;
        }
        assert!(
            counts[0] > counts[distinct - 1],
            "head template should dominate the tail: {counts:?}"
        );
    }

    #[test]
    fn base_tables_come_from_the_fig10_pool() {
        let cfg = DagConfig::default();
        let tables = dag_base_tables(&cfg);
        assert_eq!(tables.len(), 6);
        // Smallest-first: the pool is the cheap end of the grid.
        assert!(tables.windows(2).all(|w| w[0].rows <= w[1].rows));
    }
}
