//! Aggregation training queries.
//!
//! Fig. 10: "The aggregation factor (shrinking factor in the number of
//! records) is achieved by aggregating over a specific column aᵢ to get a
//! factor of i. The number of aggregate functions computed varies from 1
//! to 5. All are of type SUM()."

use crate::tables::TableSpec;
use serde::{Deserialize, Serialize};

/// Shrink factors used for the training grid (the `aᵢ` columns grouped
/// on). Six factors × 5 aggregate counts × 120 tables ≈ the paper's
/// "approximately 3,700 aggregation queries".
pub const DEFAULT_SHRINK_FACTORS: [u64; 6] = [2, 5, 10, 20, 50, 100];

/// Columns whose SUM is computed, in the order they are added.
const SUM_COLUMNS: [&str; 5] = ["a1", "a2", "a10", "a20", "a50"];

/// One aggregation training query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggQuery {
    /// The target table.
    pub table: TableSpec,
    /// Shrink factor `i` (grouping on `aᵢ`).
    pub shrink_factor: u64,
    /// Number of SUM() aggregates (1–5).
    pub n_aggs: u32,
}

impl AggQuery {
    /// Renders the query as SQL.
    pub fn sql(&self) -> String {
        let mut select = format!("a{}", self.shrink_factor);
        for (i, col) in SUM_COLUMNS.iter().take(self.n_aggs as usize).enumerate() {
            select.push_str(&format!(", SUM({col}) AS s{}", i + 1));
        }
        format!(
            "SELECT {select} FROM {} GROUP BY a{}",
            self.table.name(),
            self.shrink_factor
        )
    }

    /// Exact number of output groups for the Fig. 10 data.
    pub fn expected_groups(&self) -> u64 {
        self.table.rows.div_ceil(self.shrink_factor).max(1)
    }
}

/// The aggregation training grid over the given tables: every table ×
/// every shrink factor × 1–5 aggregates.
pub fn agg_training_queries(tables: &[TableSpec]) -> Vec<AggQuery> {
    agg_training_queries_with(tables, &DEFAULT_SHRINK_FACTORS, 5)
}

/// Grid with custom shrink factors and a maximum aggregate count.
pub fn agg_training_queries_with(
    tables: &[TableSpec],
    factors: &[u64],
    max_aggs: u32,
) -> Vec<AggQuery> {
    assert!(
        (1..=5).contains(&max_aggs),
        "1-5 SUM() aggregates supported"
    );
    let mut out = Vec::with_capacity(tables.len() * factors.len() * max_aggs as usize);
    for &table in tables {
        for &f in factors {
            for n_aggs in 1..=max_aggs {
                out.push(AggQuery {
                    table,
                    shrink_factor: f,
                    n_aggs,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::fig10_table_specs;

    #[test]
    fn full_grid_is_about_3700_queries() {
        let qs = agg_training_queries(&fig10_table_specs());
        // 120 × 6 × 5 = 3600 ≈ the paper's ~3,700.
        assert_eq!(qs.len(), 3_600);
    }

    #[test]
    fn sql_shape_matches_fig10() {
        let q = AggQuery {
            table: TableSpec::new(1_000_000, 250),
            shrink_factor: 5,
            n_aggs: 2,
        };
        assert_eq!(
            q.sql(),
            "SELECT a5, SUM(a1) AS s1, SUM(a2) AS s2 FROM T1000000_250 GROUP BY a5"
        );
    }

    #[test]
    fn queries_parse() {
        let qs = agg_training_queries(&[TableSpec::new(10_000, 40)]);
        for q in &qs {
            sqlkit::parse_query(&q.sql()).unwrap_or_else(|e| panic!("{}: {e}", q.sql()));
        }
    }

    #[test]
    fn expected_groups_follow_shrink_factor() {
        let q = AggQuery {
            table: TableSpec::new(1_000_000, 40),
            shrink_factor: 20,
            n_aggs: 1,
        };
        assert_eq!(q.expected_groups(), 50_000);
    }

    #[test]
    fn custom_grid_bounds_checked() {
        let qs = agg_training_queries_with(&[TableSpec::new(100, 40)], &[2, 5], 3);
        assert_eq!(qs.len(), 6);
        assert!(qs.iter().all(|q| q.n_aggs <= 3));
    }

    #[test]
    #[should_panic(expected = "1-5")]
    fn max_aggs_capped_at_five() {
        agg_training_queries_with(&[TableSpec::new(100, 40)], &[2], 6);
    }
}
