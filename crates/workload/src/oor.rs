//! Out-of-range query sets (Fig. 14 and Table 1).
//!
//! §7: "Both the sub-op and logical-op approaches are trained using
//! datasets of up-to 8×10⁶ records with different record sizes. … The
//! figure shows the estimation accuracy for a set of new queries, where
//! the number of input records is 20×10⁶, while the record sizes are
//! within the trained ranges. We generated 45 queries with different
//! configurations, e.g., in some configurations only one of the join
//! tables is out-of-range and in other configurations both tables are
//! out-of-range."

use crate::{joinq::JoinQuery, tables::TableSpec};

/// The out-of-range row count (20 million).
pub const OOR_ROWS: u64 = 20_000_000;

/// In-range partner row counts for the "one side out of range" cases.
const IN_RANGE_PARTNERS: [u64; 3] = [1_000_000, 4_000_000, 8_000_000];

/// Record sizes used (all within the trained ranges).
const OOR_SIZES: [u64; 5] = [40, 100, 250, 500, 1000];

/// Selectivities cycled across the suite.
const OOR_SELECTIVITIES: [u32; 3] = [100, 50, 25];

/// The tables the OOR suite needs in addition to the training tables.
pub fn oor_table_specs() -> Vec<TableSpec> {
    OOR_SIZES
        .iter()
        .map(|&s| TableSpec::new(OOR_ROWS, s))
        .collect()
}

/// The 45-query out-of-range join suite: for each of the five record
/// sizes, three "one side out of range" queries (20 M joined with an
/// in-range table) and — sharing the same size — cycling selectivities;
/// plus "both sides out of range" self-pairings across sizes.
pub fn oor_join_queries() -> Vec<JoinQuery> {
    let mut out = Vec::new();
    // One side out of range: 5 sizes × 3 partners = 15 queries.
    for (qi, &size) in OOR_SIZES.iter().enumerate() {
        for (pi, &partner) in IN_RANGE_PARTNERS.iter().enumerate() {
            out.push(JoinQuery {
                big: TableSpec::new(OOR_ROWS, size),
                small: TableSpec::new(partner, size),
                selectivity_pct: OOR_SELECTIVITIES[(qi + pi) % OOR_SELECTIVITIES.len()],
                projection: 0,
            });
        }
    }
    // One side out of range, different selectivity mix: 5 × 3 = 15 more.
    for (qi, &size) in OOR_SIZES.iter().enumerate() {
        for (pi, &partner) in IN_RANGE_PARTNERS.iter().enumerate() {
            out.push(JoinQuery {
                big: TableSpec::new(OOR_ROWS, size),
                small: TableSpec::new(partner / 2, size),
                selectivity_pct: OOR_SELECTIVITIES[(qi + pi + 1) % OOR_SELECTIVITIES.len()],
                projection: 0,
            });
        }
    }
    // Both sides out of range: 5 sizes × 3 selectivities = 15.
    for &size in &OOR_SIZES {
        for &sel in &OOR_SELECTIVITIES {
            out.push(JoinQuery {
                big: TableSpec::new(OOR_ROWS, size),
                // A second 20 M table of the same size; the generator gives
                // it a distinct name suffix via a slightly different row
                // count so both can be registered.
                small: TableSpec::new(OOR_ROWS - 1, size),
                selectivity_pct: sel,
                projection: 0,
            });
        }
    }
    out
}

/// Every table spec referenced by the OOR suite (deduplicated).
pub fn oor_all_table_specs() -> Vec<TableSpec> {
    let mut specs: Vec<TableSpec> = oor_join_queries()
        .iter()
        .flat_map(|q| [q.big, q.small])
        .collect();
    specs.sort_by_key(|s| (s.rows, s.record_bytes));
    specs.dedup();
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_45_queries() {
        assert_eq!(oor_join_queries().len(), 45);
    }

    #[test]
    fn every_query_has_an_out_of_range_side() {
        for q in oor_join_queries() {
            assert!(
                q.big.rows >= OOR_ROWS - 1,
                "big side must be OOR: {:?}",
                q.big
            );
        }
    }

    #[test]
    fn mix_of_one_and_two_sided_oor() {
        let qs = oor_join_queries();
        let both = qs.iter().filter(|q| q.small.rows >= OOR_ROWS - 1).count();
        let one = qs.len() - both;
        assert_eq!(both, 15);
        assert_eq!(one, 30);
    }

    #[test]
    fn record_sizes_stay_in_trained_range() {
        for q in oor_join_queries() {
            assert!(crate::tables::RECORD_SIZES.contains(&q.big.record_bytes));
        }
    }

    #[test]
    fn all_specs_dedupe_cleanly() {
        let specs = oor_all_table_specs();
        let mut unique = specs.clone();
        unique.dedup();
        assert_eq!(specs.len(), unique.len());
        assert!(specs.iter().any(|s| s.rows == OOR_ROWS));
    }
}
