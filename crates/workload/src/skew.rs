//! Skewed-workload generation.
//!
//! §4 lists Hive's Skew Join among the algorithms an expert must model,
//! but the Fig. 10 dataset joins on the unique `a1` column and can never
//! trigger it. This module generates tables whose join key carries a
//! *heavy hitter* — one value holding a configurable fraction of all
//! rows — so the skew path (engine-side skew detection, the skew-join
//! cost formula, and the skew applicability rules) can be exercised and
//! evaluated.

use crate::tables::{build_table, TableSpec};
use catalog::TableDef;
use serde::{Deserialize, Serialize};

/// A Fig. 10-style table whose `a1` column is skewed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewedTableSpec {
    /// The base table shape.
    pub base: TableSpec,
    /// Fraction of all rows carried by the heaviest `a1` value
    /// (0 < fraction < 1).
    pub heavy_fraction: f64,
}

impl SkewedTableSpec {
    /// Creates a skewed spec.
    pub fn new(rows: u64, record_bytes: u64, heavy_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&heavy_fraction),
            "heavy fraction must be in (0, 1)"
        );
        SkewedTableSpec {
            base: TableSpec::new(rows, record_bytes),
            heavy_fraction,
        }
    }

    /// The generated table name: `K{rows}_{size}_{pct}` (K for skewed so
    /// the name never collides with the uniform `Tx_y` tables).
    pub fn name(&self) -> String {
        format!(
            "K{}_{}_{}",
            self.base.rows,
            self.base.record_bytes,
            (self.heavy_fraction * 100.0).round() as u64
        )
    }

    /// Rows carried by the heavy `a1` value.
    pub fn heavy_rows(&self) -> u64 {
        (self.base.rows as f64 * self.heavy_fraction).round() as u64
    }
}

/// Materialises a skewed table: the Fig. 10 schema, but `a1` holds one
/// value with `heavy_fraction` of the rows and unique values elsewhere.
pub fn build_skewed_table(spec: &SkewedTableSpec) -> TableDef {
    let mut def = build_table(&spec.base);
    def.name = spec.name();
    let heavy = spec.heavy_rows().max(1);
    let distinct = (spec.base.rows - heavy + 1).max(1);
    if let Some(a1) = def.stats.columns.get_mut("a1") {
        a1.distinct_values = distinct;
        a1.max = Some(distinct as i64);
        a1.heavy_hitter_rows = Some(heavy);
    }
    def
}

/// Builds the join-query SQL between a skewed probe table and a uniform
/// build table (joined on `a1`, projecting the keys).
pub fn skew_join_sql(skewed: &SkewedTableSpec, uniform: &TableSpec) -> String {
    format!(
        "SELECT r.a1, s.a1 FROM {} r JOIN {} s ON r.a1 = s.a1",
        skewed.name(),
        uniform.name()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_table_carries_heavy_hitter_stats() {
        let spec = SkewedTableSpec::new(1_000_000, 250, 0.4);
        let t = build_skewed_table(&spec);
        assert_eq!(t.name, "K1000000_250_40");
        let a1 = t.stats.column("a1").unwrap();
        assert_eq!(a1.heavy_hitter_rows, Some(400_000));
        // 400k rows share one value; the remaining 600k are unique.
        assert_eq!(a1.distinct_values, 600_001);
    }

    #[test]
    fn other_columns_keep_fig10_semantics() {
        let spec = SkewedTableSpec::new(100_000, 100, 0.3);
        let t = build_skewed_table(&spec);
        assert_eq!(t.stats.column("a5").unwrap().distinct_values, 20_000);
        assert_eq!(t.stats.column("z").unwrap().distinct_values, 1);
        assert_eq!(t.row_bytes(), 100);
    }

    #[test]
    fn join_sql_parses() {
        let spec = SkewedTableSpec::new(1_000_000, 250, 0.4);
        let sql = skew_join_sql(&spec, &TableSpec::new(500_000, 250));
        sqlkit::parse_query(&sql).unwrap();
    }

    #[test]
    #[should_panic(expected = "heavy fraction")]
    fn fraction_must_be_sane() {
        SkewedTableSpec::new(100, 40, 1.5);
    }
}
