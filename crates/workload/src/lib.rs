#![warn(missing_docs)]

//! The Fig. 10 synthetic workload.
//!
//! §7 of the paper evaluates everything on a generated dataset of 120
//! tables named `Tx_y`, where
//!
//! * `x` (number of records) ∈ `{k·10⁴, k·10⁵, k·10⁶, k·10⁷}` for
//!   `k ∈ {1, 2, 4, 6, 8}` — 20 configurations, and
//! * `y` (record size) ∈ `{40, 70, 100, 250, 500, 1000}` bytes — 6
//!   configurations.
//!
//! Every table has the schema `(a1, a2, a5, a10, a20, a50, a100, z,
//! dummy)` where column `aᵢ` duplicates each value `i` times, `z` is all
//! zeros, and `dummy` pads the record to the target size. The duplication
//! design lets the aggregation queries hit precise shrink factors and the
//! join queries hit precise output cardinalities via the
//! `R.a1 + S.z < threshold` predicate.
//!
//! This crate turns that description into code: table specs and
//! [`catalog::TableDef`]s ([`tables`]), aggregation and join training
//! grids ([`aggq`], [`joinq`]), the sub-operator probe suite of Fig. 5
//! ([`probes`]), and the out-of-range query sets behind Fig. 14 and
//! Table 1 ([`oor`]).
//!
//! Beyond the paper's training/evaluation grids, [`traffic`] adds
//! seeded open- and closed-loop arrival models and a skewed tenant
//! mix, so the serving-layer benches can drive the estimator with
//! realistic concurrent traffic from large simulated populations.

pub mod aggq;
pub mod dag;
pub mod joinq;
pub mod oor;
pub mod probes;
pub mod skew;
pub mod tables;
pub mod traffic;

pub use aggq::{agg_training_queries, agg_training_queries_with, AggQuery};
pub use dag::{dag_base_tables, dag_workload, DagConfig, DagStatement};
pub use joinq::{join_training_queries, join_training_queries_with, JoinQuery};
pub use oor::{oor_all_table_specs, oor_join_queries, oor_table_specs, OOR_ROWS};
pub use probes::{probe_suite, probe_suite_for};
pub use skew::{build_skewed_table, skew_join_sql, SkewedTableSpec};
pub use tables::{
    build_table, fig10_table_specs, register_tables, specs_up_to, table_name, TableSpec,
};
pub use traffic::{
    Arrival, ClientStream, ClosedLoopModel, OpenLoopModel, RequestSampler, TenantMix,
};
