//! The Fig. 5 probe-query suite.
//!
//! §7: "For the sub-operator costing approach, the training of each sub-op
//! needs only few number of queries, e.g., in the range of few 10s of
//! queries." The default suite runs each probe kind over
//! 1/2/4/8 million records (the x-axis of Figs. 7a and 13b) at five
//! record sizes (the x-axis of the fitted models in Figs. 7b and 13c–f).

use remote_sim::probe::{ProbeKind, ProbeSpec};

/// Row counts used per record size (Fig. 7a: 1, 2, 4, 8 million).
pub const PROBE_ROW_COUNTS: [u64; 4] = [1_000_000, 2_000_000, 4_000_000, 8_000_000];

/// Record sizes swept by the probe suite.
pub const PROBE_RECORD_SIZES: [u64; 5] = [40, 100, 250, 500, 1000];

/// The probe suite for one sub-op kind: every (rows × record size) combo.
/// For `ReadDfsHashBuild` the suite is doubled — one run per memory
/// regime, as the paper does ("We experimented with both cases and
/// constructed a model for each case").
pub fn probe_suite_for(kind: ProbeKind) -> Vec<ProbeSpec> {
    let mut out = Vec::new();
    for &size in &PROBE_RECORD_SIZES {
        for &rows in &PROBE_ROW_COUNTS {
            out.push(ProbeSpec::new(kind, rows, size));
            if kind == ProbeKind::ReadDfsHashBuild {
                out.push(ProbeSpec::new(kind, rows, size).spilling());
            }
        }
    }
    out
}

/// The complete suite across all probe kinds.
pub fn probe_suite() -> Vec<ProbeSpec> {
    ProbeKind::ALL
        .iter()
        .flat_map(|&k| probe_suite_for(k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kind_suite_is_a_few_tens_of_queries() {
        // The paper's Fig. 13a x-axis runs 6..32 queries per sub-op.
        let n = probe_suite_for(ProbeKind::ReadDfs).len();
        assert_eq!(n, 20);
        assert!((6..=40).contains(&n));
    }

    #[test]
    fn hash_build_covers_both_regimes() {
        let suite = probe_suite_for(ProbeKind::ReadDfsHashBuild);
        assert_eq!(suite.len(), 40);
        let spilling = suite.iter().filter(|p| p.force_spill).count();
        assert_eq!(spilling, 20);
    }

    #[test]
    fn full_suite_covers_every_kind() {
        let suite = probe_suite();
        for kind in ProbeKind::ALL {
            assert!(suite.iter().any(|p| p.kind == kind), "missing {kind}");
        }
    }
}
