//! Quickstart: cost a remote join in under a minute.
//!
//! 1. Stand up a (simulated) Hive remote system with two tables.
//! 2. Run the Fig. 5 probe suite on it and fit the sub-op models —
//!    open-box costing, the cheapest way to get a usable cost model.
//! 3. Estimate a join's remote execution time, then actually run the
//!    query and compare.
//!
//! ```text
//! cargo run --release --bin quickstart
//! ```

use catalog::SystemKind;
use costing::sub_op::{RuleInputs, SubOpCosting, SubOpMeasurement, SubOpModels};
use remote_sim::analyze::analyze;
use remote_sim::{ClusterEngine, RemoteSystem};
use workload::{probe_suite, register_tables, TableSpec};

fn main() {
    // A Hive-like remote system on the paper's 3-node evaluation cluster.
    let mut hive = ClusterEngine::paper_hive("hive-prod", 42);
    register_tables(
        &mut hive,
        &[
            TableSpec::new(4_000_000, 250),
            TableSpec::new(1_000_000, 250),
        ],
    )
    .expect("tables register");

    // Open-box costing: probe the primitive sub-operators (Fig. 5) and fit
    // the per-record linear models (Fig. 7). A few dozen queries suffice.
    let measurement = SubOpMeasurement::run(&mut hive, &probe_suite());
    println!(
        "probe campaign: {} primitive queries, {:.1} simulated minutes",
        measurement.queries_run,
        measurement.training_time.as_mins()
    );
    let budget =
        hive.profile().memory_per_node_bytes as f64 * 0.10 / hive.profile().cores_per_node as f64;
    let models = SubOpModels::fit(&measurement, budget).expect("models fit");
    let costing = SubOpCosting::for_system(SystemKind::Hive, models, 32.0 * 1024.0 * 1024.0);

    // Estimate a join the optimizer is considering for remote placement.
    let sql = "SELECT r.a1, s.a1 FROM T4000000_250 r JOIN T1000000_250 s \
               ON r.a1 = s.a1 WHERE s.a1 + r.z < 500000";
    let plan = sqlkit::sql_to_plan(sql).expect("sql parses");
    let analysis = analyze(hive.catalog(), &plan).expect("analysis");
    let (info, ctx) = analysis.join.expect("join query");
    let inputs = RuleInputs::from_join(&info, &ctx);
    let estimate = costing.estimate_join(&info, &inputs);
    println!(
        "applicable algorithms: {:?}",
        costing.surviving_algorithms(&inputs)
    );
    println!(
        "estimated remote execution: {:.1} s ({:?})",
        estimate.secs, estimate.source
    );

    // Ground truth: actually run it on the remote system.
    let exec = hive.submit_sql(sql).expect("query runs");
    println!(
        "actual remote execution:    {:.1} s via {} ({} output rows)",
        exec.elapsed.as_secs(),
        exec.join_algorithm
            .map(|a| a.to_string())
            .unwrap_or_default(),
        exec.output_rows
    );
    println!(
        "estimate/actual ratio: {:.2} (the sub-op approach characteristically \
         overestimates a little — see Fig. 13g)",
        estimate.secs / exec.elapsed.as_secs()
    );
}
