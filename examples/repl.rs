//! An interactive IntelliSphere console.
//!
//! Stands up the three-remote ecosystem of `hybrid_federation`, then reads
//! SQL from stdin. For each query it prints the placement ranking, the
//! winner's `EXPLAIN` on its engine, and the executed result. Commands:
//!
//! * `\tables` — list the foreign tables and their locations,
//! * `\systems` — list the registered systems,
//! * `\quit` — exit.
//!
//! ```text
//! cargo run --release --bin repl
//! echo "SELECT a5, SUM(a1) AS s FROM T2000000_250 GROUP BY a5" | cargo run --release --bin repl
//! ```

use catalog::SystemId;
use federation::IntelliSphere;
use remote_sim::personas::{hive_persona, rdbms_persona, spark_persona};
use remote_sim::{ClusterConfig, ClusterEngine};
use std::io::{self, BufRead, Write};
use workload::{build_table, probe_suite, TableSpec};

fn build_sphere() -> IntelliSphere {
    let mut sphere = IntelliSphere::new(7);
    sphere.add_remote(ClusterEngine::new(
        "hive-a",
        hive_persona(),
        ClusterConfig::paper_hive(),
        1,
    ));
    sphere.add_remote(ClusterEngine::new(
        "spark-b",
        spark_persona(),
        ClusterConfig {
            nodes: 4,
            cores_per_node: 4,
            ..ClusterConfig::paper_hive()
        },
        2,
    ));
    sphere.add_remote(ClusterEngine::new(
        "pg-c",
        rdbms_persona(),
        ClusterConfig::single_node(16, 64 * (1 << 30)),
        3,
    ));
    let assignments = [
        ("hive-a", TableSpec::new(8_000_000, 500)),
        ("hive-a", TableSpec::new(2_000_000, 250)),
        ("spark-b", TableSpec::new(1_000_000, 250)),
        ("spark-b", TableSpec::new(4_000_000, 100)),
        ("pg-c", TableSpec::new(200_000, 100)),
        ("teradata", TableSpec::new(50_000, 40)),
    ];
    for (sys, spec) in assignments {
        sphere
            .add_table(&SystemId::new(sys), build_table(&spec))
            .expect("table registers");
    }
    let suite = probe_suite();
    for sys in ["hive-a", "spark-b", "pg-c", "teradata"] {
        sphere
            .train_subop(&SystemId::new(sys), &suite)
            .expect("profile trains");
    }
    sphere
}

fn handle(sphere: &mut IntelliSphere, line: &str) {
    match line {
        "\\tables" => {
            let cat = sphere.global_catalog();
            for t in cat.tables() {
                println!(
                    "  {:<18} {:>12} rows × {:>5} B   on {}",
                    t.name,
                    t.rows(),
                    t.row_bytes(),
                    t.location
                );
            }
        }
        "\\systems" => {
            let cat = sphere.global_catalog();
            for s in cat.systems() {
                println!(
                    "  {:<10} {:<9} {} node(s) × {} core(s)",
                    s.id.to_string(),
                    s.kind.to_string(),
                    s.nodes,
                    s.cores_per_node
                );
            }
        }
        sql => {
            let report = match sphere.plan(sql) {
                Ok(r) => r,
                Err(e) => {
                    println!("  error: {e}");
                    return;
                }
            };
            println!("  placement ranking:");
            for c in &report.candidates {
                println!(
                    "    {:<10} exec {:>8.2}s + transfer {:>7.2}s = {:>8.2}s",
                    c.option.system.to_string(),
                    c.execution_secs,
                    c.transfer_secs,
                    c.total_secs()
                );
            }
            let winner = report.best().option.system.clone();
            if let Some(engine) = sphere.engine_mut(&winner) {
                if let Ok(explain) = engine.explain(sql) {
                    for l in explain.to_string().lines() {
                        println!("    | {l}");
                    }
                }
            }
            match sphere.execute(sql) {
                Ok(exec) => println!(
                    "  executed on {}: {:.2}s actual ({} rows{})",
                    exec.system,
                    exec.actual_secs,
                    exec.output_rows,
                    if exec.tables_moved.is_empty() {
                        String::new()
                    } else {
                        format!(", moved {:?}", exec.tables_moved)
                    }
                ),
                Err(e) => println!("  execution error: {e}"),
            }
        }
    }
}

fn main() {
    println!("IntelliSphere console — training costing profiles…");
    let mut sphere = build_sphere();
    println!("ready. \\tables, \\systems, \\quit, or SQL.");
    let stdin = io::stdin();
    loop {
        print!("intellisphere> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        handle(&mut sphere, line);
    }
}
