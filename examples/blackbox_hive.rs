//! Black-box (logical-operator) costing end to end (§3).
//!
//! When nothing is known about a remote system's internals, the only way
//! in is to execute a grid of training queries and learn the cost surface
//! — here for the aggregation operator (4 dimensions): run the grid,
//! train the two-hidden-layer network with the paper's cross-validation
//! topology search, then serve estimates through the Fig. 3 flow.
//!
//! ```text
//! cargo run --release --bin blackbox_hive
//! ```

use costing::estimator::OperatorKind;
use costing::features::{agg_dim_names, features_from_sql};
use costing::logical_op::{
    flow::LogicalOpCosting,
    model::{FitConfig, LogicalOpModel, TopologyChoice},
    run_training,
};
use remote_sim::{ClusterEngine, RemoteSystem};
use workload::{agg_training_queries_with, register_tables, specs_up_to};

fn main() {
    let mut hive = ClusterEngine::paper_hive("hive-blackbox", 7);
    let specs = specs_up_to(2_000_000);
    register_tables(&mut hive, &specs).expect("tables register");

    // Phase 1: execute the training grid (this is the expensive part the
    // paper's Figs. 11a/12a measure — hours of remote cluster time).
    let queries: Vec<String> = agg_training_queries_with(&specs, &[2, 5, 10, 20, 50], 3)
        .iter()
        .map(|q| q.sql())
        .collect();
    println!(
        "executing {} training queries on the black-box remote…",
        queries.len()
    );
    let training = run_training(&mut hive, OperatorKind::Aggregation, &queries);
    println!(
        "training campaign took {:.2} simulated hours",
        training.total_time().as_hours()
    );

    // Phase 2: fit the NN with the paper's cross-validated topology.
    let fit = FitConfig {
        topology: TopologyChoice::CrossValidated {
            step: 1,
            search_iterations: 1_000,
        },
        iterations: 12_000,
        batch_size: 32,
        trace_every: 0,
        seed: 7,
        scaling: Default::default(),
    };
    let (model, report) = LogicalOpModel::fit(
        OperatorKind::Aggregation,
        &agg_dim_names(),
        &training.dataset(),
        &fit,
    );
    println!(
        "chosen topology: {}x{}; held-out R² = {:.3}, RMSE% = {:.1}",
        report.topology.layer1, report.topology.layer2, report.test_r2, report.test_rmse_pct
    );

    // Phase 3: serve estimates through the Fig. 3 query-time flow.
    let mut flow = LogicalOpCosting::new(model);
    let sql = "SELECT a10, SUM(a1) AS s1, SUM(a2) AS s2 FROM T800000_250 GROUP BY a10";
    let features = features_from_sql(hive.catalog(), sql).expect("features");
    let estimate = flow.estimate(&features.values);
    let actual = hive.submit_sql(sql).expect("query runs").elapsed.as_secs();
    println!("\nquery: {sql}");
    println!("estimated {:.1} s ({:?})", estimate.secs, estimate.source);
    println!("actual    {:.1} s", actual);

    // Every real execution feeds the offline-tuning log (Fig. 3's bottom
    // half); periodic retraining keeps the model current.
    flow.observe_actual(&features.values, actual);
    println!(
        "logged for offline tuning: {} pending record(s)",
        flow.log.len()
    );
}
