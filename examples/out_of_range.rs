//! The out-of-range machinery (Figs. 3, 4, 14): what happens when a query
//! lands far outside the trained grid, and how the online remedy and
//! offline tuning phases recover.
//!
//! ```text
//! cargo run --release --bin out_of_range
//! ```

use costing::estimator::{EstimateSource, OperatorKind};
use costing::features::{features_from_sql, join_dim_names};
use costing::logical_op::{
    flow::LogicalOpCosting,
    model::{FitConfig, LogicalOpModel, TopologyChoice},
    run_training,
};
use remote_sim::{ClusterEngine, RemoteSystem};
use workload::{build_table, join_training_queries_with, register_tables, TableSpec};

fn main() {
    let mut hive = ClusterEngine::paper_hive("hive-oor", 5);

    // Train on joins of 1–8 M row tables (the Fig. 14 setup) …
    let train_specs: Vec<TableSpec> = [1u64, 2, 4, 6, 8]
        .iter()
        .map(|&k| TableSpec::new(k * 1_000_000, 500))
        .collect();
    register_tables(&mut hive, &train_specs).expect("tables");
    let queries: Vec<String> = join_training_queries_with(&train_specs, &[100, 50, 25])
        .iter()
        .map(|q| q.sql())
        .collect();
    let training = run_training(&mut hive, OperatorKind::Join, &queries);
    let (model, _) = LogicalOpModel::fit(
        OperatorKind::Join,
        &join_dim_names(),
        &training.dataset(),
        &FitConfig {
            topology: TopologyChoice::Fixed {
                layer1: 12,
                layer2: 6,
            },
            iterations: 15_000,
            batch_size: 32,
            trace_every: 0,
            seed: 5,
            scaling: Default::default(),
        },
    );
    let mut flow = LogicalOpCosting::new(model);
    for dim in &flow.model.meta.dims {
        println!(
            "trained range of {:<18} [{:>12.0}, {:>12.0}]  step {:.0}",
            dim.name, dim.min, dim.max, dim.step_size
        );
    }

    // … then query a 20 M row join: way off the trained range (Fig. 3's
    // top diamond fails, the remedy kicks in).
    hive.register_table(build_table(&TableSpec::new(20_000_000, 500)))
        .expect("oor table");
    let sql = "SELECT r.a1, s.a1 FROM T20000000_500 r JOIN T4000000_500 s ON r.a1 = s.a1";
    let features = features_from_sql(hive.catalog(), sql).expect("features");
    let estimate = flow.estimate(&features.values);
    match &estimate.source {
        EstimateSource::OnlineRemedy { alpha, pivots } => {
            let names: Vec<&str> = pivots
                .iter()
                .map(|&p| flow.model.meta.dims[p].name.as_str())
                .collect();
            println!(
                "\nremedy triggered: pivot dimension(s) {names:?}, α = {alpha}, \
                 estimate {:.1} s",
                estimate.secs
            );
        }
        other => println!("\nunexpected source {other:?}"),
    }
    println!(
        "raw NN would have said {:.1} s",
        flow.model.predict_nn(&features.values)
    );

    let actual = hive.submit_sql(sql).expect("runs").elapsed.as_secs();
    println!("actual execution {actual:.1} s");
    flow.observe_actual(&features.values, actual);

    // After a few more observed out-of-range executions, α re-fits …
    for k in [6u64, 8, 10, 12] {
        let partner = format!(
            "SELECT r.a1, s.a1 FROM T20000000_500 r JOIN T{}_500 s ON r.a1 = s.a1",
            k * 500_000
        );
        if let Ok(f) = features_from_sql(hive.catalog(), &partner) {
            let _ = flow.estimate(&f.values);
            if let Ok(x) = hive.submit_sql(&partner) {
                flow.observe_actual(&f.values, x.elapsed.as_secs());
            }
        }
    }
    let alpha = flow.adjust_alpha();
    println!(
        "\nafter {} observed executions, α re-fit to {alpha:.2}",
        flow.tuner.observations()
    );

    // … and the offline tuning phase retrains the network on the log.
    let report = flow.offline_tune(&FitConfig::fast());
    println!(
        "offline tuning consumed {} log entries; expanded dims {:?}; RMSE% now {:.1}",
        report.entries_used, report.dims_expanded, report.rmse_pct_after
    );
    let after = flow.estimate_readonly(&features.values);
    println!(
        "the same query now estimates {:.1} s via {:?}",
        after.secs, after.source
    );
}
