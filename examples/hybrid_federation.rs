//! The full IntelliSphere story (Figs. 1 and 9): a federated ecosystem
//! with three heterogeneous remote systems, per-system costing profiles,
//! and a cost-based planner choosing where each operator runs.
//!
//! ```text
//! cargo run --release --bin hybrid_federation
//! ```

use catalog::SystemId;
use federation::IntelliSphere;
use remote_sim::personas::{hive_persona, rdbms_persona, spark_persona};
use remote_sim::{ClusterConfig, ClusterEngine};
use workload::{build_table, probe_suite, TableSpec};

fn main() {
    let mut sphere = IntelliSphere::new(2026);

    // Three heterogeneous remote systems (Fig. 1).
    sphere.add_remote(ClusterEngine::new(
        "hive-a",
        hive_persona(),
        ClusterConfig::paper_hive(),
        1,
    ));
    sphere.add_remote(ClusterEngine::new(
        "spark-b",
        spark_persona(),
        ClusterConfig {
            nodes: 4,
            cores_per_node: 4,
            ..ClusterConfig::paper_hive()
        },
        2,
    ));
    sphere.add_remote(ClusterEngine::new(
        "pg-c",
        rdbms_persona(),
        ClusterConfig::single_node(16, 64 * (1 << 30)),
        3,
    ));

    // Foreign tables live where their data lives (§2).
    let hive_id = SystemId::new("hive-a");
    let spark_id = SystemId::new("spark-b");
    let pg_id = SystemId::new("pg-c");
    sphere
        .add_table(&hive_id, build_table(&TableSpec::new(8_000_000, 500)))
        .unwrap();
    sphere
        .add_table(&spark_id, build_table(&TableSpec::new(2_000_000, 250)))
        .unwrap();
    sphere
        .add_table(&pg_id, build_table(&TableSpec::new(200_000, 100)))
        .unwrap();

    // Costing profiles: sub-op everywhere (all three engines are open-box
    // here); the hybrid manager would equally accept logical-op or timed
    // profiles per system (Fig. 9).
    let suite = probe_suite();
    for id in [&hive_id, &spark_id, &pg_id, &SystemId::master()] {
        let t = sphere.train_subop(id, &suite).expect("profile trains");
        println!(
            "trained sub-op profile for {id} ({:.1} simulated min of probes)",
            t.as_mins()
        );
    }

    // A join spanning two remote systems: Hive owns R, Spark owns S.
    let sql = "SELECT r.a1, s.a1 FROM T8000000_500 r JOIN T2000000_250 s ON r.a1 = s.a1 \
               WHERE s.a1 + r.z < 1000000";
    println!("\nplanning: {sql}");
    let report = sphere.plan(sql).expect("plan");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "placement", "exec (s)", "transfer (s)", "total (s)"
    );
    for cand in &report.candidates {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>12.1}",
            cand.option.system.to_string(),
            cand.execution_secs,
            cand.transfer_secs,
            cand.total_secs()
        );
    }

    // Execute on the winner: the QueryGrid emulation ships the foreign
    // table, the query runs, and the observed actual feeds the profile.
    let exec = sphere.execute(sql).expect("executes");
    println!(
        "\nexecuted on {} — estimated {:.1} s execution (+{:.1} s transfer), \
         actual execution {:.1} s; moved {:?}; {} rows",
        exec.system,
        exec.estimated_exec_secs,
        exec.transfer_secs,
        exec.actual_secs,
        exec.tables_moved,
        exec.output_rows
    );

    // An aggregation over the RDBMS-resident table: cheap enough locally
    // that shipping it anywhere would be wasteful.
    let agg = "SELECT a5, SUM(a1) AS s FROM T200000_100 GROUP BY a5";
    let agg_report = sphere.plan(agg).expect("plan");
    println!(
        "\naggregation on pg-resident table — best placement: {} ({:.2} s total)",
        agg_report.best().option.system,
        agg_report.best().total_secs()
    );
}
