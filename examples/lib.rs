//! Helper-free placeholder library target: each example is a standalone binary.
