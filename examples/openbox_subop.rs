//! Open-box (sub-operator) costing, step by step (§4).
//!
//! Shows what the expert path looks like: measure the Fig. 5 primitives
//! without instrumentation, inspect the recovered linear models and the
//! two-regime HashBuild, then watch the applicability rules narrow the
//! algorithm menu and the choice policy resolve the survivors.
//!
//! ```text
//! cargo run --release --bin openbox_subop
//! ```

use catalog::SystemKind;
use costing::sub_op::{RuleInputs, SubOp, SubOpCosting, SubOpMeasurement, SubOpModels};
use remote_sim::analyze::analyze;
use remote_sim::{ClusterEngine, RemoteSystem};
use workload::{probe_suite, register_tables, TableSpec};

fn main() {
    let mut hive = ClusterEngine::paper_hive("hive-openbox", 11);
    register_tables(
        &mut hive,
        &[
            TableSpec::new(8_000_000, 500),
            TableSpec::new(2_000_000, 500),
            TableSpec::new(50_000, 100), // small enough to broadcast
        ],
    )
    .expect("tables register");

    // --- Measure the primitives (Fig. 5's numbered probe queries) ---
    let measurement = SubOpMeasurement::run(&mut hive, &probe_suite());
    let budget =
        hive.profile().memory_per_node_bytes as f64 * 0.10 / hive.profile().cores_per_node as f64;
    let models = SubOpModels::fit(&measurement, budget).expect("models fit");

    println!("recovered per-record models (work µs vs record size):");
    for subop in SubOp::ALL {
        let line = models.line(subop);
        println!(
            "  {:<18} ({:>2})  y = {:.4}x + {:>8.3}   R² = {:.4}   [{:?}]",
            subop.to_string(),
            subop.symbol(),
            line.slope,
            line.intercept,
            line.r2,
            subop.category()
        );
    }
    println!(
        "  HashBuild spill regime: y = {:.4}x + {:.3} (used when the table \
         exceeds the {:.0} MB per-task budget)",
        models.hash_spilled.slope,
        models.hash_spilled.intercept,
        models.task_hash_budget_bytes / 1e6
    );

    let costing = SubOpCosting::for_system(SystemKind::Hive, models, 32.0 * 1024.0 * 1024.0);

    // --- The Fig. 6 formula, as the expert authored it ---
    println!(
        "\nbroadcast-join cost formula (Fig. 6):\n  {}",
        costing::sub_op::algorithms::join_formula(
            remote_sim::physical::JoinAlgorithm::HiveBroadcastJoin
        )
    );

    // --- Applicability rules in action (§4) ---
    for (label, sql) in [
        (
            "large ⋈ large (broadcast ruled out)",
            "SELECT r.a1, s.a1 FROM T8000000_500 r JOIN T2000000_500 s ON r.a1 = s.a1",
        ),
        (
            "large ⋈ tiny (broadcast applicable)",
            "SELECT r.a1, s.a1 FROM T8000000_500 r JOIN T50000_100 s ON r.a1 = s.a1",
        ),
    ] {
        let plan = sqlkit::sql_to_plan(sql).expect("parses");
        let analysis = analyze(hive.catalog(), &plan).expect("analysis");
        let (info, ctx) = analysis.join.expect("join");
        let inputs = RuleInputs::from_join(&info, &ctx);
        let survivors = costing.surviving_algorithms(&inputs);
        println!("\n{label}");
        println!("  surviving algorithms after the rules:");
        for algo in &survivors {
            println!(
                "    {:<24} {:>9.1} s",
                algo.to_string(),
                costing.estimate_join_with(*algo, &info)
            );
        }
        let estimate = costing.estimate_join(&info, &inputs);
        let actual = hive.submit_sql(sql).expect("runs");
        println!(
            "  policy estimate {:.1} s ({:?}); actual {:.1} s via {}",
            estimate.secs,
            estimate.source,
            actual.elapsed.as_secs(),
            actual
                .join_algorithm
                .map(|a| a.to_string())
                .unwrap_or_default()
        );
    }
}
