//! Offline stand-in for the `arc-swap` crate: an atomically swappable
//! `Arc<T>` cell whose read path (`load_full`) never blocks.
//!
//! The real crate uses hazard-pointer-style debt lists; this shim keeps
//! the same contract with a simpler RCU scheme:
//!
//! * readers announce themselves on a striped `SeqCst` counter, load the
//!   current pointer, bump the `Arc` strong count, and retire from the
//!   stripe — no locks, no waiting on writers;
//! * writers swap the pointer atomically and push the previous `Arc`
//!   onto a mutex-guarded *retired* list, which is drained only once all
//!   reader stripes have been observed at zero, so a reader that raced
//!   the swap can never see its snapshot freed underneath it.
//!
//! Because every ordering is `SeqCst`, a writer that observes all
//! stripes at zero after its swap knows every in-flight reader either
//! already owns a strong count on the old value or will load the new
//! pointer. The retired list is the only lock in the cell; it is a
//! [`parking_lot::Mutex`] so it participates in the workspace
//! `lock-order-check` runtime via [`ArcSwap::set_rank`].
//!
//! Writers are expected to be rare (epoch publication); a retired
//! snapshot is reclaimed by the next store that finds the cell quiescent
//! or when the cell itself is dropped.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// Number of reader-counter stripes; threads hash onto a stripe to keep
/// the announce/retire traffic off a single contended cache line.
const STRIPES: usize = 16;

/// One cache-line-padded reader counter.
#[repr(align(64))]
struct Stripe(AtomicUsize);

/// Stripe assignment for the current thread, computed once per thread.
fn stripe_index() -> usize {
    thread_local! {
        static IDX: usize = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            (h.finish() as usize) % STRIPES
        };
    }
    IDX.with(|i| *i)
}

/// An atomically swappable `Arc<T>` with lock-free reads.
///
/// `load_full` returns an owned `Arc<T>` snapshot; `store`/`swap`
/// publish a replacement. Readers never block and writers never block
/// readers — the only mutex guards the writer-side retired list.
pub struct ArcSwap<T> {
    /// Raw pointer produced by `Arc::into_raw`; the cell owns one
    /// strong count on whatever this points at.
    ptr: AtomicPtr<T>,
    readers: Vec<Stripe>,
    /// Previously published values awaiting quiescence before drop.
    retired: Mutex<Vec<Arc<T>>>,
}

// The cell hands out `Arc<T>` across threads, so it is exactly as
// shareable as `Arc<T>` itself.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            readers: (0..STRIPES).map(|_| Stripe(AtomicUsize::new(0))).collect(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Assigns a lock-order rank to the retired-list mutex (see
    /// `parking_lot::rank`). No-op unless `lock-order-check` is active.
    pub fn set_rank(&self, rank: u32) {
        self.retired.set_rank(rank);
    }

    /// Returns an owned snapshot of the current value without taking
    /// any lock.
    pub fn load_full(&self) -> Arc<T> {
        let stripe = &self.readers[stripe_index()];
        stripe.0.fetch_add(1, SeqCst);
        let ptr = self.ptr.load(SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and cannot have been
        // reclaimed: a writer only drops retired values after observing
        // this stripe at zero, and our increment above precedes this
        // load in the SeqCst total order.
        let arc = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        stripe.0.fetch_sub(1, SeqCst);
        arc
    }

    /// Alias for [`ArcSwap::load_full`], mirroring the real crate's
    /// guard-returning `load` in the cases this workspace needs.
    pub fn load(&self) -> Arc<T> {
        self.load_full()
    }

    /// Publishes `new`, dropping the previous value once quiescent.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Publishes `new` and returns the previously published value.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let new_ptr = Arc::into_raw(new).cast_mut();
        let old_ptr = self.ptr.swap(new_ptr, SeqCst);
        // SAFETY: `old_ptr` was produced by `Arc::into_raw` and the
        // cell held one strong count on it, which we take over here.
        let old = unsafe { Arc::from_raw(old_ptr) };
        let previous = Arc::clone(&old);
        let mut retired = self.retired.lock();
        retired.push(old);
        // A reader announces on its stripe *before* loading the
        // pointer, so "every stripe is zero" (all SeqCst, read after
        // our swap) proves no reader still holds an un-counted
        // reference to anything in the retired list.
        if self.readers.iter().all(|s| s.0.load(SeqCst) == 0) {
            retired.clear();
        }
        previous
    }

    /// Number of retired values awaiting reclamation (test hook).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().len()
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        let ptr = *self.ptr.get_mut();
        // SAFETY: exclusive access; the cell owns one strong count on
        // the currently published value.
        unsafe { drop(Arc::from_raw(ptr)) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&self.load_full()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_the_stored_value() {
        let cell = ArcSwap::new(Arc::new(41));
        assert_eq!(*cell.load_full(), 41);
        cell.store(Arc::new(42));
        assert_eq!(*cell.load_full(), 42);
    }

    #[test]
    fn swap_returns_the_previous_value() {
        let cell = ArcSwap::new(Arc::new("a"));
        let old = cell.swap(Arc::new("b"));
        assert_eq!(*old, "a");
        assert_eq!(*cell.load(), "b");
    }

    #[test]
    fn quiescent_stores_reclaim_retired_values() {
        let cell = ArcSwap::new(Arc::new(0));
        for i in 1..10 {
            cell.store(Arc::new(i));
        }
        // Single-threaded: every store observes zero readers and drains.
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn snapshots_outlive_later_stores() {
        let cell = ArcSwap::new(Arc::new(vec![1, 2, 3]));
        let pinned = cell.load_full();
        cell.store(Arc::new(vec![4]));
        cell.store(Arc::new(vec![5]));
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(*cell.load_full(), vec![5]);
    }

    #[test]
    fn concurrent_readers_see_only_published_values() {
        let cell = Arc::new(ArcSwap::new(Arc::new(0_u64)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..20_000 {
                        let v = cell.load_full();
                        assert!(v.is_multiple_of(7), "torn or reclaimed value: {}", *v);
                    }
                });
            }
            for i in 1..=2_000_u64 {
                cell.store(Arc::new(i * 7));
            }
        });
        assert_eq!(*cell.load_full(), 2_000 * 7);
    }
}
