//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use —
//! `criterion_group!` / `criterion_main!` / `Criterion::bench_function`
//! / `Bencher::iter` — over a simple adaptive wall-clock measurement:
//! warm up briefly, size the batch so one batch is long enough to time
//! accurately, then report mean time per iteration over a fixed budget.
//!
//! Under `cargo test` (which runs bench targets with `--test`), each
//! benchmark body executes exactly once so the suite stays fast.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, as criterion provides.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-iteration timing loop handed to bench closures.
pub struct Bencher {
    mode: Mode,
    /// Measured mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iters: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `--test`: run once, don't measure.
    Smoke,
    /// Full measurement.
    Measure,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean wall-clock cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            black_box(f());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warm-up: run for ~100ms to stabilize caches/branch predictors,
        // and learn roughly how long one iteration takes.
        let warmup = Duration::from_millis(100);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        // Measure: batches sized to ~10ms each, total budget ~1s.
        let batch = ((10_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);
        let budget = Duration::from_millis(1000);
        let mut total_ns: u128 = 0;
        let mut total_iters: u64 = 0;
        let begin = Instant::now();
        while begin.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_ns += t0.elapsed().as_nanos();
            total_iters += batch;
        }
        self.mean_ns = total_ns as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

/// The benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo runs bench targets under `cargo test` with `--test`.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke { Mode::Smoke } else { Mode::Measure },
        }
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

impl Criterion {
    /// Measure one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mode: self.mode,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        match self.mode {
            Mode::Smoke => println!("bench {name}: ok (smoke)"),
            Mode::Measure => println!(
                "{name:<45} time: [{}]   ({} iterations)",
                format_time(b.mean_ns),
                b.iters
            ),
        }
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher {
            mode: Mode::Smoke,
            mean_ns: 1.0,
            iters: 0,
        };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(12.3), "12.30 ns");
        assert_eq!(format_time(4_500.0), "4.500 µs");
        assert_eq!(format_time(7_800_000.0), "7.800 ms");
    }
}
