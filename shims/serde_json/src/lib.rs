//! Offline stand-in for `serde_json`.
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` over the
//! serde shim's [`Value`] data model. Output conventions follow real
//! serde_json: objects render `{"k":v}` compactly or with two-space
//! indentation in pretty mode, floats always carry a decimal point or
//! exponent (so they parse back as floats), and non-finite floats render
//! as `null`. Rust's shortest-roundtrip float formatting gives the
//! `float_roundtrip` guarantee for free.

pub use serde::Error;
use serde::{Deserialize, Number, Serialize, Value};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn render_number(n: Number, out: &mut String) {
    match n {
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if !v.is_finite() => out.push_str("null"),
        Number::Float(v) => {
            let s = format!("{v}");
            out.push_str(&s);
            // `{}` prints 2.0 as "2"; keep the float-ness visible so the
            // value parses back as a float, matching serde_json.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = serde::Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(Error::custom)?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(Error::custom)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        let n = if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                Number::Int(i)
            } else if let Ok(u) = text.parse::<u64>() {
                Number::UInt(u)
            } else {
                Number::Float(text.parse::<f64>().map_err(Error::custom)?)
            }
        } else {
            Number::Float(text.parse::<f64>().map_err(Error::custom)?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
    }

    #[test]
    fn float_shortest_roundtrip() {
        let v = 0.1f64 + 0.2f64;
        let s = to_string(&v).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn vec_and_string_escapes() {
        let v = vec!["a\"b\\c\nd".to_string()];
        let s = to_string(&v).unwrap();
        let back: Vec<String> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_shape() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), vec![1u32, 2]);
        let s = to_string_pretty(&m).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }
}
