//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace seeds every RNG explicitly (`StdRng::seed_from_u64`),
//! so the only requirements here are statistical quality and run-to-run
//! determinism for a given seed — not bit-compatibility with upstream
//! rand's StdRng (which is version-unstable anyway). The generator is
//! xoshiro256++ seeded via SplitMix64.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping (Lemire); the
                // modulo bias for spans ≪ 2^64 is far below statistical
                // relevance for this workspace.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // u < 1 strictly, but rounding can still land on `end`.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (*self.start() as f64..=*self.end() as f64).sample_from(rng) as f32
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let v = (self.start as f64..self.end as f64).sample_from(rng) as f32;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// `shuffle` / `choose` on slices, as in rand 0.8.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n = rng.gen_range(10usize..20);
            assert!((10..20).contains(&n));
            let m = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
