//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate provides the subset of serde's surface the workspace
//! actually uses: `#[derive(Serialize, Deserialize)]` (including
//! `#[serde(default)]` on fields) and the trait pair consumed by the
//! sibling `serde_json` shim.
//!
//! Instead of serde's visitor-based zero-copy data model, everything
//! funnels through an owned [`Value`] tree (the same idea as
//! `serde_json::Value`). That is dramatically simpler and entirely
//! sufficient for profile persistence and test fixtures. The derive
//! macros generate externally-tagged enum representations identical in
//! shape to real serde's default, so JSON produced here matches what
//! upstream serde_json would emit for the same types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Object representation: a sorted map, so rendering is deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON-style number that remembers whether it was an integer.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) if v >= 0 => Some(v as u64),
            Number::Int(_) => None,
            Number::UInt(v) => Some(v),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An owned tree representing any serializable datum.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric value.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key/value mapping with string keys.
    Object(Map),
}

impl Value {
    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: a plain message, mirroring `serde_json::Error`
/// closely enough for the workspace's error handling.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a `Value`.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a `Value`, or explain why it cannot be.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_ser_de_int {
    ($($t:ty => $via:ident / $back:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$via(*self as _))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .$back()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| Error::custom(concat!(
                            "number out of range for ", stringify!($t)
                        ))),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_ser_de_int! {
    i8 => Int / as_i64,
    i16 => Int / as_i64,
    i32 => Int / as_i64,
    i64 => Int / as_i64,
    isize => Int / as_i64,
    u8 => UInt / as_u64,
    u16 => UInt / as_u64,
    u32 => UInt / as_u64,
    u64 => UInt / as_u64,
    usize => UInt / as_u64,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json emits null for non-finite floats; accept it back.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// Maps serialize as JSON objects; keys must themselves serialize to a
// string (String, newtype-over-String, unit-variant enums).
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::String(s) => s,
        other => panic!("map key must serialize to a string, got {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    K::from_value(&Value::String(s.to_string()))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Collect through a BTreeMap so iteration order is deterministic.
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut rendered: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        // HashSet iteration order is unstable; sort the rendered forms so
        // serialization is deterministic run to run.
        rendered.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(rendered)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(
            Option::<u32>::from_value(&Some(3u32).to_value()).unwrap(),
            Some(3)
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn number_eq_across_variants() {
        assert_eq!(Number::Int(5), Number::UInt(5));
        assert_eq!(Number::Int(5), Number::Float(5.0));
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1u64, "x".to_string(), 2.5f64);
        let back: (u64, String, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn map_requires_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        assert_eq!(
            v.as_object().unwrap().get("a"),
            Some(&Value::Number(Number::UInt(1)))
        );
    }
}
