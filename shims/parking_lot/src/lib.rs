//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. Poisoning is collapsed by taking the inner value anyway —
//! parking_lot's actual semantics (a panicking thread simply releases
//! the lock).
//!
//! # Lock-order checking (`lock-order-check` feature)
//!
//! With the `lock-order-check` feature enabled, every lock can be given
//! a **rank** ([`Mutex::set_rank`] / [`RwLock::set_rank`], constants in
//! [`rank`]) and every blocking acquisition is validated against a
//! thread-local stack of locks the current thread already holds:
//!
//! * acquiring a *ranked* lock while holding a ranked lock of an equal
//!   or higher rank panics (**rank inversion** — the static lock-order
//!   graph in `crates/analysis` assigns ranks so that every legal
//!   nesting is strictly increasing);
//! * re-acquiring a lock this thread already holds panics when either
//!   acquisition is exclusive (**self-deadlock** / read→write upgrade);
//!   shared re-reads of the same `RwLock` stay legal;
//! * unranked locks ([`rank::UNRANKED`]) skip the rank check but still
//!   participate in self-deadlock detection;
//! * `try_lock` / `try_read` / `try_write` only *record* — a
//!   non-blocking attempt cannot deadlock, so it never panics.
//!
//! Without the feature every check compiles away: guards are the plain
//! `std::sync` guard types and [`Mutex::set_rank`] is a no-op, so
//! instrumented crates call it unconditionally.

use std::sync::{self, PoisonError};

#[cfg(not(feature = "lock-order-check"))]
pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Workspace-wide lock ranks, in required acquisition order.
///
/// A thread may only acquire a ranked lock whose rank is **strictly
/// greater** than every ranked lock it already holds. The assignments
/// mirror the static lock-order graph enforced by `crates/analysis`
/// (rule R2); keep the two in sync — `analysis` has a test comparing
/// its copy against this module's source.
pub mod rank {
    /// Rank of a lock that opted out of ordering (the default).
    pub const UNRANKED: u32 = 0;
    /// `serving::limiter` per-tenant token-bucket map
    /// (`TenantRateLimiter::buckets`) — taken first on the admission
    /// path, never while holding anything else.
    pub const FRONTEND_LIMITER: u32 = 3;
    /// `serving::frontend` request-queue receiver baton
    /// (`Inner::queue_rx`) — the batch leader holds it while draining;
    /// it is released before any estimation lock is touched.
    pub const FRONTEND_QUEUE: u32 = 5;
    /// `costing::epoch` snapshot-publication commit mutex (`EpochStore::commit`).
    pub const EPOCH_COMMIT: u32 = 10;
    /// `arc_swap` retired-snapshot reclamation list (`ArcSwap::retired`).
    pub const EPOCH_RETIRED: u32 = 20;
    /// `costing::service` per-shard estimate cache (`Shard::cache`).
    pub const SERVICE_CACHE: u32 = 30;
    /// `telemetry::metrics` registry metric map.
    pub const REGISTRY_METRICS: u32 = 50;
    /// `telemetry::metrics` registry help-text map.
    pub const REGISTRY_HELP: u32 = 51;
    /// `telemetry::slo` burn-rate bucket ring (`SloEngine::slo_state`) —
    /// a leaf taken with nothing held; alert events are emitted after
    /// release, but rank 60 stays legal should that ever nest.
    pub const SLO_STATE: u32 = 55;
    /// `telemetry::span` exemplar reservoir (`LayerInner::exemplars`) —
    /// a leaf taken when a finished span guard drops.
    pub const SPAN_EXEMPLARS: u32 = 56;
    /// `telemetry::trace` subscriber event buffers.
    pub const TRACE_SUBSCRIBER: u32 = 60;
}

#[cfg(feature = "lock-order-check")]
mod order {
    use std::cell::RefCell;

    struct Held {
        addr: usize,
        rank: u32,
        exclusive: bool,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Releases its stack entry when the owning guard drops.
    pub(crate) struct Token {
        addr: usize,
        exclusive: bool,
    }

    impl Drop for Token {
        fn drop(&mut self) {
            let (addr, exclusive) = (self.addr, self.exclusive);
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held
                    .iter()
                    .rposition(|h| h.addr == addr && h.exclusive == exclusive)
                {
                    held.remove(pos);
                }
            });
        }
    }

    /// Records (and, for blocking acquisitions, validates) one lock
    /// acquisition by the current thread.
    pub(crate) fn acquire(addr: usize, rank: u32, exclusive: bool, blocking: bool) -> Token {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let mut shared_reentry = false;
            for h in held.iter() {
                if h.addr != addr {
                    continue;
                }
                if blocking && (exclusive || h.exclusive) {
                    panic!(
                        "lock-order-check: thread re-acquires lock {addr:#x} (rank {rank}) it \
                         already holds ({} then {}) — guaranteed self-deadlock",
                        kind(h.exclusive),
                        kind(exclusive),
                    );
                }
                shared_reentry = true;
            }
            if blocking && !shared_reentry && rank != super::rank::UNRANKED {
                let max_held = held
                    .iter()
                    .filter(|h| h.rank != super::rank::UNRANKED)
                    .map(|h| h.rank)
                    .max();
                if let Some(max_held) = max_held {
                    if rank <= max_held {
                        panic!(
                            "lock-order-check: rank inversion — acquiring rank {rank} while \
                             already holding rank {max_held}; ranked locks must be taken in \
                             strictly increasing order (see parking_lot::rank)",
                        );
                    }
                }
            }
            held.push(Held {
                addr,
                rank,
                exclusive,
            });
        });
        Token { addr, exclusive }
    }

    fn kind(exclusive: bool) -> &'static str {
        if exclusive {
            "exclusive"
        } else {
            "shared"
        }
    }
}

#[cfg(feature = "lock-order-check")]
mod guards {
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync;

    use super::order::Token;

    macro_rules! tracked_guard {
        ($name:ident, $inner:ident, mutable: $mutable:tt) => {
            /// A guard that pops the lock-order stack when dropped.
            pub struct $name<'a, T: ?Sized> {
                // Declared first so the order entry is released before
                // the underlying lock itself.
                _token: Token,
                inner: sync::$inner<'a, T>,
            }

            impl<'a, T: ?Sized> $name<'a, T> {
                pub(crate) fn new(token: Token, inner: sync::$inner<'a, T>) -> Self {
                    $name {
                        _token: token,
                        inner,
                    }
                }
            }

            impl<T: ?Sized> Deref for $name<'_, T> {
                type Target = T;
                fn deref(&self) -> &T {
                    &self.inner
                }
            }

            tracked_guard!(@mut $mutable, $name);

            impl<T: ?Sized + fmt::Debug> fmt::Debug for $name<'_, T> {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    fmt::Debug::fmt(&**self, f)
                }
            }

            impl<T: ?Sized + fmt::Display> fmt::Display for $name<'_, T> {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    fmt::Display::fmt(&**self, f)
                }
            }
        };
        (@mut true, $name:ident) => {
            impl<T: ?Sized> DerefMut for $name<'_, T> {
                fn deref_mut(&mut self) -> &mut T {
                    &mut self.inner
                }
            }
        };
        (@mut false, $name:ident) => {};
    }

    tracked_guard!(MutexGuard, MutexGuard, mutable: true);
    tracked_guard!(RwLockReadGuard, RwLockReadGuard, mutable: false);
    tracked_guard!(RwLockWriteGuard, RwLockWriteGuard, mutable: true);
}

#[cfg(feature = "lock-order-check")]
pub use guards::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "lock-order-check")]
use std::sync::atomic::{AtomicU32, Ordering};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order-check")]
    rank: AtomicU32,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock-order-check")]
            rank: AtomicU32::new(rank::UNRANKED),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Assigns this lock's rank for `lock-order-check` builds (see
    /// [`rank`]). Without the feature this is a no-op, so callers need
    /// no `cfg` of their own.
    #[cfg_attr(not(feature = "lock-order-check"), allow(unused_variables))]
    pub fn set_rank(&self, rank: u32) {
        #[cfg(feature = "lock-order-check")]
        self.rank.store(rank, Ordering::Relaxed);
    }

    #[cfg(feature = "lock-order-check")]
    fn addr(&self) -> usize {
        &self.rank as *const AtomicU32 as usize
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-order-check")]
        {
            let token = order::acquire(self.addr(), self.rank.load(Ordering::Relaxed), true, true);
            MutexGuard::new(
                token,
                self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            )
        }
        #[cfg(not(feature = "lock-order-check"))]
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lock-order-check")]
        {
            guard.map(|g| {
                let token =
                    order::acquire(self.addr(), self.rank.load(Ordering::Relaxed), true, false);
                MutexGuard::new(token, g)
            })
        }
        #[cfg(not(feature = "lock-order-check"))]
        guard
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning readers-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-order-check")]
    rank: AtomicU32,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock-order-check")]
            rank: AtomicU32::new(rank::UNRANKED),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Assigns this lock's rank for `lock-order-check` builds (see
    /// [`rank`]). Without the feature this is a no-op, so callers need
    /// no `cfg` of their own.
    #[cfg_attr(not(feature = "lock-order-check"), allow(unused_variables))]
    pub fn set_rank(&self, rank: u32) {
        #[cfg(feature = "lock-order-check")]
        self.rank.store(rank, Ordering::Relaxed);
    }

    #[cfg(feature = "lock-order-check")]
    fn addr(&self) -> usize {
        &self.rank as *const AtomicU32 as usize
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order-check")]
        {
            let token = order::acquire(self.addr(), self.rank.load(Ordering::Relaxed), false, true);
            RwLockReadGuard::new(
                token,
                self.inner.read().unwrap_or_else(PoisonError::into_inner),
            )
        }
        #[cfg(not(feature = "lock-order-check"))]
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order-check")]
        {
            let token = order::acquire(self.addr(), self.rank.load(Ordering::Relaxed), true, true);
            RwLockWriteGuard::new(
                token,
                self.inner.write().unwrap_or_else(PoisonError::into_inner),
            )
        }
        #[cfg(not(feature = "lock-order-check"))]
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let guard = match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lock-order-check")]
        {
            guard.map(|g| {
                let token =
                    order::acquire(self.addr(), self.rank.load(Ordering::Relaxed), false, false);
                RwLockReadGuard::new(token, g)
            })
        }
        #[cfg(not(feature = "lock-order-check"))]
        guard
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let guard = match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lock-order-check")]
        {
            guard.map(|g| {
                let token =
                    order::acquire(self.addr(), self.rank.load(Ordering::Relaxed), true, false);
                RwLockWriteGuard::new(token, g)
            })
        }
        #[cfg(not(feature = "lock-order-check"))]
        guard
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn survives_poison() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[cfg(feature = "lock-order-check")]
    mod ordering {
        use super::super::*;

        #[test]
        fn increasing_ranks_are_legal() {
            let low = Mutex::new(());
            let high = Mutex::new(());
            low.set_rank(10);
            high.set_rank(20);
            let _a = low.lock();
            let _b = high.lock();
        }

        #[test]
        #[should_panic(expected = "rank inversion")]
        fn decreasing_ranks_panic() {
            let low = Mutex::new(());
            let high = Mutex::new(());
            low.set_rank(10);
            high.set_rank(20);
            let _b = high.lock();
            let _a = low.lock();
        }

        #[test]
        #[should_panic(expected = "rank inversion")]
        fn equal_ranks_panic() {
            let a = Mutex::new(());
            let b = Mutex::new(());
            a.set_rank(10);
            b.set_rank(10);
            let _a = a.lock();
            let _b = b.lock();
        }

        #[test]
        #[should_panic(expected = "self-deadlock")]
        fn mutex_reentry_panics() {
            let m = Mutex::new(());
            let _a = m.lock();
            let _b = m.lock();
        }

        #[test]
        #[should_panic(expected = "self-deadlock")]
        fn read_to_write_upgrade_panics() {
            let l = RwLock::new(());
            let _r = l.read();
            let _w = l.write();
        }

        #[test]
        fn shared_reread_is_legal() {
            let l = RwLock::new(());
            l.set_rank(10);
            let _r1 = l.read();
            let _r2 = l.read();
        }

        #[test]
        fn release_unwinds_the_stack() {
            let low = Mutex::new(());
            let high = Mutex::new(());
            low.set_rank(10);
            high.set_rank(20);
            drop(high.lock());
            // The high-rank guard is gone, so the low rank is legal again.
            let _a = low.lock();
            let _b = high.lock();
        }

        #[test]
        fn try_lock_records_without_panicking() {
            let low = Mutex::new(());
            let high = Mutex::new(());
            low.set_rank(10);
            high.set_rank(20);
            let _b = high.lock();
            // Inverted, but non-blocking: must not panic.
            let a = low.try_lock();
            assert!(a.is_some());
            // Same-thread re-try on a held lock: std reports WouldBlock.
            assert!(high.try_lock().is_none());
        }

        #[test]
        fn unranked_locks_skip_rank_checks() {
            let ranked = Mutex::new(());
            ranked.set_rank(50);
            let plain = Mutex::new(());
            let _a = ranked.lock();
            let _b = plain.lock();
        }
    }
}
