//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. Poisoning is collapsed by taking the inner value anyway —
//! parking_lot's actual semantics (a panicking thread simply releases
//! the lock).

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning readers-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn survives_poison() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
