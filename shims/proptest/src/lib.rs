//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace uses: the `proptest!` macro with
//! `arg in strategy` parameters, numeric range strategies, simple
//! regex-like string strategies (`"[a-z][a-z0-9_]{0,8}"`),
//! `collection::vec`, `sample::select`, `any::<T>()`, `Just`, and the
//! `prop_assert* / prop_assume!` macros.
//!
//! Differences from real proptest, chosen deliberately for an offline,
//! flake-free test suite: no shrinking (the failing input is printed
//! as-is), and the RNG seed is derived from the property's name, so a
//! given test binary exercises the same inputs on every run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases each property runs. Real proptest defaults to 256; 64 keeps
/// `cargo test` fast while still exercising a spread of inputs.
pub const NUM_CASES: u32 = 64;

/// Maximum attempts (including `prop_assume!` rejections) before a
/// property gives up complaining that too many inputs were rejected.
pub const MAX_ATTEMPTS: u32 = NUM_CASES * 20;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed: the property is falsified.
    Fail(String),
}

/// Deterministic per-property RNG: seeded from the property name.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` strategies are a small regex-like pattern language:
/// concatenations of atoms, where an atom is a literal character or a
/// character class `[a-z0-9_]`, optionally followed by `{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom into the set of characters it can produce.
        let choices: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("proptest shim: unclosed `[` in {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional `{m,n}` repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("proptest shim: unclosed `{{` in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().unwrap(),
                    n.trim().parse::<usize>().unwrap(),
                ),
                None => {
                    let n = body.trim().parse::<usize>().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let reps = if min == max {
            min
        } else {
            rng.gen_range(min..=max)
        };
        for _ in 0..reps {
            out.push(choices[rng.gen_range(0..choices.len())]);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen_range(-1.0e12..1.0e12)
    }
}

/// Strategy wrapper returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};

    /// A strategy producing `Vec`s whose elements come from `element`
    /// and whose length comes from `size` (a `usize` or a range).
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut super::StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.min == self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Acceptable `size` arguments for [`collection::vec`]: a fixed length
/// or a half-open range, mirroring proptest's `Into<SizeRange>` inputs.
pub trait SizeRange {
    /// `(min, max)` with proptest's half-open range convention kept:
    /// `min == max` means exactly that length.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Sampling from explicit candidate lists.
pub mod sample {
    use super::Strategy;

    /// Strategy over a fixed candidate vector.
    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(vec![...])`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut super::StdRng) -> T {
            use rand::Rng;
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Assert a condition inside a property, with optional format args.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Each function body runs [`NUM_CASES`] times
/// with freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::rng_for(stringify!($name));
                let mut __accepted = 0u32;
                let mut __attempts = 0u32;
                while __accepted < $crate::NUM_CASES {
                    __attempts += 1;
                    if __attempts > $crate::MAX_ATTEMPTS {
                        panic!(
                            "proptest {}: too many inputs rejected by prop_assume! \
                             ({} accepted of {} attempts)",
                            stringify!($name), __accepted, __attempts
                        );
                    }
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                    let __case_desc = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} falsified: {}\n  inputs: {}",
                                stringify!($name), msg, __case_desc
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in -5.0f64..5.0,
            n in 1usize..10,
            v in prop::collection::vec(0u32..100, 2..6),
            s in "[a-z]{1,4}",
            w in prop::sample::select(vec!["a", "b"]),
            seed in any::<u64>(),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(w == "a" || w == "b");
            let _ = seed;
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::rng_for("x");
        let mut r2 = crate::rng_for("x");
        let s = "[a-z]{8}";
        assert_eq!(Strategy::sample(&s, &mut r1), Strategy::sample(&s, &mut r2));
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(a in 0u32..10) {
                prop_assert!(a > 100, "a is small: {}", a);
            }
        }
        always_fails();
    }
}
