//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the sandbox has no
//! syn/quote), which is workable because the supported input grammar is
//! deliberately small: non-generic structs and enums, any field shape,
//! with `#[serde(default)]` as the only recognized field attribute.
//! Enums use serde's externally-tagged representation: unit variants
//! serialize as `"Name"`, payload variants as `{"Name": ...}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Body {
    Unit,
    /// Tuple struct / variant with this many fields.
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: Body,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip a `#[...]` attribute at `i`, returning whether it contained
/// `serde(default)`.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    // Caller guarantees tokens[*i] is `#`.
    *i += 1;
    let mut has_default = false;
    if let Some(TokenTree::Group(g)) = tokens.get(*i) {
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(a) = t {
                            match a.to_string().as_str() {
                                "default" => has_default = true,
                                other => panic!(
                                    "serde shim derive: unsupported #[serde({other})] attribute"
                                ),
                            }
                        }
                    }
                }
            }
        }
        *i += 1;
    }
    has_default
}

/// Skip attributes and visibility qualifiers, returning whether any
/// attribute was `#[serde(default)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                default |= skip_attr(tokens, i);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return default,
        }
    }
}

/// Parse `name: Type` fields from the token stream of a brace group.
/// Types are skipped by consuming until a comma at angle-bracket depth 0
/// (parens/brackets/braces arrive as atomic groups in the token tree).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected ':' after field, got {other:?}"),
        }
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Count the fields of a tuple struct/variant from its paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                // A trailing comma does not start a new field.
                ',' if depth == 0 && idx + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Body::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Body::Named(fields)
            }
            _ => Body::Unit,
        };
        // Skip an optional explicit discriminant (`= expr`) and the comma.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type {name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("serde shim derive: unsupported struct body {other:?}"),
            };
            Input::Struct { name, body }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde shim derive: unsupported enum body {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn ser_named_fields(receiver: &str, fields: &[Field]) -> String {
    let mut out = String::from("{ let mut __m = ::serde::Map::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__m.insert(::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value({r}{n}));\n",
            n = f.name,
            r = receiver,
        ));
    }
    out.push_str("::serde::Value::Object(__m) }");
    out
}

fn de_named_fields(type_path: &str, fields: &[Field], obj: &str) -> String {
    let mut out = format!("{type_path} {{\n");
    for f in fields {
        let missing = if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(::serde::Error::custom(\
                 \"missing field `{}` for {}\"))",
                f.name, type_path
            )
        };
        out.push_str(&format!(
            "{n}: match {obj}.get(\"{n}\") {{\n\
             ::core::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::core::option::Option::None => {{ {missing} }},\n\
             }},\n",
            n = f.name,
        ));
    }
    out.push('}');
    out
}

fn generate_serialize(input: &Input) -> String {
    let (name, body_code) = match input {
        Input::Struct { name, body } => {
            let code = match body {
                Body::Unit => "::serde::Value::Null".to_string(),
                Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Body::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Body::Named(fields) => ser_named_fields("&self.", fields),
            };
            (name, code)
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), {payload});\n\
                             ::serde::Value::Object(__m)\n}},\n",
                            binds = binds.join(", "),
                        ));
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let payload = ser_named_fields("", fields);
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{vn}\"), {payload});\n\
                             ::serde::Value::Object(__outer)\n}},\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}\n}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body_code}\n}}\n}}\n"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let (name, body_code) = match input {
        Input::Struct { name, body } => {
            let code = match body {
                Body::Unit => format!("::core::result::Result::Ok({name})"),
                Body::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(__v)?))"
                ),
                Body::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __items = __v.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if __items.len() != {n} {{ return ::core::result::Result::Err(\
                         ::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                         ::core::result::Result::Ok({name}({items})) }}",
                        items = items.join(", ")
                    )
                }
                Body::Named(fields) => format!(
                    "{{ let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     ::core::result::Result::Ok({de}) }}",
                    de = de_named_fields(name, fields, "__obj")
                ),
            };
            (name, code)
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Body::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    Body::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = __payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if __items.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::Error::custom(\"wrong tuple length for {name}::{vn}\")); }}\n\
                             ::core::result::Result::Ok({name}::{vn}({items}))\n}},\n",
                            items = items.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let path = format!("{name}::{vn}");
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __obj = __payload.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {path}\"))?;\n\
                             ::core::result::Result::Ok({de})\n}},\n",
                            de = de_named_fields(&path, fields, "__obj")
                        ));
                    }
                }
            }
            let code = format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __payload) = __m.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n\
                 {payload_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for enum {name}\")),\n\
                 }}"
            );
            (name, code)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n{body_code}\n}}\n}}\n"
    )
}

/// Derive the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated invalid Rust")
}

/// Derive the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated invalid Rust")
}
